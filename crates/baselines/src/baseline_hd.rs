use crate::common::{Classifier, EpochRecord, ModelError, TrainingHistory};
use disthd_datasets::Dataset;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{Encoder, RbfEncoder};
use disthd_hd::learn::{adaptive_epoch, bundle_init};
use disthd_hd::ClassModel;
use disthd_linalg::RngSeed;
use std::time::Instant;

/// Configuration for [`BaselineHd`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineHdConfig {
    /// Hyperdimensional dimensionality `D`.
    pub dim: usize,
    /// Adaptive learning rate `η`.
    pub learning_rate: f32,
    /// Maximum retraining epochs.
    pub epochs: usize,
    /// Stop early once train accuracy fails to improve for this many
    /// consecutive epochs (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Seed for the static encoder.
    pub seed: RngSeed,
}

impl Default for BaselineHdConfig {
    fn default() -> Self {
        Self {
            dim: 4_000,
            learning_rate: 0.05,
            epochs: 30,
            patience: Some(5),
            seed: RngSeed::default(),
        }
    }
}

/// Classical HDC with a pre-generated *static* encoder ("baselineHD" \[6\]).
///
/// The encoder never changes after construction: this is the property the
/// paper identifies as the root cause of the dimensionality problem —
/// without regeneration, reasonable accuracy needs `D ≈ 4k` ("effective
/// dimensionality"), whereas DistHD matches it at `D = 0.5k`.
///
/// Training is bundle initialization followed by adaptive-learning epochs
/// (Algorithm 1), identical to DistHD's learner so comparisons isolate the
/// encoding strategy.
///
/// # Example
///
/// ```
/// use disthd_baselines::{BaselineHd, BaselineHdConfig, Classifier};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
///
/// let data = PaperDataset::Pamap2.generate(&SuiteConfig::at_scale(0.0005))?;
/// let cfg = BaselineHdConfig { dim: 512, epochs: 5, ..Default::default() };
/// let mut model = BaselineHd::new(cfg, data.train.feature_dim(), data.train.class_count());
/// let history = model.fit(&data.train, None)?;
/// assert!(history.epochs() >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BaselineHd {
    config: BaselineHdConfig,
    encoder: RbfEncoder,
    model: Option<ClassModel>,
    center: Option<EncodingCenter>,
    class_count: usize,
}

impl BaselineHd {
    /// Creates an untrained model for `feature_dim` inputs and
    /// `class_count` classes.
    pub fn new(config: BaselineHdConfig, feature_dim: usize, class_count: usize) -> Self {
        let encoder = RbfEncoder::new(feature_dim, config.dim, config.seed);
        Self {
            config,
            encoder,
            model: None,
            center: None,
            class_count,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &BaselineHdConfig {
        &self.config
    }

    /// Borrows the trained class model, if fitted.
    pub fn class_model(&self) -> Option<&ClassModel> {
        self.model.as_ref()
    }

    /// Mutably borrows the trained class model, if fitted (used by the
    /// robustness harness to quantize/fault the stored model).
    pub fn class_model_mut(&mut self) -> Option<&mut ClassModel> {
        self.model.as_mut()
    }

    /// Replaces the class model (after dequantizing a faulted copy).
    pub fn set_class_model(&mut self, model: ClassModel) {
        self.model = Some(model);
    }

    /// Borrows the static encoder.
    pub fn encoder(&self) -> &RbfEncoder {
        &self.encoder
    }

    /// Per-class similarity scores for one input (ROC / top-k analysis).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] before `fit`, or a shape error for
    /// a wrong-length input.
    pub fn decision_scores(&mut self, features: &[f32]) -> Result<Vec<f32>, ModelError> {
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode(features)?;
        center.apply(&mut encoded);
        Ok(model.similarities(&encoded)?)
    }

    /// Accuracy of the current model on `data`, encoding on the fly.
    fn eval_accuracy(
        &self,
        model: &mut ClassModel,
        center: &EncodingCenter,
        data: &Dataset,
    ) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut encoded = self.encoder.encode_batch(data.features())?;
        center.apply_batch(&mut encoded);
        let mut correct = 0usize;
        for i in 0..encoded.rows() {
            if model.predict(encoded.row(i)) == data.label(i) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

impl Classifier for BaselineHd {
    fn fit(
        &mut self,
        train: &Dataset,
        eval: Option<&Dataset>,
    ) -> Result<TrainingHistory, ModelError> {
        if train.feature_dim() != self.encoder.input_dim() {
            return Err(ModelError::Incompatible(format!(
                "expected {} features, dataset has {}",
                self.encoder.input_dim(),
                train.feature_dim()
            )));
        }
        if train.class_count() != self.class_count {
            return Err(ModelError::Incompatible(format!(
                "expected {} classes, dataset has {}",
                self.class_count,
                train.class_count()
            )));
        }

        let mut encoded = self.encoder.encode_batch(train.features())?;
        let center = EncodingCenter::fit_and_apply(&mut encoded);
        let mut model = ClassModel::new(self.class_count, self.config.dim);
        bundle_init(&mut model, &encoded, train.labels())?;

        let mut history = TrainingHistory::new();
        let mut best = 0.0f64;
        let mut stall = 0usize;
        for epoch in 0..self.config.epochs {
            let start = Instant::now();
            let stats = adaptive_epoch(
                &mut model,
                &encoded,
                train.labels(),
                self.config.learning_rate,
            )?;
            let eval_accuracy = match eval {
                Some(data) => Some(self.eval_accuracy(&mut model, &center, data)?),
                None => None,
            };
            history.push(EpochRecord {
                epoch,
                train_accuracy: stats.accuracy(),
                eval_accuracy,
                elapsed: start.elapsed(),
            });
            if let Some(patience) = self.config.patience {
                if stats.accuracy() > best + 1e-6 {
                    best = stats.accuracy();
                    stall = 0;
                } else {
                    stall += 1;
                    if stall >= patience {
                        break;
                    }
                }
            }
        }
        self.model = Some(model);
        self.center = Some(center);
        Ok(history)
    }

    fn predict_one(&mut self, features: &[f32]) -> Result<usize, ModelError> {
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode(features)?;
        center.apply(&mut encoded);
        Ok(model.predict(&encoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};

    fn small_data() -> disthd_datasets::TrainTest {
        PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap()
    }

    fn config(dim: usize) -> BaselineHdConfig {
        BaselineHdConfig {
            dim,
            epochs: 8,
            ..Default::default()
        }
    }

    #[test]
    fn fit_then_predict_beats_chance() {
        let data = small_data();
        let mut model = BaselineHd::new(
            config(512),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        let acc = model.accuracy(&data.test).unwrap();
        assert!(acc > 0.4, "accuracy {acc} should beat 3-class chance");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = BaselineHd::new(config(64), 49, 3);
        assert!(matches!(
            model.predict_one(&[0.0; 49]),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn fit_rejects_wrong_feature_count() {
        let data = small_data();
        let mut model = BaselineHd::new(config(64), 10, 3);
        assert!(matches!(
            model.fit(&data.train, None),
            Err(ModelError::Incompatible(_))
        ));
    }

    #[test]
    fn history_records_eval_accuracy_when_requested() {
        let data = small_data();
        let mut model = BaselineHd::new(
            config(256),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        let history = model.fit(&data.train, Some(&data.test)).unwrap();
        assert!(history.records().iter().all(|r| r.eval_accuracy.is_some()));
    }

    #[test]
    fn early_stopping_respects_patience() {
        let data = small_data();
        let cfg = BaselineHdConfig {
            dim: 256,
            epochs: 50,
            patience: Some(2),
            ..Default::default()
        };
        let mut model = BaselineHd::new(cfg, data.train.feature_dim(), data.train.class_count());
        let history = model.fit(&data.train, None).unwrap();
        assert!(history.epochs() < 50, "patience should cut training short");
    }

    #[test]
    fn higher_dimensionality_does_not_hurt() {
        let data = small_data();
        let mut low = BaselineHd::new(
            config(64),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        let mut high = BaselineHd::new(
            config(2048),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        low.fit(&data.train, None).unwrap();
        high.fit(&data.train, None).unwrap();
        let low_acc = low.accuracy(&data.test).unwrap();
        let high_acc = high.accuracy(&data.test).unwrap();
        assert!(
            high_acc + 0.08 >= low_acc,
            "high-D ({high_acc}) should be at least comparable to low-D ({low_acc})"
        );
    }
}
