//! Re-exports of the shared model-facing types from [`disthd_eval`].
//!
//! The `Classifier` trait, training history and error type live in the
//! evaluation substrate so that `disthd` (the core crate) can implement
//! them without depending on the comparator models in this crate.

pub use disthd_eval::model::{Classifier, EpochRecord, ModelError, TrainingHistory};
