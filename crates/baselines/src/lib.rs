//! # disthd-baselines
//!
//! Every comparator model the DistHD paper evaluates against, built from
//! scratch on the workspace substrates:
//!
//! * [`BaselineHd`] — classical HDC with a *static* RBF encoder and
//!   adaptive retraining (the "baselineHD" of Fig. 4/5/7, after Rahimi et
//!   al. \[6\]);
//! * [`NeuralHd`] — the dynamic-encoding comparator \[7\]: periodically drops
//!   the lowest-variance dimensions and regenerates them;
//! * [`Mlp`] — the "SOTA DNN" comparator \[27\]: a from-scratch multilayer
//!   perceptron (ReLU, softmax cross-entropy, SGD + momentum);
//! * [`LinearSvm`] — the SVM comparator \[28\]: one-vs-rest linear SVM
//!   trained with Pegasos-style SGD on the hinge loss.
//!
//! All models implement [`Classifier`], so the benchmark harness can sweep
//! them uniformly.
//!
//! ## Example
//!
//! ```
//! use disthd_baselines::{BaselineHd, BaselineHdConfig, Classifier};
//! use disthd_datasets::suite::{PaperDataset, SuiteConfig};
//!
//! let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.002))?;
//! let mut model = BaselineHd::new(BaselineHdConfig {
//!     dim: 256,
//!     epochs: 5,
//!     ..BaselineHdConfig::default()
//! }, data.train.feature_dim(), data.train.class_count());
//! model.fit(&data.train, None)?;
//! let acc = model.accuracy(&data.test)?;
//! assert!(acc > 1.0 / 3.0); // beats chance on a 3-class task
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod baseline_hd;
mod common;
pub mod mlp;
mod neural_hd;
mod svm;

pub use baseline_hd::{BaselineHd, BaselineHdConfig};
pub use common::{Classifier, EpochRecord, ModelError, TrainingHistory};
pub use mlp::{Mlp, MlpConfig};
pub use neural_hd::{NeuralHd, NeuralHdConfig};
pub use svm::{LinearSvm, SvmConfig};
