/// Element-wise activation functions for hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (used by the output layer; softmax lives in the loss).
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one pre-activation value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative with respect to the pre-activation, expressed via the
    /// *output* value `y = apply(x)` (cheaper: no need to keep `x`).
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn relu_derivative_is_step() {
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.5), 1.0);
    }

    #[test]
    fn tanh_derivative_matches_identity() {
        let x = 0.7f32;
        let y = Activation::Tanh.apply(x);
        let expected = 1.0 - x.tanh().powi(2);
        assert!((Activation::Tanh.derivative_from_output(y) - expected).abs() < 1e-6);
    }

    #[test]
    fn linear_is_identity() {
        assert_eq!(Activation::Linear.apply(-4.2), -4.2);
        assert_eq!(Activation::Linear.derivative_from_output(9.0), 1.0);
    }
}
