use super::activation::Activation;
use disthd_linalg::{Gaussian, Matrix, SeededRng, ShapeError};

/// A fully connected layer `y = act(x · W + b)`.
///
/// `W` is `in_dim x out_dim` (row-major), so a batch of inputs (one row per
/// sample) forwards as a single matrix product.  The layer caches the last
/// input and output batches for backpropagation.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
    /// Cached forward input (needed for dW = xᵀ · δ).
    last_input: Matrix,
    /// Cached forward output (needed for the activation derivative).
    last_output: Matrix,
    grad_weights: Matrix,
    grad_bias: Vec<f32>,
}

impl DenseLayer {
    /// He-style random initialization: `N(0, sqrt(2 / in_dim))`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut SeededRng) -> Self {
        let std_dev = (2.0 / in_dim.max(1) as f32).sqrt();
        let gaussian = Gaussian::new(0.0, std_dev);
        let weights = Matrix::from_fn(in_dim, out_dim, |_, _| gaussian.sample(rng));
        Self {
            weights,
            bias: vec![0.0; out_dim],
            activation,
            last_input: Matrix::default(),
            last_output: Matrix::default(),
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutably borrows the weight matrix (quantization / fault injection).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutably borrows the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Forward pass over a batch (one sample per row), caching for backprop.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `input.cols() != in_dim()`.
    pub fn forward(&mut self, input: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = input.matmul(&self.weights)?;
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, &b) in row.iter_mut().zip(self.bias.iter()) {
                *v = self.activation.apply(*v + b);
            }
        }
        self.last_input = input.clone();
        self.last_output = out.clone();
        Ok(out)
    }

    /// Inference-only forward pass (no caching).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `input.cols() != in_dim()`.
    pub fn forward_inference(&self, input: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = input.matmul(&self.weights)?;
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, &b) in row.iter_mut().zip(self.bias.iter()) {
                *v = self.activation.apply(*v + b);
            }
        }
        Ok(out)
    }

    /// Backward pass: consumes `grad_output` (∂L/∂y, one row per sample),
    /// accumulates weight/bias gradients, returns ∂L/∂x.
    ///
    /// Must follow a [`Self::forward`] call with the matching batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch with the cached batch.
    pub fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, ShapeError> {
        // δ = grad_output ⊙ act'(y)
        let mut delta = grad_output.clone();
        for r in 0..delta.rows() {
            let out_row = self.last_output.row(r).to_vec();
            let d_row = delta.row_mut(r);
            for (d, y) in d_row.iter_mut().zip(out_row) {
                *d *= self.activation.derivative_from_output(y);
            }
        }
        // dW = xᵀ · δ ; db = Σ_rows δ
        let batch = delta.rows().max(1) as f32;
        self.grad_weights = self.last_input.transpose().matmul(&delta)?;
        self.grad_weights.scale(1.0 / batch);
        self.grad_bias = disthd_linalg::column_sums(&delta);
        for b in &mut self.grad_bias {
            *b /= batch;
        }
        // ∂L/∂x = δ · Wᵀ
        delta.matmul(&self.weights.transpose())
    }

    /// Last computed weight gradient.
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_weights
    }

    /// Last computed bias gradient.
    pub fn grad_bias(&self) -> &[f32] {
        &self.grad_bias
    }

    /// Applies a parameter update `W -= update_w`, `b -= update_b`
    /// (computed by the optimizer).
    pub(crate) fn apply_update(&mut self, update_w: &Matrix, update_b: &[f32]) {
        for (w, u) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(update_w.as_slice())
        {
            *w -= u;
        }
        for (b, u) in self.bias.iter_mut().zip(update_b) {
            *b -= u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::RngSeed;

    fn layer() -> DenseLayer {
        let mut rng = SeededRng::new(RngSeed(1));
        DenseLayer::new(3, 2, Activation::Linear, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut l = layer();
        let x = Matrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![0.5, 0.5, 0.5]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), (2, 2));
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut l = layer();
        let x = Matrix::from_rows(&[vec![0.3, -0.2, 0.9]]).unwrap();
        let a = l.forward(&x).unwrap();
        let b = l.forward_inference(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn backward_produces_finite_gradients() {
        let mut rng = SeededRng::new(RngSeed(2));
        let mut l = DenseLayer::new(3, 2, Activation::Relu, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        l.forward(&x).unwrap();
        let grad_out = Matrix::from_rows(&[vec![0.1, -0.2]]).unwrap();
        let grad_in = l.backward(&grad_out).unwrap();
        assert_eq!(grad_in.shape(), (1, 3));
        assert!(l.grad_weights().as_slice().iter().all(|g| g.is_finite()));
        assert!(l.grad_bias().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn numeric_gradient_check() {
        // Finite-difference check of dL/dW for L = sum(y).
        let mut rng = SeededRng::new(RngSeed(3));
        let mut l = DenseLayer::new(2, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[vec![0.4, -0.7]]).unwrap();
        l.forward(&x).unwrap();
        let ones = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        l.backward(&ones).unwrap();
        let analytic = l.grad_weights().get(0, 0);

        let eps = 1e-3;
        let loss = |l: &DenseLayer, x: &Matrix| -> f32 {
            l.forward_inference(x).unwrap().as_slice().iter().sum()
        };
        let base_w = l.weights().get(0, 0);
        l.weights_mut().set(0, 0, base_w + eps);
        let up = loss(&l, &x);
        l.weights_mut().set(0, 0, base_w - eps);
        let down = loss(&l, &x);
        let numeric = (up - down) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn apply_update_moves_parameters() {
        let mut l = layer();
        let w0 = l.weights().get(0, 0);
        let update = Matrix::filled(3, 2, 0.5);
        l.apply_update(&update, &[0.1, 0.1]);
        assert!((l.weights().get(0, 0) - (w0 - 0.5)).abs() < 1e-6);
        assert!((l.bias()[0] + 0.1).abs() < 1e-6);
    }
}
