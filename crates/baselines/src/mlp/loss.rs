//! Softmax cross-entropy loss.

use disthd_linalg::Matrix;

/// Numerically stable in-place softmax over each row of `logits`.
pub fn softmax_in_place(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Mean softmax cross-entropy over a batch plus the gradient w.r.t. logits.
///
/// Returns `(mean_loss, grad)` where `grad[i] = softmax(logits[i]) - onehot(labels[i])`
/// (already averaged gradient direction per sample; the layer averages over
/// the batch during backward).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "labels/batch mismatch");
    let mut probs = logits.clone();
    softmax_in_place(&mut probs);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label out of range");
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    (loss / labels.len().max(1) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]).unwrap();
        softmax_in_place(&mut m);
        for row in m.iter_rows() {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let mut b = Matrix::from_rows(&[vec![101.0, 102.0]]).unwrap();
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut m = Matrix::from_rows(&[vec![1000.0, 0.0]]).unwrap();
        softmax_in_place(&mut m);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        assert!((m.get(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_is_low_for_confident_correct() {
        let logits = Matrix::from_rows(&[vec![10.0, 0.0]]).unwrap();
        let (loss_correct, _) = softmax_cross_entropy(&logits, &[0]);
        let (loss_wrong, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss_correct < 0.01);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_points_from_probs_to_onehot() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        // probs = [0.5, 0.5]; grad = [0.5 - 1, 0.5] = [-0.5, 0.5]
        assert!((grad.get(0, 0) + 0.5).abs() < 1e-5);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        softmax_cross_entropy(&logits, &[5]);
    }
}
