//! From-scratch multilayer perceptron — the paper's "SOTA DNN" comparator
//! \[27\].
//!
//! Architecture: fully connected layers with ReLU hidden activations and a
//! softmax cross-entropy output, trained by mini-batch SGD with momentum.
//! The weights are exposed as matrices so the Fig. 8 robustness harness can
//! quantize them to 8 bits and inject bit faults.

mod activation;
mod layer;
mod loss;
mod network;
mod optimizer;

pub use activation::Activation;
pub use layer::DenseLayer;
pub use loss::{softmax_cross_entropy, softmax_in_place};
pub use network::{Mlp, MlpConfig};
pub use optimizer::MomentumSgd;
