use super::activation::Activation;
use super::layer::DenseLayer;
use super::loss::{softmax_cross_entropy, softmax_in_place};
use super::optimizer::MomentumSgd;
use crate::common::{Classifier, EpochRecord, ModelError, TrainingHistory};
use disthd_datasets::Dataset;
use disthd_linalg::{Matrix, RngSeed, SeededRng};
use std::time::Instant;

/// Configuration for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths (e.g. `vec![128, 64]`).
    pub hidden: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient `μ`.
    pub momentum: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: RngSeed,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128],
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 30,
            batch_size: 32,
            seed: RngSeed::default(),
        }
    }
}

/// Multilayer perceptron with ReLU hidden layers and softmax output — the
/// "SOTA DNN" comparator of Figs. 4, 5 and 8 \[27\].
///
/// # Example
///
/// ```
/// use disthd_baselines::{Classifier, Mlp, MlpConfig};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
///
/// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
/// let cfg = MlpConfig { hidden: vec![32], epochs: 10, ..Default::default() };
/// let mut model = Mlp::new(cfg, data.train.feature_dim(), data.train.class_count());
/// model.fit(&data.train, None)?;
/// assert!(model.accuracy(&data.test)? > 1.0 / 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<DenseLayer>,
    fitted: bool,
    feature_dim: usize,
    class_count: usize,
}

impl Mlp {
    /// Creates an untrained network for `feature_dim` inputs and
    /// `class_count` output classes.
    pub fn new(config: MlpConfig, feature_dim: usize, class_count: usize) -> Self {
        let mut rng = SeededRng::derive_stream(config.seed, 0x4D_4C_50);
        let mut layers = Vec::new();
        let mut in_dim = feature_dim;
        for &h in &config.hidden {
            layers.push(DenseLayer::new(in_dim, h, Activation::Relu, &mut rng));
            in_dim = h;
        }
        layers.push(DenseLayer::new(
            in_dim,
            class_count,
            Activation::Linear,
            &mut rng,
        ));
        Self {
            config,
            layers,
            fitted: false,
            feature_dim,
            class_count,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Number of layers (hidden + output).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrows the layers (robustness harness: quantize / fault weights).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutably borrows the layers.
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.in_dim() * l.out_dim() + l.out_dim())
            .sum()
    }

    /// Class-probability rows for a feature batch (softmax outputs).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Shape`] for a wrong-width batch.
    pub fn predict_proba(&self, batch: &Matrix) -> Result<Matrix, ModelError> {
        let mut current = batch.clone();
        for layer in &self.layers {
            current = layer.forward_inference(&current)?;
        }
        softmax_in_place(&mut current);
        Ok(current)
    }

    /// Batch prediction by argmax of logits.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Shape`] for a wrong-width batch.
    pub fn predict_batch(&self, batch: &Matrix) -> Result<Vec<usize>, ModelError> {
        let probs = self.predict_proba(batch)?;
        Ok((0..probs.rows())
            .map(|r| {
                let row = probs.row(r);
                let mut best = 0;
                for i in 1..row.len() {
                    if row[i] > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect())
    }

    fn batch_accuracy(&self, data: &Dataset) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let predictions = self.predict_batch(data.features())?;
        let correct = predictions
            .iter()
            .zip(data.labels())
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }
}

impl Classifier for Mlp {
    fn fit(
        &mut self,
        train: &Dataset,
        eval: Option<&Dataset>,
    ) -> Result<TrainingHistory, ModelError> {
        if train.feature_dim() != self.feature_dim {
            return Err(ModelError::Incompatible(format!(
                "expected {} features, dataset has {}",
                self.feature_dim,
                train.feature_dim()
            )));
        }
        if train.class_count() != self.class_count {
            return Err(ModelError::Incompatible(format!(
                "expected {} classes, dataset has {}",
                self.class_count,
                train.class_count()
            )));
        }

        let mut optimizer = MomentumSgd::new(
            self.config.learning_rate,
            self.config.momentum,
            &self.layers,
        );
        let mut shuffle_rng = SeededRng::derive_stream(self.config.seed, 0x5F_FF);
        let mut history = TrainingHistory::new();

        for epoch in 0..self.config.epochs {
            let start = Instant::now();
            let shuffled = train.shuffled(&mut shuffle_rng);
            let mut correct = 0usize;
            for range in shuffled.batch_ranges(self.config.batch_size) {
                let indices: Vec<usize> = range.collect();
                let batch = shuffled.features().select_rows(&indices);
                let labels: Vec<usize> = indices.iter().map(|&i| shuffled.label(i)).collect();

                // Forward through all layers with caching.
                let mut current = batch;
                for layer in &mut self.layers {
                    current = layer.forward(&current)?;
                }
                // Count batch accuracy from logits.
                for (r, &label) in labels.iter().enumerate() {
                    let row = current.row(r);
                    let mut best = 0;
                    for i in 1..row.len() {
                        if row[i] > row[best] {
                            best = i;
                        }
                    }
                    if best == label {
                        correct += 1;
                    }
                }
                // Loss gradient and backward chain.
                let (_, mut grad) = softmax_cross_entropy(&current, &labels);
                for layer in self.layers.iter_mut().rev() {
                    grad = layer.backward(&grad)?;
                }
                optimizer.step(&mut self.layers);
            }

            let eval_accuracy = match eval {
                Some(data) => Some(self.batch_accuracy(data)?),
                None => None,
            };
            history.push(EpochRecord {
                epoch,
                train_accuracy: correct as f64 / train.len().max(1) as f64,
                eval_accuracy,
                elapsed: start.elapsed(),
            });
        }
        self.fitted = true;
        Ok(history)
    }

    fn predict_one(&mut self, features: &[f32]) -> Result<usize, ModelError> {
        if !self.fitted {
            return Err(ModelError::NotFitted);
        }
        let batch = Matrix::from_rows(&[features.to_vec()]).map_err(ModelError::Shape)?;
        Ok(self.predict_batch(&batch)?[0])
    }

    fn predict(&mut self, data: &Dataset) -> Result<Vec<usize>, ModelError> {
        if !self.fitted {
            return Err(ModelError::NotFitted);
        }
        self.predict_batch(data.features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};

    fn small_data() -> disthd_datasets::TrainTest {
        PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap()
    }

    fn config() -> MlpConfig {
        MlpConfig {
            hidden: vec![32],
            epochs: 15,
            learning_rate: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn learns_separable_data() {
        let data = small_data();
        let mut model = Mlp::new(config(), data.train.feature_dim(), data.train.class_count());
        let history = model.fit(&data.train, None).unwrap();
        assert!(
            history.final_train_accuracy() > 0.6,
            "train acc {}",
            history.final_train_accuracy()
        );
        assert!(model.accuracy(&data.test).unwrap() > 0.45);
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = Mlp::new(config(), 49, 3);
        assert!(matches!(
            model.predict_one(&[0.0; 49]),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let model = Mlp::new(
            MlpConfig {
                hidden: vec![8],
                ..Default::default()
            },
            4,
            3,
        );
        // 4*8 + 8 + 8*3 + 3 = 67
        assert_eq!(model.parameter_count(), 67);
        assert_eq!(model.layer_count(), 2);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let data = small_data();
        let mut model = Mlp::new(config(), data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train.take(50), None).unwrap();
        let probs = model.predict_proba(data.test.features()).unwrap();
        for row in probs.iter_rows() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn incompatible_dataset_rejected() {
        let data = small_data();
        let mut model = Mlp::new(config(), 5, 3);
        assert!(model.fit(&data.train, None).is_err());
    }

    #[test]
    fn deeper_network_still_trains() {
        let data = small_data();
        let cfg = MlpConfig {
            hidden: vec![32, 16],
            epochs: 10,
            learning_rate: 0.1,
            ..Default::default()
        };
        let mut model = Mlp::new(cfg, data.train.feature_dim(), data.train.class_count());
        let history = model.fit(&data.train, None).unwrap();
        assert!(history.final_train_accuracy() > 0.5);
    }
}
