use super::layer::DenseLayer;
use disthd_linalg::Matrix;

/// Stochastic gradient descent with classical momentum.
///
/// Keeps one velocity buffer per layer:
/// `v ← μ·v + lr·g`, `θ ← θ − v`.
#[derive(Debug, Clone)]
pub struct MomentumSgd {
    learning_rate: f32,
    momentum: f32,
    velocity_w: Vec<Matrix>,
    velocity_b: Vec<Vec<f32>>,
}

impl MomentumSgd {
    /// Creates an optimizer for `layers` (velocity buffers sized to match).
    pub fn new(learning_rate: f32, momentum: f32, layers: &[DenseLayer]) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity_w: layers
                .iter()
                .map(|l| Matrix::zeros(l.in_dim(), l.out_dim()))
                .collect(),
            velocity_b: layers.iter().map(|l| vec![0.0; l.out_dim()]).collect(),
        }
    }

    /// Learning rate in use.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Applies one update step to every layer from its accumulated
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if `layers.len()` differs from construction time.
    pub fn step(&mut self, layers: &mut [DenseLayer]) {
        assert_eq!(layers.len(), self.velocity_w.len(), "layer count changed");
        for (i, layer) in layers.iter_mut().enumerate() {
            let vw = &mut self.velocity_w[i];
            for (v, &g) in vw
                .as_mut_slice()
                .iter_mut()
                .zip(layer.grad_weights().as_slice())
            {
                *v = self.momentum * *v + self.learning_rate * g;
            }
            let vb = &mut self.velocity_b[i];
            for (v, &g) in vb.iter_mut().zip(layer.grad_bias()) {
                *v = self.momentum * *v + self.learning_rate * g;
            }
            let vw_snapshot = vw.clone();
            let vb_snapshot = vb.clone();
            layer.apply_update(&vw_snapshot, &vb_snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::activation::Activation;
    use disthd_linalg::{RngSeed, SeededRng};

    fn one_layer() -> Vec<DenseLayer> {
        let mut rng = SeededRng::new(RngSeed(4));
        vec![DenseLayer::new(2, 2, Activation::Linear, &mut rng)]
    }

    #[test]
    fn step_descends_a_quadratic() {
        // Minimize L = sum(y) with x = [1, 1]: gradient w.r.t. W is
        // constant 1, so steps should monotonically reduce sum(W).
        let mut layers = one_layer();
        let mut opt = MomentumSgd::new(0.1, 0.9, &layers);
        let x = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let ones = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let mut previous = f32::INFINITY;
        for _ in 0..5 {
            layers[0].forward(&x).unwrap();
            layers[0].backward(&ones).unwrap();
            opt.step(&mut layers);
            let current: f32 = layers[0].weights().as_slice().iter().sum();
            assert!(current < previous);
            previous = current;
        }
    }

    #[test]
    fn momentum_accelerates_constant_gradients() {
        let mut layers_a = one_layer();
        let mut layers_b = one_layer();
        let mut plain = MomentumSgd::new(0.1, 0.0, &layers_a);
        let mut momentum = MomentumSgd::new(0.1, 0.9, &layers_b);
        let x = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let ones = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        for _ in 0..5 {
            layers_a[0].forward(&x).unwrap();
            layers_a[0].backward(&ones).unwrap();
            plain.step(&mut layers_a);
            layers_b[0].forward(&x).unwrap();
            layers_b[0].backward(&ones).unwrap();
            momentum.step(&mut layers_b);
        }
        let sum_a: f32 = layers_a[0].weights().as_slice().iter().sum();
        let sum_b: f32 = layers_b[0].weights().as_slice().iter().sum();
        assert!(
            sum_b < sum_a,
            "momentum ({sum_b}) should outrun plain SGD ({sum_a})"
        );
    }
}
