use crate::common::{Classifier, EpochRecord, ModelError, TrainingHistory};
use disthd_datasets::Dataset;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{Encoder, RbfEncoder, RegenerativeEncoder};
use disthd_hd::learn::{adaptive_epoch, bundle_init};
use disthd_hd::ClassModel;
use disthd_linalg::{column_variances, RngSeed, SeededRng};
use std::time::Instant;

/// Configuration for [`NeuralHd`].
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralHdConfig {
    /// Physical hyperdimensional dimensionality `D`.
    pub dim: usize,
    /// Adaptive learning rate `η`.
    pub learning_rate: f32,
    /// Maximum retraining epochs.
    pub epochs: usize,
    /// Fraction of dimensions regenerated per regeneration step (the
    /// paper's `R%`, e.g. `0.10`).
    pub regen_rate: f64,
    /// Regenerate every this many epochs.
    pub regen_interval: usize,
    /// Stop early when train accuracy stalls this many epochs (`None`
    /// disables).
    pub patience: Option<usize>,
    /// Seed for the encoder and regeneration stream.
    pub seed: RngSeed,
}

impl Default for NeuralHdConfig {
    fn default() -> Self {
        Self {
            dim: 500,
            learning_rate: 0.05,
            epochs: 30,
            regen_rate: 0.10,
            regen_interval: 2,
            patience: Some(6),
            seed: RngSeed::default(),
        }
    }
}

/// The NeuralHD comparator \[7\]: dynamic encoding by *variance* scoring.
///
/// Every `regen_interval` epochs, NeuralHD scores each dimension by the
/// variance of its values **across the class hypervectors**: a dimension
/// whose entries barely differ between classes contributes nothing to
/// distinguishing patterns.  The lowest-variance `R%` of dimensions are
/// regenerated (fresh base vector, model entries zeroed) and the training
/// data is re-encoded.
///
/// Contrast with DistHD, which scores dimensions by *how they mislead
/// classification* using top-2 information — the paper's claim is that the
/// learner-aware signal converges faster (Fig. 7) and reaches higher
/// accuracy (Fig. 4).  NeuralHD's full re-encode per regeneration is also
/// the source of its slower wall-clock training (Fig. 5).
///
/// # Example
///
/// ```
/// use disthd_baselines::{Classifier, NeuralHd, NeuralHdConfig};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
///
/// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
/// let cfg = NeuralHdConfig { dim: 256, epochs: 6, ..Default::default() };
/// let mut model = NeuralHd::new(cfg, data.train.feature_dim(), data.train.class_count());
/// model.fit(&data.train, None)?;
/// assert!(model.accuracy(&data.test)? > 1.0 / 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NeuralHd {
    config: NeuralHdConfig,
    encoder: RbfEncoder,
    model: Option<ClassModel>,
    center: Option<EncodingCenter>,
    class_count: usize,
    regen_events: usize,
}

impl NeuralHd {
    /// Creates an untrained model for `feature_dim` inputs and
    /// `class_count` classes.
    pub fn new(config: NeuralHdConfig, feature_dim: usize, class_count: usize) -> Self {
        let encoder = RbfEncoder::new(feature_dim, config.dim, config.seed);
        Self {
            config,
            encoder,
            model: None,
            center: None,
            class_count,
            regen_events: 0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &NeuralHdConfig {
        &self.config
    }

    /// Borrows the trained class model, if fitted.
    pub fn class_model(&self) -> Option<&ClassModel> {
        self.model.as_ref()
    }

    /// Number of regeneration steps performed during the last `fit`.
    pub fn regen_events(&self) -> usize {
        self.regen_events
    }

    /// Total dimensions regenerated so far (for `D*` accounting).
    pub fn regenerated_dimensions(&self) -> u64 {
        self.encoder.regenerated_count()
    }

    /// Per-class similarity scores for one input (ROC / top-k analysis).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] before `fit`, or a shape error for
    /// a wrong-length input.
    pub fn decision_scores(&mut self, features: &[f32]) -> Result<Vec<f32>, ModelError> {
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode(features)?;
        center.apply(&mut encoded);
        Ok(model.similarities(&encoded)?)
    }

    /// Lowest-variance `R%` dimension indices of the current class matrix.
    fn insignificant_dims(&self, model: &ClassModel) -> Vec<usize> {
        let variances = column_variances(model.classes());
        let count = ((self.config.dim as f64) * self.config.regen_rate).round() as usize;
        disthd_linalg::top_k_indices(&variances, count)
    }

    fn eval_accuracy(
        &self,
        model: &mut ClassModel,
        center: &EncodingCenter,
        data: &Dataset,
    ) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut encoded = self.encoder.encode_batch(data.features())?;
        center.apply_batch(&mut encoded);
        let mut correct = 0usize;
        for i in 0..encoded.rows() {
            if model.predict(encoded.row(i)) == data.label(i) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

impl Classifier for NeuralHd {
    fn fit(
        &mut self,
        train: &Dataset,
        eval: Option<&Dataset>,
    ) -> Result<TrainingHistory, ModelError> {
        if train.feature_dim() != self.encoder.input_dim() {
            return Err(ModelError::Incompatible(format!(
                "expected {} features, dataset has {}",
                self.encoder.input_dim(),
                train.feature_dim()
            )));
        }
        if train.class_count() != self.class_count {
            return Err(ModelError::Incompatible(format!(
                "expected {} classes, dataset has {}",
                self.class_count,
                train.class_count()
            )));
        }

        let mut regen_rng = SeededRng::derive_stream(self.config.seed, 0x4E_47);
        let mut encoded = self.encoder.encode_batch(train.features())?;
        let mut center = EncodingCenter::fit_and_apply(&mut encoded);
        let mut model = ClassModel::new(self.class_count, self.config.dim);
        bundle_init(&mut model, &encoded, train.labels())?;
        self.regen_events = 0;

        let mut history = TrainingHistory::new();
        let mut best = 0.0f64;
        let mut stall = 0usize;
        for epoch in 0..self.config.epochs {
            let start = Instant::now();
            let stats = adaptive_epoch(
                &mut model,
                &encoded,
                train.labels(),
                self.config.learning_rate,
            )?;

            // Variance-scored regeneration every `regen_interval` epochs
            // (never on the final epoch: the fresh dimensions would go
            // unlearned into inference).
            let is_regen_epoch = self.config.regen_interval > 0
                && (epoch + 1) % self.config.regen_interval == 0
                && epoch + 1 < self.config.epochs;
            if is_regen_epoch {
                let dims = self.insignificant_dims(&model);
                self.encoder.regenerate(&dims, &mut regen_rng);
                model.reset_dimensions(&dims);
                // Full re-encode: NeuralHD's published pipeline re-encodes
                // the training set after every regeneration, which is the
                // dominant cost the paper's Fig. 5 attributes to it.
                encoded = self.encoder.encode_batch(train.features())?;
                center = EncodingCenter::fit_and_apply(&mut encoded);
                // Warm-start the fresh dimensions with a one-pass bundle
                // (mirrors NeuralHD's retraining of regenerated dimensions).
                model.bundle_dimensions(&encoded, train.labels(), &dims);
                self.regen_events += 1;
            }

            let eval_accuracy = match eval {
                Some(data) => Some(self.eval_accuracy(&mut model, &center, data)?),
                None => None,
            };
            history.push(EpochRecord {
                epoch,
                train_accuracy: stats.accuracy(),
                eval_accuracy,
                elapsed: start.elapsed(),
            });
            if let Some(patience) = self.config.patience {
                if stats.accuracy() > best + 1e-6 {
                    best = stats.accuracy();
                    stall = 0;
                } else {
                    stall += 1;
                    if stall >= patience {
                        break;
                    }
                }
            }
        }
        self.model = Some(model);
        self.center = Some(center);
        Ok(history)
    }

    fn predict_one(&mut self, features: &[f32]) -> Result<usize, ModelError> {
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode(features)?;
        center.apply(&mut encoded);
        Ok(model.predict(&encoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};

    fn small_data() -> disthd_datasets::TrainTest {
        PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap()
    }

    fn config() -> NeuralHdConfig {
        NeuralHdConfig {
            dim: 256,
            epochs: 8,
            regen_interval: 2,
            ..Default::default()
        }
    }

    #[test]
    fn fit_beats_chance_and_regenerates() {
        let data = small_data();
        let mut model = NeuralHd::new(config(), data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train, None).unwrap();
        assert!(model.regen_events() >= 1, "regeneration should trigger");
        assert!(model.regenerated_dimensions() > 0);
        let acc = model.accuracy(&data.test).unwrap();
        assert!(acc > 0.4, "accuracy {acc}");
    }

    #[test]
    fn regen_count_scales_with_rate() {
        let data = small_data();
        let mut cfg = config();
        cfg.patience = None;
        cfg.epochs = 5;
        cfg.regen_interval = 1;
        let mut model = NeuralHd::new(
            cfg.clone(),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        // 4 regen events (never on last epoch) x 10% of 256 ≈ 26 dims each.
        let expected = 4 * ((cfg.dim as f64 * cfg.regen_rate).round() as u64);
        assert_eq!(model.regenerated_dimensions(), expected);
    }

    #[test]
    fn zero_interval_disables_regeneration() {
        let data = small_data();
        let mut cfg = config();
        cfg.regen_interval = 0;
        let mut model = NeuralHd::new(cfg, data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train, None).unwrap();
        assert_eq!(model.regen_events(), 0);
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = NeuralHd::new(config(), 49, 3);
        assert!(matches!(
            model.predict_one(&[0.0; 49]),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn incompatible_dataset_rejected() {
        let data = small_data();
        let mut model = NeuralHd::new(config(), 7, 3);
        assert!(model.fit(&data.train, None).is_err());
    }
}
