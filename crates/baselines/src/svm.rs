use crate::common::{Classifier, EpochRecord, ModelError, TrainingHistory};
use disthd_datasets::Dataset;
use disthd_linalg::{Matrix, RngSeed, SeededRng};
use std::time::Instant;

/// Configuration for [`LinearSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmConfig {
    /// L2 regularization strength `λ`.
    pub lambda: f32,
    /// Training epochs (full passes over the data).
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: RngSeed,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 20,
            seed: RngSeed::default(),
        }
    }
}

/// One-vs-rest linear SVM trained with Pegasos-style SGD \[28\].
///
/// Each class `c` owns a weight vector `w_c` and bias `b_c` trained on the
/// binary problem "class c vs the rest" with hinge loss and step size
/// `η_t = 1 / (λ·t)`; prediction is `argmax_c (w_c·x + b_c)`.
///
/// Like the paper's scikit-learn comparator, training cost scales linearly
/// with dataset size × class count × feature count, which produces the
/// "SVMs take significantly longer on PAMAP2/DIABETES" shape of Fig. 5.
///
/// # Example
///
/// ```
/// use disthd_baselines::{Classifier, LinearSvm, SvmConfig};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
///
/// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
/// let mut model = LinearSvm::new(SvmConfig::default(), data.train.feature_dim(), data.train.class_count());
/// model.fit(&data.train, None)?;
/// assert!(model.accuracy(&data.test)? > 1.0 / 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearSvm {
    config: SvmConfig,
    /// `class_count x feature_dim` weight matrix.
    weights: Matrix,
    bias: Vec<f32>,
    fitted: bool,
    feature_dim: usize,
    class_count: usize,
}

impl LinearSvm {
    /// Creates an untrained SVM for `feature_dim` inputs and `class_count`
    /// classes.
    pub fn new(config: SvmConfig, feature_dim: usize, class_count: usize) -> Self {
        Self {
            config,
            weights: Matrix::zeros(class_count, feature_dim),
            bias: vec![0.0; class_count],
            fitted: false,
            feature_dim,
            class_count,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &SvmConfig {
        &self.config
    }

    /// Borrows the weight matrix (one row per class).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Decision scores `w_c·x + b_c` for every class.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Shape`] for a wrong-length input.
    pub fn decision_scores(&self, features: &[f32]) -> Result<Vec<f32>, ModelError> {
        let mut scores = self.weights.matvec(features).map_err(ModelError::Shape)?;
        for (s, &b) in scores.iter_mut().zip(self.bias.iter()) {
            *s += b;
        }
        Ok(scores)
    }
}

impl Classifier for LinearSvm {
    fn fit(
        &mut self,
        train: &Dataset,
        eval: Option<&Dataset>,
    ) -> Result<TrainingHistory, ModelError> {
        if train.feature_dim() != self.feature_dim {
            return Err(ModelError::Incompatible(format!(
                "expected {} features, dataset has {}",
                self.feature_dim,
                train.feature_dim()
            )));
        }
        if train.class_count() != self.class_count {
            return Err(ModelError::Incompatible(format!(
                "expected {} classes, dataset has {}",
                self.class_count,
                train.class_count()
            )));
        }

        self.weights = Matrix::zeros(self.class_count, self.feature_dim);
        self.bias = vec![0.0; self.class_count];
        let mut rng = SeededRng::derive_stream(self.config.seed, 0x53_56_4D);
        let mut history = TrainingHistory::new();
        let mut t = 1u64;

        for epoch in 0..self.config.epochs {
            let start = Instant::now();
            let shuffled = train.shuffled(&mut rng);
            let mut correct = 0usize;
            for i in 0..shuffled.len() {
                let x = shuffled.sample(i);
                let label = shuffled.label(i);

                // Track running train accuracy with the pre-update model.
                let scores = self.decision_scores(x)?;
                let mut best = 0;
                for c in 1..scores.len() {
                    if scores[c] > scores[best] {
                        best = c;
                    }
                }
                if best == label {
                    correct += 1;
                }

                // Pegasos update for every binary subproblem.
                let eta = 1.0 / (self.config.lambda * t as f32);
                for (c, &score) in scores.iter().enumerate() {
                    let y = if c == label { 1.0f32 } else { -1.0 };
                    let margin = y * score;
                    let w = self.weights.row_mut(c);
                    // Shrink (regularization).
                    let shrink = 1.0 - eta * self.config.lambda;
                    for v in w.iter_mut() {
                        *v *= shrink;
                    }
                    self.bias[c] *= shrink;
                    if margin < 1.0 {
                        disthd_linalg::axpy(eta * y, x, w);
                        self.bias[c] += eta * y;
                    }
                }
                t += 1;
            }
            self.fitted = true;

            let eval_accuracy = match eval {
                Some(data) => Some(self.accuracy_internal(data)?),
                None => None,
            };
            history.push(EpochRecord {
                epoch,
                train_accuracy: correct as f64 / train.len().max(1) as f64,
                eval_accuracy,
                elapsed: start.elapsed(),
            });
        }
        Ok(history)
    }

    fn predict_one(&mut self, features: &[f32]) -> Result<usize, ModelError> {
        if !self.fitted {
            return Err(ModelError::NotFitted);
        }
        let scores = self.decision_scores(features)?;
        let mut best = 0;
        for c in 1..scores.len() {
            if scores[c] > scores[best] {
                best = c;
            }
        }
        Ok(best)
    }
}

impl LinearSvm {
    fn accuracy_internal(&self, data: &Dataset) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for i in 0..data.len() {
            let scores = self.decision_scores(data.sample(i))?;
            let mut best = 0;
            for c in 1..scores.len() {
                if scores[c] > scores[best] {
                    best = c;
                }
            }
            if best == data.label(i) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};

    fn small_data() -> disthd_datasets::TrainTest {
        PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap()
    }

    #[test]
    fn learns_linearly_separable_data() {
        let data = small_data();
        let mut model = LinearSvm::new(
            SvmConfig::default(),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        let acc = model.accuracy(&data.test).unwrap();
        assert!(acc > 0.45, "accuracy {acc}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = LinearSvm::new(SvmConfig::default(), 4, 2);
        assert!(matches!(
            model.predict_one(&[0.0; 4]),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn decision_scores_have_one_entry_per_class() {
        let model = LinearSvm::new(SvmConfig::default(), 4, 3);
        assert_eq!(model.decision_scores(&[0.0; 4]).unwrap().len(), 3);
        assert!(model.decision_scores(&[0.0; 5]).is_err());
    }

    #[test]
    fn incompatible_dataset_rejected() {
        let data = small_data();
        let mut model = LinearSvm::new(SvmConfig::default(), 4, 3);
        assert!(model.fit(&data.train, None).is_err());
    }

    #[test]
    fn history_records_epochs() {
        let data = small_data();
        let cfg = SvmConfig {
            epochs: 3,
            ..Default::default()
        };
        let mut model = LinearSvm::new(cfg, data.train.feature_dim(), data.train.class_count());
        let history = model.fit(&data.train, Some(&data.test)).unwrap();
        assert_eq!(history.epochs(), 3);
        assert!(history.records()[2].eval_accuracy.is_some());
    }
}
