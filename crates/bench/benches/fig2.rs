//! Fig. 2 bench: the static-encoder dimensionality cost — encoding and
//! similarity search at D = 0.5k vs D = 4k (the gap that motivates dynamic
//! encoding), plus top-2 vs top-1 query cost.

use criterion::{criterion_group, criterion_main, Criterion};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_hd::encoder::{Encoder, RbfEncoder};
use disthd_hd::ClassModel;
use disthd_linalg::RngSeed;

fn bench_static_encoder_cost(c: &mut Criterion) {
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(0.005))
        .expect("generation");
    let mut group = c.benchmark_group("fig2_static_encoder");
    group.sample_size(10);
    for dim in [500usize, 4000] {
        let encoder = RbfEncoder::new(data.train.feature_dim(), dim, RngSeed(1));
        group.bench_function(format!("encode_batch_d{dim}"), |b| {
            b.iter(|| {
                let encoded = encoder.encode_batch(data.train.features()).expect("encode");
                std::hint::black_box(encoded.rows())
            });
        });
    }
    group.finish();
}

fn bench_topk_queries(c: &mut Criterion) {
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(0.005))
        .expect("generation");
    let dim = 500;
    let encoder = RbfEncoder::new(data.train.feature_dim(), dim, RngSeed(1));
    let encoded = encoder.encode_batch(data.train.features()).expect("encode");
    let mut model = ClassModel::new(data.train.class_count(), dim);
    disthd_hd::learn::bundle_init(&mut model, &encoded, data.train.labels()).expect("init");
    let query = encoded.row(0).to_vec();

    let mut group = c.benchmark_group("fig2_topk_query");
    group.bench_function("top1", |b| {
        b.iter(|| std::hint::black_box(model.top1(&query).expect("top1")));
    });
    group.bench_function("top2", |b| {
        b.iter(|| std::hint::black_box(model.top2(&query).expect("top2")));
    });
    group.finish();
}

criterion_group!(benches, bench_static_encoder_cost, bench_topk_queries);
criterion_main!(benches);
