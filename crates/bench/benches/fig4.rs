//! Fig. 4 bench: end-to-end training cost of every model in the accuracy
//! panel on a small DIABETES-like workload.  The accuracy comparison itself
//! is `--bin fig4_accuracy`; this bench tracks the fit cost of each panel
//! member so accuracy/cost regressions show up together.

use criterion::{criterion_group, criterion_main, Criterion};
use disthd_bench::{build_model, paper_models};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_linalg::RngSeed;

fn bench_panel_training(c: &mut Criterion) {
    let data = PaperDataset::Diabetes
        .generate(&SuiteConfig::at_scale(0.002))
        .expect("generation");
    let mut group = c.benchmark_group("fig4_training");
    group.sample_size(10);
    for kind in paper_models(500, 4000) {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut model = build_model(
                    kind,
                    data.train.feature_dim(),
                    data.train.class_count(),
                    RngSeed(5),
                );
                let history = model.fit(&data.train, None).expect("fit");
                std::hint::black_box(history.epochs())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_panel_training);
criterion_main!(benches);
