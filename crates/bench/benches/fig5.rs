//! Fig. 5 bench: the paper's efficiency claims as Criterion measurements —
//! training time (DistHD vs NeuralHD vs BaselineHD at D* = 4k vs DNN) and
//! single-sample inference latency (DistHD 0.5k vs BaselineHD 4k).

use criterion::{criterion_group, criterion_main, Criterion};
use disthd_bench::{build_model, ModelKind};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_linalg::RngSeed;

fn bench_training(c: &mut Criterion) {
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(0.01))
        .expect("generation");
    let mut group = c.benchmark_group("fig5_training");
    group.sample_size(10);
    for kind in [
        ModelKind::Dnn,
        ModelKind::BaselineHd { dim: 4000 },
        ModelKind::NeuralHd { dim: 500 },
        ModelKind::DistHd { dim: 500 },
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut model = build_model(
                    kind,
                    data.train.feature_dim(),
                    data.train.class_count(),
                    RngSeed(5),
                );
                std::hint::black_box(model.fit(&data.train, None).expect("fit").epochs())
            });
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(0.01))
        .expect("generation");
    let mut group = c.benchmark_group("fig5_inference");
    group.sample_size(20);
    for kind in [
        ModelKind::BaselineHd { dim: 4000 },
        ModelKind::DistHd { dim: 500 },
        ModelKind::Dnn,
    ] {
        let mut model = build_model(
            kind,
            data.train.feature_dim(),
            data.train.class_count(),
            RngSeed(5),
        );
        model.fit(&data.train, None).expect("fit");
        let sample = data.test.sample(0).to_vec();
        group.bench_function(format!("{}_one_sample", kind.label()), |b| {
            b.iter(|| std::hint::black_box(model.predict_one(&sample).expect("predict")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);
