//! Fig. 7 bench: the per-iteration cost of each dynamic-encoding strategy —
//! one adaptive epoch, one DistHD regeneration step (top-2 categorize +
//! Algorithm 2 + partial re-encode) and one NeuralHD regeneration step
//! (variance scoring + full re-encode).  The partial-vs-full re-encode gap
//! is the mechanical source of DistHD's convergence-speed advantage.

use criterion::{criterion_group, criterion_main, Criterion};
use disthd::{select_undesired_dims, WeightParams};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_hd::encoder::{Encoder, RbfEncoder, RegenerativeEncoder};
use disthd_hd::learn::{adaptive_epoch, bundle_init};
use disthd_hd::ClassModel;
use disthd_linalg::{RngSeed, SeededRng};

fn bench_iteration_pieces(c: &mut Criterion) {
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(0.01))
        .expect("generation");
    let dim = 500;
    let encoder = RbfEncoder::new(data.train.feature_dim(), dim, RngSeed(1));
    let encoded = encoder.encode_batch(data.train.features()).expect("encode");
    let mut model = ClassModel::new(data.train.class_count(), dim);
    bundle_init(&mut model, &encoded, data.train.labels()).expect("init");

    let mut group = c.benchmark_group("fig7_iteration");
    group.sample_size(10);

    group.bench_function("adaptive_epoch", |b| {
        b.iter(|| {
            let mut m = model.clone();
            std::hint::black_box(
                adaptive_epoch(&mut m, &encoded, data.train.labels(), 0.05).expect("epoch"),
            )
        });
    });

    group.bench_function("disthd_select_dims", |b| {
        let mut m = model.clone();
        let outcomes = disthd::categorize(&mut m, &encoded, data.train.labels()).expect("top2");
        b.iter(|| {
            std::hint::black_box(select_undesired_dims(
                &encoded,
                data.train.labels(),
                &outcomes,
                m.classes(),
                &WeightParams::default(),
                0.10,
            ))
        });
    });

    let dims: Vec<usize> = (0..50).collect();
    group.bench_function("disthd_partial_reencode_50", |b| {
        let mut enc = encoder.clone();
        let mut rng = SeededRng::new(RngSeed(2));
        enc.regenerate(&dims, &mut rng);
        b.iter(|| {
            let mut batch = encoded.clone();
            enc.reencode_dims(data.train.features(), &mut batch, &dims)
                .expect("reencode");
            std::hint::black_box(batch.rows())
        });
    });

    group.bench_function("neuralhd_full_reencode", |b| {
        b.iter(|| {
            std::hint::black_box(
                encoder
                    .encode_batch(data.train.features())
                    .expect("encode")
                    .rows(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_iteration_pieces);
criterion_main!(benches);
