//! Fig. 8 bench: throughput of the robustness pipeline — quantization at
//! each precision, fault injection at the paper's error rates, and faulted
//! re-evaluation of a DistHD class model.

use criterion::{criterion_group, criterion_main, Criterion};
use disthd_hd::noise::flip_random_bits;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_hd::ClassModel;
use disthd_linalg::{Gaussian, Matrix, RngSeed, SeededRng};

fn model_matrix() -> Matrix {
    let mut rng = SeededRng::new(RngSeed(9));
    let gaussian = Gaussian::standard();
    Matrix::from_fn(12, 4000, |_, _| gaussian.sample(&mut rng))
}

fn bench_quantization(c: &mut Criterion) {
    let m = model_matrix();
    let mut group = c.benchmark_group("fig8_quantize");
    group.sample_size(20);
    for width in BitWidth::all() {
        group.bench_function(format!("quantize_{width}"), |b| {
            b.iter(|| std::hint::black_box(QuantizedMatrix::quantize(&m, width).payload_bits()));
        });
    }
    group.finish();
}

fn bench_fault_injection(c: &mut Criterion) {
    let m = model_matrix();
    let quantized = QuantizedMatrix::quantize(&m, BitWidth::B8);
    let mut group = c.benchmark_group("fig8_fault_injection");
    group.sample_size(20);
    for rate in [0.01f64, 0.10] {
        group.bench_function(format!("flip_{:.0}pct", rate * 100.0), |b| {
            b.iter(|| {
                let mut faulted = quantized.clone();
                let mut rng = SeededRng::new(RngSeed(3));
                std::hint::black_box(flip_random_bits(&mut faulted, rate, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_faulted_evaluation(c: &mut Criterion) {
    let m = model_matrix();
    let quantized = QuantizedMatrix::quantize(&m, BitWidth::B1);
    let mut rng = SeededRng::new(RngSeed(4));
    let gaussian = Gaussian::standard();
    let queries = Matrix::from_fn(100, 4000, |_, _| gaussian.sample(&mut rng));
    c.bench_function("fig8_faulted_eval_100_queries", |b| {
        b.iter(|| {
            let mut faulted = quantized.clone();
            let mut frng = SeededRng::new(RngSeed(5));
            flip_random_bits(&mut faulted, 0.05, &mut frng);
            let mut model = ClassModel::from_matrix(faulted.dequantize());
            let hits: usize = (0..queries.rows())
                .map(|i| model.predict(queries.row(i)))
                .sum();
            std::hint::black_box(hits)
        });
    });
}

criterion_group!(
    benches,
    bench_quantization,
    bench_fault_injection,
    bench_faulted_evaluation
);
criterion_main!(benches);
