//! Table I bench: generation throughput of each synthetic dataset.
//!
//! Regenerating Table I is `--bin table1_datasets`; this bench tracks how
//! expensive the substrate itself is (one row per dataset).

use criterion::{criterion_group, criterion_main, Criterion};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_generation");
    group.sample_size(10);
    for dataset in PaperDataset::all() {
        group.bench_function(dataset.name(), |b| {
            let config = SuiteConfig::at_scale(0.005);
            b.iter(|| {
                let data = dataset.generate(&config).expect("generation");
                std::hint::black_box(data.train.len() + data.test.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
