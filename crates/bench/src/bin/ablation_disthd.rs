//! Ablation study of DistHD's design choices (beyond the paper's figures):
//!
//! 1. **Regeneration rate R** — accuracy and churn vs R ∈ {0, 5, 10, 20, 30}%;
//! 2. **Regeneration interval** — every 1 / 2 / 4 epochs vs never;
//! 3. **Selection rule** — DistHD's learner-aware intersection vs
//!    NeuralHD's variance scoring vs random dimension dropping at the same
//!    budget (isolates the value of the top-2 signal);
//! 4. **Encoder bandwidth γ** — the random-feature kernel width
//!    (DESIGN.md §3 substitution note).
//!
//! Run with `cargo run --release -p disthd-bench --bin ablation_disthd`.

use disthd::{DistHd, DistHdConfig};
use disthd_baselines::{Classifier, NeuralHd, NeuralHdConfig};
use disthd_bench::{default_scale, trial_seeds};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::Table;
use disthd_eval::TrialSummary;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{Encoder, RbfEncoder, RegenerativeEncoder};
use disthd_hd::learn::{adaptive_epoch, bundle_init};
use disthd_hd::ClassModel;
use disthd_linalg::{RngSeed, SeededRng};

fn main() {
    let scale = default_scale();
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    let seeds = trial_seeds(3);
    println!(
        "DistHD ablations on UCIHAR-like data (scale {scale}, {} trials)\n",
        seeds.len()
    );

    // ---- 1. Regeneration rate ----
    println!("(1) regeneration rate R (interval 1, 20 epochs)");
    let mut table = Table::new(vec!["R".into(), "accuracy".into(), "regen dims".into()]);
    for rate in [0.0f64, 0.05, 0.10, 0.20, 0.30] {
        let mut accs = Vec::new();
        let mut regen = 0u64;
        for &seed in &seeds {
            let mut model = DistHd::new(
                DistHdConfig {
                    dim: 500,
                    epochs: 20,
                    regen_rate: rate,
                    regen_interval: if rate == 0.0 { 0 } else { 1 },
                    seed,
                    ..Default::default()
                },
                data.train.feature_dim(),
                data.train.class_count(),
            );
            model.fit(&data.train, None).expect("fit");
            regen += model.last_report().expect("fitted").regenerated_dims;
            accs.push(model.accuracy(&data.test).expect("accuracy"));
        }
        table.add_row(vec![
            format!("{:.0}%", rate * 100.0),
            TrialSummary::of(&accs).format_percent(),
            (regen / seeds.len() as u64).to_string(),
        ]);
    }
    println!("{}", table.render());

    // ---- 2. Regeneration interval ----
    println!("(2) regeneration interval (R = 10%, 20 epochs)");
    let mut table = Table::new(vec!["interval".into(), "accuracy".into()]);
    for interval in [0usize, 1, 2, 4] {
        let mut accs = Vec::new();
        for &seed in &seeds {
            let mut model = DistHd::new(
                DistHdConfig {
                    dim: 500,
                    epochs: 20,
                    regen_interval: interval,
                    seed,
                    ..Default::default()
                },
                data.train.feature_dim(),
                data.train.class_count(),
            );
            model.fit(&data.train, None).expect("fit");
            accs.push(model.accuracy(&data.test).expect("accuracy"));
        }
        table.add_row(vec![
            if interval == 0 {
                "never".into()
            } else {
                format!("every {interval}")
            },
            TrialSummary::of(&accs).format_percent(),
        ]);
    }
    println!("{}", table.render());

    // ---- 3. Selection rule at a fixed budget ----
    println!("(3) dimension-selection rule (10% budget, 20 epochs)");
    let mut table = Table::new(vec!["rule".into(), "accuracy".into()]);

    let mut disthd_accs = Vec::new();
    let mut neural_accs = Vec::new();
    let mut random_accs = Vec::new();
    for &seed in &seeds {
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 500,
                epochs: 20,
                seed,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).expect("fit");
        disthd_accs.push(model.accuracy(&data.test).expect("accuracy"));

        let mut neural = NeuralHd::new(
            NeuralHdConfig {
                dim: 500,
                epochs: 20,
                regen_interval: 1,
                seed,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        neural.fit(&data.train, None).expect("fit");
        neural_accs.push(neural.accuracy(&data.test).expect("accuracy"));

        random_accs.push(random_drop_accuracy(&data, 500, 20, 0.10, seed));
    }
    table.add_row(vec![
        "DistHD (learner-aware)".into(),
        TrialSummary::of(&disthd_accs).format_percent(),
    ]);
    table.add_row(vec![
        "NeuralHD (variance)".into(),
        TrialSummary::of(&neural_accs).format_percent(),
    ]);
    table.add_row(vec![
        "random drop".into(),
        TrialSummary::of(&random_accs).format_percent(),
    ]);
    println!("{}", table.render());

    // ---- 4. Encoder bandwidth ----
    println!("(4) encoder bandwidth gamma (static training, D = 500)");
    let mut table = Table::new(vec!["gamma".into(), "accuracy".into()]);
    for gamma in [0.5f32, 1.0, 2.0, 3.0, 6.0, 12.0] {
        let mut accs = Vec::new();
        for &seed in &seeds {
            accs.push(bandwidth_accuracy(&data, gamma, seed));
        }
        table.add_row(vec![
            format!("{gamma}"),
            TrialSummary::of(&accs).format_percent(),
        ]);
    }
    println!("{}", table.render());
    println!("Expected: accuracy peaks at moderate gamma — too small underfits (kernel");
    println!("too wide), too large memorizes (kernel too narrow); gamma = 3 is the default.");
}

/// Trains with DistHD's loop but replaces the selection rule with a uniform
/// random draw of the same budget.
fn random_drop_accuracy(
    data: &disthd_datasets::TrainTest,
    dim: usize,
    epochs: usize,
    rate: f64,
    seed: RngSeed,
) -> f64 {
    let mut encoder = RbfEncoder::new(data.train.feature_dim(), dim, seed);
    let mut rng = SeededRng::derive_stream(seed, 0xAB1A);
    let mut encoded = encoder.encode_batch(data.train.features()).expect("encode");
    let mut center = EncodingCenter::fit_and_apply(&mut encoded);
    let mut model = ClassModel::new(data.train.class_count(), dim);
    bundle_init(&mut model, &encoded, data.train.labels()).expect("init");
    let budget = ((dim as f64) * rate).round() as usize;

    for epoch in 0..epochs {
        adaptive_epoch(&mut model, &encoded, data.train.labels(), 0.05).expect("epoch");
        if epoch + 1 < epochs {
            let mut dims: Vec<usize> = (0..dim).collect();
            rng.shuffle(&mut dims);
            dims.truncate(budget);
            encoder.regenerate(&dims, &mut rng);
            model.reset_dimensions(&dims);
            encoder
                .reencode_dims(data.train.features(), &mut encoded, &dims)
                .expect("reencode");
            center.refit_dims(&mut encoded, &dims);
            model.bundle_dimensions(&encoded, data.train.labels(), &dims);
        }
    }

    let mut test_encoded = encoder.encode_batch(data.test.features()).expect("encode");
    center.apply_batch(&mut test_encoded);
    let correct = (0..test_encoded.rows())
        .filter(|&i| model.predict(test_encoded.row(i)) == data.test.label(i))
        .count();
    correct as f64 / data.test.len() as f64
}

/// Static-encoder accuracy at an explicit bandwidth.
fn bandwidth_accuracy(data: &disthd_datasets::TrainTest, gamma: f32, seed: RngSeed) -> f64 {
    let encoder = RbfEncoder::with_bandwidth(data.train.feature_dim(), 500, gamma, seed);
    let mut encoded = encoder.encode_batch(data.train.features()).expect("encode");
    let center = EncodingCenter::fit_and_apply(&mut encoded);
    let mut model = ClassModel::new(data.train.class_count(), 500);
    bundle_init(&mut model, &encoded, data.train.labels()).expect("init");
    for _ in 0..15 {
        adaptive_epoch(&mut model, &encoded, data.train.labels(), 0.05).expect("epoch");
    }
    let mut test_encoded = encoder.encode_batch(data.test.features()).expect("encode");
    center.apply_batch(&mut test_encoded);
    let correct = (0..test_encoded.rows())
        .filter(|&i| model.predict(test_encoded.row(i)) == data.test.label(i))
        .count();
    correct as f64 / data.test.len() as f64
}
