//! Regenerates **Fig. 2**: the motivation for dynamic encoding.
//!
//! * Panel (a): static-encoder HDC needs very high dimensionality — we
//!   sweep BaselineHD over D ∈ {0.5k, 1k, 2k, 4k, 6k} and report accuracy,
//!   training time and inference latency next to the DNN.
//! * Panel (b): SOTA HDC is much better at top-2 than top-1 classification —
//!   we train BaselineHD with increasing iteration budgets and report
//!   top-1/2/3 accuracy.
//!
//! Run with `cargo run --release -p disthd-bench --bin fig2_motivation`.

use disthd_baselines::{BaselineHd, BaselineHdConfig, Classifier};
use disthd_bench::{default_scale, run_model, ModelKind};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::{percent, seconds, Table};
use disthd_eval::top_k_accuracy;
use disthd_linalg::RngSeed;

fn main() {
    let scale = default_scale();
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    println!(
        "Fig. 2 motivation on UCIHAR-like data (scale {scale}: train {}, test {})\n",
        data.train.len(),
        data.test.len()
    );

    // ---- Panel (a): accuracy vs dimensionality for static HDC, vs DNN ----
    println!("(a) Static-encoder HDC vs DNN");
    let mut table = Table::new(vec![
        "model".into(),
        "accuracy".into(),
        "training time".into(),
        "inference latency".into(),
    ]);
    for dim in [500usize, 1000, 2000, 4000, 6000] {
        let result = run_model(ModelKind::BaselineHd { dim }, &data, RngSeed(7)).expect("run");
        table.add_row(vec![
            result.kind.label(),
            percent(result.accuracy),
            seconds(result.train_time.as_secs_f64()),
            seconds(result.inference_time.as_secs_f64()),
        ]);
    }
    let dnn = run_model(ModelKind::Dnn, &data, RngSeed(7)).expect("run");
    table.add_row(vec![
        dnn.kind.label(),
        percent(dnn.accuracy),
        seconds(dnn.train_time.as_secs_f64()),
        seconds(dnn.inference_time.as_secs_f64()),
    ]);
    println!("{}", table.render());

    // ---- Panel (b): top-1/2/3 accuracy per training iteration budget ----
    println!("(b) Top-k accuracy of static HDC vs training iterations");
    let mut table = Table::new(vec![
        "iterations".into(),
        "top-1".into(),
        "top-2".into(),
        "top-3".into(),
    ]);
    for iterations in [1usize, 5, 10, 20, 30, 40, 50] {
        let mut model = BaselineHd::new(
            BaselineHdConfig {
                dim: 500,
                epochs: iterations,
                patience: None,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).expect("fit");
        let scores: Vec<Vec<f32>> = (0..data.test.len())
            .map(|i| model.decision_scores(data.test.sample(i)).expect("scores"))
            .collect();
        let labels = data.test.labels();
        table.add_row(vec![
            iterations.to_string(),
            percent(top_k_accuracy(&scores, labels, 1)),
            percent(top_k_accuracy(&scores, labels, 2)),
            percent(top_k_accuracy(&scores, labels, 3)),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: top-2 >> top-1, and (top-3 - top-2) << (top-2 - top-1).");
}
