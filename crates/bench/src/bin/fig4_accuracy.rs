//! Regenerates **Fig. 4**: classification accuracy of DistHD (D = 0.5k)
//! against DNN, SVM, BaselineHD (D = 0.5k), BaselineHD (D* = 4k) and
//! NeuralHD (D = 0.5k) on all five datasets, plus the paper's summary
//! deltas (DistHD vs each comparator, averaged over datasets).
//!
//! Run with `cargo run --release -p disthd-bench --bin fig4_accuracy`.

use disthd_bench::{default_scale, paper_models, run_model, trial_seeds};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::{percent, Table};

fn main() {
    let scale = default_scale();
    let trials = trial_seeds(3);
    let models = paper_models(500, 4000);
    println!(
        "Fig. 4: accuracy comparison (scale {scale}, mean of {} trials)\n",
        trials.len()
    );

    let mut table = Table::new(
        std::iter::once("model".to_string())
            .chain(PaperDataset::all().iter().map(|d| d.name().to_string()))
            .chain(std::iter::once("mean".to_string()))
            .collect(),
    );

    // accuracy[model][dataset]
    let mut accuracy = vec![vec![0.0f64; PaperDataset::all().len()]; models.len()];
    for (di, dataset) in PaperDataset::all().iter().enumerate() {
        let data = dataset
            .generate(&SuiteConfig::at_scale(scale))
            .expect("dataset generation");
        for (mi, &kind) in models.iter().enumerate() {
            let mut sum = 0.0;
            for &seed in &trials {
                sum += run_model(kind, &data, seed).expect("run").accuracy;
            }
            accuracy[mi][di] = sum / trials.len() as f64;
        }
    }

    for (mi, kind) in models.iter().enumerate() {
        let mean: f64 = accuracy[mi].iter().sum::<f64>() / accuracy[mi].len() as f64;
        table.add_row(
            std::iter::once(kind.label())
                .chain(accuracy[mi].iter().map(|&a| percent(a)))
                .chain(std::iter::once(percent(mean)))
                .collect(),
        );
    }
    println!("{}", table.render());

    // Paper summary deltas (model panel order fixed by `paper_models`).
    let mean = |mi: usize| accuracy[mi].iter().sum::<f64>() / accuracy[mi].len() as f64;
    let disthd = mean(5);
    println!(
        "DistHD(0.5k) vs DNN:               {:+.2}%",
        (disthd - mean(0)) * 100.0
    );
    println!(
        "DistHD(0.5k) vs SVM:               {:+.2}%  (paper: +1.17%)",
        (disthd - mean(1)) * 100.0
    );
    println!(
        "DistHD(0.5k) vs BaselineHD(0.5k):  {:+.2}%  (paper: +6.96%)",
        (disthd - mean(2)) * 100.0
    );
    println!(
        "DistHD(0.5k) vs BaselineHD(4k):    {:+.2}%  (paper: +1.82%)",
        (disthd - mean(3)) * 100.0
    );
    println!(
        "DistHD(0.5k) vs NeuralHD(0.5k):    {:+.2}%  (paper: +1.88%)",
        (disthd - mean(4)) * 100.0
    );
    println!("\nDimension reduction vs effective BaselineHD: 4000 / 500 = 8.0x (paper: 8.0x)");
}
