//! Regenerates **Fig. 5**: training time and inference latency of DNN,
//! SVM, BaselineHD (D* = 4k), NeuralHD (D = 0.5k) and DistHD (D = 0.5k) on
//! all five datasets, plus the paper's headline speedup ratios.
//!
//! Absolute times differ from the paper's i9-12900 testbed; the *ratios*
//! between models are the reproduction target.
//!
//! Run with `cargo run --release -p disthd-bench --bin fig5_efficiency`.

use disthd_bench::{default_scale, run_model, ModelKind};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::{ratio, seconds, Table};
use disthd_linalg::RngSeed;

fn main() {
    let scale = default_scale();
    let models = [
        ModelKind::Dnn,
        ModelKind::Svm,
        ModelKind::BaselineHd { dim: 4000 },
        ModelKind::NeuralHd { dim: 500 },
        ModelKind::DistHd { dim: 500 },
    ];
    println!("Fig. 5: training time and inference latency (scale {scale})\n");

    let mut train_table = Table::new(
        std::iter::once("model (training s)".to_string())
            .chain(PaperDataset::all().iter().map(|d| d.name().to_string()))
            .collect(),
    );
    let mut infer_table = Table::new(
        std::iter::once("model (inference s)".to_string())
            .chain(PaperDataset::all().iter().map(|d| d.name().to_string()))
            .collect(),
    );

    // times[model][dataset] = (train_s, infer_s)
    let mut times = vec![vec![(0.0f64, 0.0f64); PaperDataset::all().len()]; models.len()];
    for (di, dataset) in PaperDataset::all().iter().enumerate() {
        let data = dataset
            .generate(&SuiteConfig::at_scale(scale))
            .expect("dataset generation");
        for (mi, &kind) in models.iter().enumerate() {
            let result = run_model(kind, &data, RngSeed(11)).expect("run");
            times[mi][di] = (
                result.train_time.as_secs_f64(),
                result.inference_time.as_secs_f64(),
            );
        }
    }

    for (mi, kind) in models.iter().enumerate() {
        train_table.add_row(
            std::iter::once(kind.label())
                .chain(times[mi].iter().map(|t| seconds(t.0)))
                .collect(),
        );
        infer_table.add_row(
            std::iter::once(kind.label())
                .chain(times[mi].iter().map(|t| seconds(t.1)))
                .collect(),
        );
    }
    println!("{}", train_table.render());
    println!("{}", infer_table.render());

    // Geometric-mean ratios across datasets (panel order as above).
    let geo = |f: &dyn Fn(usize) -> f64, mi: usize| -> f64 {
        let logs: f64 = (0..PaperDataset::all().len())
            .map(|di| f(mi * PaperDataset::all().len() + di).ln())
            .sum();
        (logs / PaperDataset::all().len() as f64).exp()
    };
    let flat_train: Vec<f64> = times.iter().flatten().map(|t| t.0).collect();
    let flat_infer: Vec<f64> = times.iter().flatten().map(|t| t.1).collect();
    let train_of = |i: usize| flat_train[i];
    let infer_of = |i: usize| flat_infer[i];

    let disthd_train = geo(&train_of, 4);
    let disthd_infer = geo(&infer_of, 4);
    println!(
        "training speedup vs DNN:            {}  (paper: 5.97x)",
        ratio(geo(&train_of, 0) / disthd_train)
    );
    println!(
        "training speedup vs BaselineHD(4k): {}  (paper: 1.15x)",
        ratio(geo(&train_of, 2) / disthd_train)
    );
    println!(
        "training speedup vs NeuralHD:       {}  (paper: 2.32x)",
        ratio(geo(&train_of, 3) / disthd_train)
    );
    println!(
        "inference speedup vs BaselineHD(4k): {} (paper: 8.09x)",
        ratio(geo(&infer_of, 2) / disthd_infer)
    );
}
