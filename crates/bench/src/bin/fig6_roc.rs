//! Regenerates **Fig. 6**: ROC curves of DistHD under different α/β weight
//! ratios.
//!
//! The paper binarizes a classification task and sweeps the decision
//! threshold over the positive-class score.  A model trained with
//! `α/β = 2` favours sensitivity (TPR rises steeply); `α/β = 0.5` favours
//! specificity (FPR stays low); both reach a comparable AUC (paper: 0.91
//! for both).
//!
//! Run with `cargo run --release -p disthd-bench --bin fig6_roc`.

use disthd::{DistHd, DistHdConfig, WeightParams};
use disthd_bench::default_scale;
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::{auc, roc_curve, Classifier};
use disthd_linalg::RngSeed;

fn main() {
    let scale = default_scale();
    let data = PaperDataset::Diabetes
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    // Binarize: class 0 (no readmission) vs the rest.
    let positive_class = 0usize;
    println!(
        "Fig. 6: ROC of DistHD weight parameters (DIABETES-like, class {positive_class} vs rest, scale {scale})\n"
    );

    for (name, weights) in [
        ("alpha/beta = 2.0", WeightParams::new(2.0, 1.0, 0.25)),
        ("alpha/beta = 0.5", WeightParams::new(1.0, 2.0, 0.5)),
    ] {
        let config = DistHdConfig {
            dim: 500,
            epochs: 20,
            weights,
            seed: RngSeed(23),
            ..Default::default()
        };
        let mut model = DistHd::new(config, data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train, None).expect("fit");

        let mut scores = Vec::with_capacity(data.test.len());
        let mut labels = Vec::with_capacity(data.test.len());
        for i in 0..data.test.len() {
            let class_scores = model.decision_scores(data.test.sample(i)).expect("scores");
            // Positive score = margin of the positive class over the best
            // other class (standard one-vs-rest score for ROC).
            let best_other = class_scores
                .iter()
                .enumerate()
                .filter(|(c, _)| *c != positive_class)
                .map(|(_, &s)| s)
                .fold(f32::NEG_INFINITY, f32::max);
            scores.push(class_scores[positive_class] - best_other);
            labels.push(data.test.label(i) == positive_class);
        }

        let curve = roc_curve(&scores, &labels);
        println!("{name}: AUC = {:.3}  (paper: 0.91)", auc(&curve));
        println!("  FPR -> TPR samples:");
        for target_fpr in [0.05f64, 0.1, 0.2, 0.3, 0.5, 0.75] {
            let point = curve
                .iter()
                .rev()
                .find(|p| p.fpr <= target_fpr)
                .expect("curve starts at 0");
            println!("    fpr<={target_fpr:.2}: tpr {:.3}", point.tpr);
        }
        println!();
    }
    println!("Expected shape: the larger-alpha model gains TPR faster at low FPR;");
    println!("the larger-beta model holds FPR lower as TPR rises; AUCs comparable.");
}
