//! Regenerates **Fig. 7**: convergence of DistHD vs NeuralHD vs BaselineHD.
//!
//! * Left panel: held-out accuracy per training iteration at D = 0.5k.
//! * Right panel: converged accuracy as a function of dimensionality
//!   D ∈ {1k, 2k, 3k, 4k} for BaselineHD vs DistHD at 0.5k–1k.
//!
//! Run with `cargo run --release -p disthd-bench --bin fig7_convergence`.

use disthd::{DistHd, DistHdConfig};
use disthd_baselines::{BaselineHd, BaselineHdConfig, Classifier, NeuralHd, NeuralHdConfig};
use disthd_bench::{default_scale, run_model, ModelKind};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::{percent, Table};
use disthd_eval::TrainingHistory;
use disthd_linalg::RngSeed;

fn main() {
    let scale = default_scale();
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    println!(
        "Fig. 7: convergence on UCIHAR-like data (scale {scale}: train {}, test {})\n",
        data.train.len(),
        data.test.len()
    );

    // ---- Left panel: eval accuracy per iteration at D = 0.5k ----
    let epochs = 30usize;
    let seed = RngSeed(17);
    let mut histories: Vec<(String, TrainingHistory)> = Vec::new();

    let mut disthd = DistHd::new(
        DistHdConfig {
            dim: 500,
            epochs,
            patience: None,
            seed,
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    histories.push((
        "DistHD".into(),
        disthd.fit(&data.train, Some(&data.test)).expect("fit"),
    ));

    let mut neuralhd = NeuralHd::new(
        NeuralHdConfig {
            dim: 500,
            epochs,
            patience: None,
            seed,
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    histories.push((
        "NeuralHD".into(),
        neuralhd.fit(&data.train, Some(&data.test)).expect("fit"),
    ));

    let mut baseline = BaselineHd::new(
        BaselineHdConfig {
            dim: 500,
            epochs,
            patience: None,
            seed,
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    histories.push((
        "BaselineHD".into(),
        baseline.fit(&data.train, Some(&data.test)).expect("fit"),
    ));

    println!("(left) held-out accuracy per iteration, D = 0.5k");
    let mut table = Table::new(
        std::iter::once("iteration".to_string())
            .chain(histories.iter().map(|(n, _)| n.clone()))
            .collect(),
    );
    for epoch in (0..epochs).step_by(3) {
        table.add_row(
            std::iter::once(epoch.to_string())
                .chain(histories.iter().map(|(_, h)| {
                    h.records()
                        .get(epoch)
                        .and_then(|r| r.eval_accuracy)
                        .map_or("-".into(), percent)
                }))
                .collect(),
        );
    }
    println!("{}", table.render());
    for threshold in [0.92f64, 0.94] {
        let line: Vec<String> = histories
            .iter()
            .map(|(n, h)| {
                format!(
                    "{n}: {}",
                    h.records()
                        .iter()
                        .position(|r| r.eval_accuracy.unwrap_or(0.0) >= threshold)
                        .map_or("never".into(), |e| format!("iter {e}"))
                )
            })
            .collect();
        println!(
            "first iteration reaching {}: {}",
            percent(threshold),
            line.join(", ")
        );
    }

    // ---- Right panel: accuracy vs dimensionality ----
    println!("\n(right) converged accuracy vs dimensionality");
    let mut table = Table::new(vec!["D".into(), "BaselineHD".into(), "DistHD".into()]);
    for dim in [500usize, 1000, 2000, 3000, 4000] {
        let baseline = run_model(ModelKind::BaselineHd { dim }, &data, seed).expect("run");
        let disthd = run_model(ModelKind::DistHd { dim }, &data, seed).expect("run");
        table.add_row(vec![
            dim.to_string(),
            percent(baseline.accuracy),
            percent(disthd.accuracy),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: DistHD reaches its plateau at much lower D and fewer iterations.");
}
