//! Regenerates **Fig. 8**: quality loss under random memory bit flips.
//!
//! Grid: DNN (8-bit weights) and DistHD at D ∈ {0.5k, 1k, 2k, 4k} ×
//! precision ∈ {1, 2, 4, 8} bits × error rate ∈ {1, 2, 5, 10, 15}%.
//! Quality loss = clean accuracy − faulted accuracy, averaged over trials.
//!
//! Run with `cargo run --release -p disthd-bench --bin fig8_robustness`.

use disthd::{DistHd, DistHdConfig};
use disthd_baselines::{Classifier, Mlp, MlpConfig};
use disthd_bench::default_scale;
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::Table;
use disthd_eval::robustness::{
    matrix_fault_campaign, multi_matrix_fault_campaign, paper_error_rates, RobustnessPoint,
};
use disthd_hd::quantize::BitWidth;
use disthd_hd::ClassModel;
use disthd_linalg::{Matrix, RngSeed};

const TRIALS: usize = 3;

fn main() {
    let scale = default_scale();
    let data = PaperDataset::Ucihar
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    println!(
        "Fig. 8: quality loss (%) under bit flips (UCIHAR-like, scale {scale}, {TRIALS} trials)\n"
    );
    let rates = paper_error_rates();
    let header: Vec<String> = std::iter::once("model / rate".to_string())
        .chain(rates.iter().map(|r| format!("{:.0}%", r * 100.0)))
        .collect();

    // ---- DNN at 8-bit weights ----
    let mut mlp = Mlp::new(
        MlpConfig {
            hidden: vec![128],
            epochs: 20,
            learning_rate: 0.02,
            seed: RngSeed(31),
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    mlp.fit(&data.train, None).expect("fit");
    let weight_stack: Vec<Matrix> = mlp.layers().iter().map(|l| l.weights().clone()).collect();
    let points: Vec<RobustnessPoint> = rates
        .iter()
        .map(|&error_rate| RobustnessPoint {
            width: BitWidth::B8,
            error_rate,
        })
        .collect();
    let mlp_eval = |matrices: &[Matrix]| -> f64 {
        let mut faulted = mlp.clone();
        for (layer, m) in faulted.layers_mut().iter_mut().zip(matrices) {
            layer
                .weights_mut()
                .as_mut_slice()
                .copy_from_slice(m.as_slice());
        }
        let predictions = faulted
            .predict_batch(data.test.features())
            .expect("predict");
        disthd_eval::accuracy(&predictions, data.test.labels())
    };
    let dnn_losses =
        multi_matrix_fault_campaign(&weight_stack, &points, TRIALS, RngSeed(41), mlp_eval);

    let mut table = Table::new(header.clone());
    table.add_row(
        std::iter::once("DNN (8-bit)".to_string())
            .chain(
                dnn_losses
                    .iter()
                    .map(|l| format!("{:.1}%", l.loss() * 100.0)),
            )
            .collect(),
    );
    println!("{}", table.render());

    // ---- DistHD at each dimensionality and precision ----
    let mut table = Table::new(header);
    let mut max_ratio: f64 = 0.0;
    for dim in [500usize, 1000, 2000, 4000] {
        let mut model = DistHd::new(
            DistHdConfig {
                dim,
                epochs: 20,
                seed: RngSeed(31),
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).expect("fit");
        let encoded_test = model.encode_dataset(&data.test).expect("encode");
        let class_matrix = model.class_model().expect("fitted").classes().clone();
        let labels = data.test.labels();
        let evaluate = |m: &Matrix| -> f64 {
            let mut faulted = ClassModel::from_matrix(m.clone());
            let correct = (0..encoded_test.rows())
                .filter(|&i| faulted.predict(encoded_test.row(i)) == labels[i])
                .count();
            correct as f64 / labels.len().max(1) as f64
        };
        for width in BitWidth::all() {
            let points: Vec<RobustnessPoint> = rates
                .iter()
                .map(|&error_rate| RobustnessPoint { width, error_rate })
                .collect();
            let losses =
                matrix_fault_campaign(&class_matrix, &points, TRIALS, RngSeed(43), evaluate);
            table.add_row(
                std::iter::once(format!("DistHD {dim} ({width})"))
                    .chain(losses.iter().map(|l| format!("{:.1}%", l.loss() * 100.0)))
                    .collect(),
            );
            // Robustness ratio vs DNN at 10% error (the paper's headline cell).
            let dnn_at_10 = dnn_losses[3].loss().max(1e-4);
            let here_at_10 = losses[3].loss().max(1e-4);
            max_ratio = max_ratio.max(dnn_at_10 / here_at_10);
        }
    }
    println!("{}", table.render());
    println!("best DNN-loss / DistHD-loss ratio at 10% flips: {max_ratio:.1}x  (paper: ~12.9x average, ~10.35x for 1-bit 4k)");
    println!("Expected shape: loss grows with error rate; 1-bit and higher D are most robust; DNN degrades far faster.");
}
