//! Serving-layer throughput benchmark: queries/sec as a function of the
//! batch window, serial vs sharded.
//!
//! Window 1 is classic one-at-a-time serving — every query pays a full
//! encode pass over the base matrix and a similarity pass over the class
//! matrix by itself.  Wider windows coalesce queued queries into one
//! batched pass, amortizing both streams; the sweep quantifies that
//! latency-vs-throughput trade.  The serial column serves through the
//! synchronous [`disthd_serve::ServeEngine`] with single-threaded kernels;
//! the parallel column drives a sharded [`disthd_serve::Server`] — one
//! scoring worker per shard, GEMM threads pinned to 1 so every bit of
//! speedup comes from shard concurrency, not kernel parallelism.
//! Predictions must be **bit-identical** at every window, shard count and
//! thread count (every path serves through the same deterministic
//! kernels); the bin exits non-zero if they ever diverge.
//!
//! With `DISTHD_SOAK_SECS` > 0 the bin additionally runs a sustained
//! closed-loop soak at 1 shard and at `DISTHD_THREADS` shards, recording
//! p50/p99/p999 latency histograms, backpressure counters (shed requests,
//! stolen batches, peak queue depth) and an FNV-1a hash of a deterministic
//! post-soak prediction pass — the hash must be byte-for-byte identical
//! across shard counts and equal to the serial baseline.
//!
//! The `parallel_regression` gate only arms when
//! `parallel_comparison_meaningful` is true — the machine can host every
//! shard on its own core (`machine_cores >= DISTHD_THREADS > 1`).  On a
//! single-core runner parallel can at best tie serial, so the artifact
//! records the comparison as not meaningful instead of reporting a green
//! (or red) speedup that measures only the scheduler.
//!
//! Emits `BENCH_serve.json` (override with `DISTHD_BENCH_OUT`); the
//! workload scales with `DISTHD_SCALE`.  Run with
//! `cargo run --release -p disthd_bench --bin serve_throughput`.

use disthd::{DeployedModel, DistHd, DistHdConfig, EncoderBackend};
use disthd_bench::{default_scale, LatencyHistogram};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::Classifier;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::{parallel, Matrix};
use disthd_serve::{
    BatchPolicy, ChaosPlan, Prediction, RetryPolicy, ServeEngine, Server, ServerClient,
    ServerOptions, SnapshotStore, TaskKind, TaskResponse,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fig. 5's heavy dimensionality (BaselineHD's D* = 4k) — the encode cost
/// batching has to amortize.
const DIM: usize = 4096;
/// Batch windows swept (1 = one-at-a-time serving).
const WINDOWS: [usize; 5] = [1, 8, 32, 128, 512];
/// Timing repetitions; the best rep is reported (least scheduler noise).
const REPS: usize = 3;
/// Offline training epochs for the served model.
const TRAIN_EPOCHS: usize = 6;
/// Batch window of the sustained-load soak: wide enough to amortize, small
/// enough that the 1 ms patience cap — not the window — sets the tail.
const SOAK_WINDOW: usize = 32;

/// Best-of-`REPS` wall-clock seconds for `f`, plus its last result.
fn time_best<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("REPS > 0"))
}

/// FNV-1a over a stream of 64-bit words (little-endian) — the
/// byte-for-byte artifacts CI diffs between runs.
fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// FNV-1a over the prediction stream — the byte-for-byte artifact CI diffs
/// between shard counts.
fn fnv1a(predictions: &[usize]) -> u64 {
    fnv1a_words(predictions.iter().map(|&p| p as u64))
}

struct WindowResult {
    window: usize,
    serial_qps: f64,
    parallel_qps: f64,
    parallel_shed: u64,
    parallel_stolen: u64,
    parallel_peak_depth: usize,
}

impl WindowResult {
    fn json(&self, base: &WindowResult) -> String {
        format!(
            "{{ \"window\": {}, \"serial_qps\": {:.2}, \"parallel_qps\": {:.2}, \
             \"speedup_serial_vs_window1\": {:.3}, \"speedup_parallel_vs_window1\": {:.3}, \
             \"parallel_shed\": {}, \"parallel_stolen_batches\": {}, \
             \"parallel_peak_queue_depth\": {} }}",
            self.window,
            self.serial_qps,
            self.parallel_qps,
            self.serial_qps / base.serial_qps,
            self.parallel_qps / base.parallel_qps,
            self.parallel_shed,
            self.parallel_stolen,
            self.parallel_peak_depth
        )
    }
}

/// Serves every row of `queries` through a fresh synchronous engine at
/// `window`, returning wall-clock seconds and the predictions.
fn serve_once(model: &DeployedModel, queries: &Matrix, window: usize) -> (f64, Vec<usize>) {
    time_best(|| {
        let mut engine = ServeEngine::new(model.clone(), BatchPolicy::window(window));
        engine.serve_all(queries).expect("serve")
    })
}

/// Serves every row of `queries` under one task kind through a fresh
/// synchronous engine at `window`, returning the responses in row order.
/// One timing leg: the task-endpoint phase interleaves these with classify
/// legs and keeps its own best-of, so this helper does not repeat.
fn serve_task_leg(
    model: &DeployedModel,
    queries: &Matrix,
    window: usize,
    kind: TaskKind,
) -> Vec<TaskResponse> {
    let mut engine = ServeEngine::new(model.clone(), BatchPolicy::window(window));
    let tickets: Vec<_> = (0..queries.rows())
        .map(|r| engine.submit_task(queries.row(r), kind).expect("submit"))
        .collect();
    engine.flush().expect("flush");
    tickets
        .into_iter()
        .map(|t| engine.try_take_response(t).expect("response"))
        .collect()
}

/// Submits every row of `queries` and waits in submission order, so the
/// returned predictions line up with the query stream regardless of which
/// shard scored which batch.
fn drive(client: &ServerClient, queries: &Matrix) -> Vec<usize> {
    let pending: Vec<Prediction> = (0..queries.rows())
        .map(|q| client.submit(queries.row(q)).expect("submit"))
        .collect();
    pending
        .into_iter()
        .map(|p| p.wait().expect("prediction"))
        .collect()
}

/// Serves the query stream through a sharded [`Server`] with GEMM threads
/// pinned to 1 — shard concurrency is the only parallelism being measured.
/// Returns best-of-reps seconds, the predictions, and the server's
/// lifetime backpressure counters (accumulated over all reps).
fn serve_sharded(
    model: &DeployedModel,
    queries: &Matrix,
    window: usize,
    shards: usize,
) -> (f64, Vec<usize>, disthd_serve::ServerStats) {
    parallel::with_thread_count(1, || {
        // The whole open-loop burst must be admissible: capacity covers the
        // full stream so the throughput number never includes shed work.
        let options = ServerOptions {
            shards,
            queue_capacity: queries.rows().max(1),
            integer_pipeline: false,
            ..ServerOptions::default()
        };
        let server = Server::spawn_with(model.clone(), BatchPolicy::window(window), options);
        let client = server.client();
        let (secs, predictions) = time_best(|| drive(&client, queries));
        (
            secs,
            predictions,
            server.shutdown().expect("no worker died during the sweep"),
        )
    })
}

/// One sustained-load soak measurement at a fixed shard count.
struct SoakRun {
    shards: usize,
    clients: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    requests: u64,
    mismatches: u64,
    shed: u64,
    stolen_batches: u64,
    peak_queue_depth: usize,
    flushes: u64,
    predictions_fnv1a: u64,
}

impl SoakRun {
    fn json(&self) -> String {
        format!(
            "{{ \"shards\": {}, \"clients\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"requests\": {}, \"mismatches\": {}, \
             \"shed\": {}, \"stolen_batches\": {}, \"peak_queue_depth\": {}, \"flushes\": {}, \
             \"predictions_fnv1a\": \"{:#018x}\" }}",
            self.shards,
            self.clients,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.requests,
            self.mismatches,
            self.shed,
            self.stolen_batches,
            self.peak_queue_depth,
            self.flushes,
            self.predictions_fnv1a
        )
    }
}

/// Closed-loop soak: `2 * shards` client threads issue blocking predicts
/// against a sharded server for `secs` seconds, recording per-request
/// latency and checking every answer against the serial baseline.  A
/// deterministic in-order pass afterwards produces the prediction hash CI
/// diffs across shard counts.
fn soak(
    model: &DeployedModel,
    queries: &Matrix,
    expected: &[usize],
    secs: f64,
    shards: usize,
) -> SoakRun {
    parallel::with_thread_count(1, || {
        let server = Server::spawn_with(
            model.clone(),
            BatchPolicy::window(SOAK_WINDOW),
            ServerOptions::sharded(shards),
        );
        let clients = (2 * shards).max(2);
        let start = Instant::now();
        let deadline = start + Duration::from_secs_f64(secs);
        let (histogram, mismatches) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    let client = server.client();
                    s.spawn(move || {
                        let mut histogram = LatencyHistogram::new();
                        let mut mismatches = 0u64;
                        // Stride by the client count so the threads jointly
                        // cycle the whole stream instead of convoying on
                        // the same rows.
                        let mut i = t;
                        while Instant::now() < deadline {
                            let q = i % queries.rows();
                            let sent = Instant::now();
                            let answer = client.predict(queries.row(q)).expect("soak predict");
                            histogram.record(sent.elapsed());
                            mismatches += u64::from(answer != expected[q]);
                            i += clients;
                        }
                        (histogram, mismatches)
                    })
                })
                .collect();
            let mut histogram = LatencyHistogram::new();
            let mut mismatches = 0u64;
            for handle in handles {
                let (h, m) = handle.join().expect("soak client");
                histogram.merge(&h);
                mismatches += m;
            }
            (histogram, mismatches)
        });
        let elapsed = start.elapsed().as_secs_f64();

        // The byte-for-byte artifact: one deterministic in-order pass over
        // the whole stream through the still-running soak server.
        let verify = drive(&server.client(), queries);
        let mismatches = mismatches
            + verify
                .iter()
                .zip(expected)
                .filter(|(got, want)| got != want)
                .count() as u64;
        let stats = server.shutdown().expect("no worker died during the soak");
        SoakRun {
            shards,
            clients,
            qps: histogram.count() as f64 / elapsed.max(1e-12),
            p50_us: histogram.quantile_us(0.50),
            p99_us: histogram.quantile_us(0.99),
            p999_us: histogram.quantile_us(0.999),
            requests: histogram.count(),
            mismatches,
            shed: stats.shed,
            stolen_batches: stats.stolen_batches,
            peak_queue_depth: stats.peak_queue_depth,
            flushes: stats.flushes,
            predictions_fnv1a: fnv1a(&verify),
        }
    })
}

/// Seed of every fault schedule in the chaos soak — one knob, replayable.
const CHAOS_SEED: u64 = 0x0D15_C0DE;
/// Flush horizon the seeded panics/stalls are scattered over; closed-loop
/// traffic at the soak window crosses it within the first seconds.
const CHAOS_HORIZON: u64 = 1500;
/// Worker panics injected per chaos soak.  Closed-loop blast radius per
/// panic is at most the client count, so the availability cost is bounded
/// at `CHAOS_PANICS * clients` requests.
const CHAOS_PANICS: usize = 6;
/// Slow-shard stalls injected per chaos soak.
const CHAOS_STALLS: usize = 8;
/// Each stalled flush sleeps this long — longer than the deadline clients'
/// budget, so stalls exercise the deadline-shed path, not just latency.
const CHAOS_PAUSE: Duration = Duration::from_millis(50);
/// Class-memory bit-flip rate of the faulty generations the writer thread
/// installs mid-soak (Fig. 8's fault model, via `inject_faults`).
const CHAOS_FAULT_RATE: f64 = 0.02;

/// One chaos-soak measurement: availability and integrity under injected
/// worker panics, slow shards, corrupt snapshots, and bit-flipped installs.
struct ChaosRun {
    shards: usize,
    clients: usize,
    submitted: u64,
    answered: u64,
    shed_overloaded: u64,
    shed_deadline: u64,
    worker_failed: u64,
    lost_tickets: u64,
    availability: f64,
    worker_restarts: u64,
    failed_batches: u64,
    faulty_installs: u64,
    snapshot_corruption_detected: bool,
    snapshot_rolled_back: bool,
    post_chaos_fnv1a: u64,
}

/// Runs the seeded chaos drill: a sharded server under a [`ChaosPlan`]
/// (worker panics + slow-shard stalls), hammered by closed-loop clients
/// (half with bounded retry, half with a request deadline) while a writer
/// thread alternates bit-flipped and pristine model installs.  A detached
/// watchdog kills the process if the drill wedges — a deadlock IS the
/// regression this phase exists to catch.  Afterwards the plan is
/// disarmed, a pristine generation — restored through
/// [`SnapshotStore::restore_or_rollback`] past a deliberately corrupted
/// blob — is installed, and a deterministic pass produces the post-chaos
/// hash that must equal the fault-free baseline.
fn chaos_soak(model: &DeployedModel, queries: &Matrix, secs: f64, shards: usize) -> ChaosRun {
    // Integrity drill first: corrupt a stored snapshot mid-blob and prove
    // it fails closed with a named checksum error while rollback serves
    // the last known good version — which then seeds the post-chaos
    // reinstall, closing the loop through the real recovery path.
    let mut snapshots = SnapshotStore::new(4);
    let good = snapshots.push(model).expect("snapshot pristine");
    let rotted = snapshots.push(model).expect("snapshot pristine again");
    let blob_bits = snapshots.bytes(rotted).expect("retained").len() * 8;
    assert!(snapshots.flip_stored_bit(rotted, blob_bits / 2));
    let snapshot_corruption_detected = matches!(
        snapshots.restore(rotted),
        Err(disthd_serve::SnapshotError::Persist(_))
    );
    let (restored_version, pristine) = snapshots
        .restore_or_rollback(rotted)
        .expect("an intact snapshot remains");
    let snapshot_rolled_back = restored_version == good;

    let plan = Arc::new(ChaosPlan::seeded(
        CHAOS_SEED,
        CHAOS_HORIZON,
        CHAOS_PANICS,
        CHAOS_STALLS,
        CHAOS_PAUSE,
    ));
    let done = Arc::new(AtomicBool::new(false));
    {
        // Watchdog: the soak plus the deterministic pass must finish well
        // inside this margin; a wedged server (lost wakeup, deadlocked
        // queue, hung ticket) is reported and the process killed, so CI
        // fails instead of timing out silently.
        let done = Arc::clone(&done);
        let margin = Duration::from_secs_f64(secs) + Duration::from_secs(120);
        std::thread::spawn(move || {
            std::thread::sleep(margin);
            if !done.load(Ordering::Acquire) {
                eprintln!("ERROR: chaos soak did not finish within {margin:?} — wedged server");
                std::process::exit(3);
            }
        });
    }

    parallel::with_thread_count(1, || {
        let server = Server::spawn_chaotic(
            model.clone(),
            BatchPolicy::window(SOAK_WINDOW),
            ServerOptions::sharded(shards),
            plan,
        );
        let clients = (2 * shards).max(4);
        let deadline = Instant::now() + Duration::from_secs_f64(secs);
        let (submitted, answered, shed_overloaded, shed_deadline, worker_failed, faulty_installs) =
            std::thread::scope(|s| {
                // Writer: alternate bit-flipped and pristine generations so
                // traffic keeps crossing install boundaries under fire.
                let writer = {
                    let client = server.client();
                    let pristine = pristine.clone();
                    s.spawn(move || {
                        let mut rng = disthd_linalg::SeededRng::derive_stream(
                            disthd_linalg::RngSeed(CHAOS_SEED),
                            2,
                        );
                        let mut installs = 0u64;
                        while Instant::now() < deadline {
                            let mut faulty = pristine.clone();
                            faulty.inject_faults(CHAOS_FAULT_RATE, &mut rng);
                            client.install_model(faulty).expect("install faulty");
                            installs += 1;
                            std::thread::sleep(Duration::from_millis(40));
                            client
                                .install_model(pristine.clone())
                                .expect("install pristine");
                            std::thread::sleep(Duration::from_millis(40));
                        }
                        installs
                    })
                };
                let hammers: Vec<_> = (0..clients)
                    .map(|t| {
                        let client = server.client();
                        s.spawn(move || {
                            let retry = RetryPolicy {
                                seed: CHAOS_SEED ^ t as u64,
                                ..RetryPolicy::default()
                            };
                            let mut counts = (0u64, 0u64, 0u64, 0u64, 0u64);
                            let mut i = t;
                            while Instant::now() < deadline {
                                let row = queries.row(i % queries.rows());
                                counts.0 += 1;
                                // Half the clients retry overloads, half
                                // carry a deadline tighter than a stall.
                                let outcome = if t % 2 == 0 {
                                    client.predict_with_retry(row, retry)
                                } else {
                                    client.predict_within(row, Duration::from_millis(20))
                                };
                                match outcome {
                                    Ok(_) => counts.1 += 1,
                                    Err(disthd_serve::ServeError::Overloaded) => counts.2 += 1,
                                    Err(disthd_serve::ServeError::DeadlineExceeded) => {
                                        counts.3 += 1;
                                    }
                                    Err(disthd_serve::ServeError::WorkerFailed { .. }) => {
                                        counts.4 += 1;
                                    }
                                    Err(e) => panic!("unexpected chaos-soak error: {e}"),
                                }
                                i += clients;
                            }
                            counts
                        })
                    })
                    .collect();
                let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
                for h in hammers {
                    let c = h.join().expect("chaos client");
                    totals.0 += c.0;
                    totals.1 += c.1;
                    totals.2 += c.2;
                    totals.3 += c.3;
                    totals.4 += c.4;
                }
                let installs = writer.join().expect("chaos writer");
                (totals.0, totals.1, totals.2, totals.3, totals.4, installs)
            });

        // Faults off, pristine generation in (through the rollback path),
        // then the deterministic pass whose hash must equal the fault-free
        // baseline: the drill's proof that chaos left no residue.
        server.disarm_chaos();
        server
            .client()
            .install_model(pristine)
            .expect("install post-chaos pristine");
        let post = drive(&server.client(), queries);
        let stats = server
            .shutdown()
            .expect("no shard may exhaust its restart budget under the seeded schedule");
        done.store(true, Ordering::Release);

        let resolved = answered + shed_overloaded + shed_deadline + worker_failed;
        let deliberate = shed_overloaded + shed_deadline;
        let denominator = submitted.saturating_sub(deliberate);
        ChaosRun {
            shards,
            clients,
            submitted,
            answered,
            shed_overloaded,
            shed_deadline,
            worker_failed,
            lost_tickets: submitted.saturating_sub(resolved),
            availability: if denominator == 0 {
                1.0
            } else {
                answered as f64 / denominator as f64
            },
            worker_restarts: stats.worker_restarts,
            failed_batches: stats.failed_batches,
            faulty_installs,
            snapshot_corruption_detected,
            snapshot_rolled_back,
            post_chaos_fnv1a: fnv1a(&post),
        }
    })
}

fn main() {
    let scale = default_scale();
    let parallel_threads = parallel::thread_count();
    // The served model's RBF backend: `DISTHD_ENCODER=dense` restores the
    // pre-structured O(F·D) encoder; the default serves through the
    // structured O(D log D) encoder, whose cheaper encode is what lifts
    // the window-512 ceiling (the engine's qps saturates at the encode
    // GEMM — see BENCH_throughput's encode_structured phase).
    let encoder_backend = std::env::var("DISTHD_ENCODER")
        .ok()
        .map(|name| EncoderBackend::parse(&name).expect("DISTHD_ENCODER: dense|structured"))
        .unwrap_or(EncoderBackend::Structured);
    let soak_secs: f64 = std::env::var("DISTHD_SOAK_SECS")
        .ok()
        .map(|v| v.trim().parse().expect("DISTHD_SOAK_SECS: seconds"))
        .unwrap_or(0.0);
    let chaos_secs: f64 = std::env::var("DISTHD_CHAOS_SECS")
        .ok()
        .map(|v| v.trim().parse().expect("DISTHD_CHAOS_SECS: seconds"))
        .unwrap_or(0.0);
    let dataset = PaperDataset::Isolet;
    let data = dataset
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");

    // Offline-train the served model once (single-thread for a
    // deterministic artifact regardless of the machine).
    let mut model = DistHd::new(
        DistHdConfig {
            dim: DIM,
            epochs: TRAIN_EPOCHS,
            patience: None,
            encoder_backend,
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    parallel::with_thread_count(parallel_threads, || {
        model.fit(&data.train, None).expect("fit")
    });
    let deployed = DeployedModel::freeze(&model, BitWidth::B8).expect("freeze");

    // Query stream: the test split cycled to a steady load.
    let queries_n = (4 * data.test.len()).max(1024);
    let indices: Vec<usize> = (0..queries_n).map(|i| i % data.test.len()).collect();
    let queries = data.test.features().select_rows(&indices);
    println!(
        "serve_throughput: {} (scale {scale}), D = {DIM}, encoder = {encoder_backend}, \
         {} queries, parallel = {parallel_threads} shard(s)\n",
        dataset.name(),
        queries_n
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>10} {:>8} {:>8}",
        "window", "serial qps", "par qps", "x1 serial", "x1 par", "stolen", "peakq"
    );

    let mut results: Vec<WindowResult> = Vec::new();
    let mut baseline_predictions: Option<Vec<usize>> = None;
    let mut bit_identical = true;
    for window in WINDOWS {
        let (serial_secs, serial_pred) =
            parallel::with_thread_count(1, || serve_once(&deployed, &queries, window));
        let (par_secs, par_pred, par_stats) =
            serve_sharded(&deployed, &queries, window, parallel_threads);
        match &baseline_predictions {
            None => baseline_predictions = Some(serial_pred.clone()),
            Some(base) => bit_identical &= base == &serial_pred,
        }
        bit_identical &= serial_pred == par_pred;
        let result = WindowResult {
            window,
            serial_qps: queries_n as f64 / serial_secs.max(1e-12),
            parallel_qps: queries_n as f64 / par_secs.max(1e-12),
            parallel_shed: par_stats.shed,
            parallel_stolen: par_stats.stolen_batches,
            parallel_peak_depth: par_stats.peak_queue_depth,
        };
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>9.2}x {:>9.2}x {:>8} {:>8}",
            result.window,
            result.serial_qps,
            result.parallel_qps,
            result.serial_qps / results.first().map_or(result.serial_qps, |b| b.serial_qps),
            result.parallel_qps
                / results
                    .first()
                    .map_or(result.parallel_qps, |b| b.parallel_qps),
            result.parallel_stolen,
            result.parallel_peak_depth,
        );
        results.push(result);
    }
    let baseline_predictions = baseline_predictions.expect("at least one window");

    // Fused integer encode vs the f32 round-trip, per storage width.  Both
    // legs serve the same queries against the same packed class memory with
    // the same packed-query scoring — the only difference is how the packed
    // query codes are produced:
    //   * int leg  — `predict_quantized_batch`: the fused quantize epilogue
    //     packs codes straight out of the encode kernel, no f32 encoded
    //     matrix ever exists;
    //   * f32 leg  — the pre-fusion route: f32 `encode_batch`, centering,
    //     then a separate `QuantizedMatrix::quantize` pass over the
    //     materialized matrix.
    // The fused path is contractually bit-identical to the round-trip
    // (`fused_quantized_encode_matches_quantize_after_f32_encode`), so
    // `predictions_match` must hold at every width; the bin exits non-zero
    // on any mismatch or on a width serving below 1x.  `DISTHD_WIDTH`
    // (1|2|4|8) narrows the sweep to one width for CI matrix runs.
    let widths: Vec<BitWidth> = match std::env::var("DISTHD_WIDTH") {
        Ok(v) => {
            let bits: usize = v.trim().parse().expect("DISTHD_WIDTH: 1|2|4|8");
            vec![BitWidth::from_bits(bits).expect("DISTHD_WIDTH: 1|2|4|8")]
        }
        Err(_) => BitWidth::all().to_vec(),
    };
    struct IntEncodeResult {
        bits: usize,
        int_qps: f64,
        f32_qps: f64,
        speedup: f64,
        predictions_match: bool,
    }
    println!(
        "\n{:<8} {:>14} {:>14} {:>10} {:>8}",
        "width", "int qps", "f32 qps", "speedup", "match"
    );
    let int_encode_results: Vec<IntEncodeResult> =
        parallel::with_thread_count(parallel_threads, || {
            use disthd_hd::encoder::Encoder;
            widths
                .iter()
                .map(|&width| {
                    let frozen = DeployedModel::freeze(&model, width).expect("freeze at width");
                    let mut inv_norms = Vec::new();
                    frozen.memory_parts().code_inv_norms_into(&mut inv_norms);
                    // Interleave the legs' repetitions so slow container
                    // drift (frequency steps, neighbor load) lands on both
                    // equally instead of biasing whichever leg ran second;
                    // best-of-5 tightens the scoring-dominated widths where
                    // the encode delta is a small share of the leg.
                    const INT_REPS: usize = 5;
                    let mut int_secs = f64::INFINITY;
                    let mut f32_secs = f64::INFINITY;
                    let mut int_predictions = Vec::new();
                    let mut f32_predictions = Vec::new();
                    for _ in 0..INT_REPS {
                        let start = Instant::now();
                        int_predictions = frozen
                            .predict_quantized_batch(&queries)
                            .expect("fused int path");
                        int_secs = int_secs.min(start.elapsed().as_secs_f64());
                        let start = Instant::now();
                        f32_predictions = {
                            let mut encoded = frozen
                                .encoder_parts()
                                .encode_batch(&queries)
                                .expect("f32 encode");
                            frozen.center_parts().apply_batch(&mut encoded);
                            let packed = QuantizedMatrix::quantize(&encoded, width);
                            disthd_hd::packed_predict_batch(
                                &packed,
                                frozen.memory_parts(),
                                &inv_norms,
                            )
                            .expect("packed predict")
                        };
                        f32_secs = f32_secs.min(start.elapsed().as_secs_f64());
                    }
                    let result = IntEncodeResult {
                        bits: width.bits(),
                        int_qps: queries_n as f64 / int_secs.max(1e-12),
                        f32_qps: queries_n as f64 / f32_secs.max(1e-12),
                        speedup: f32_secs.max(1e-12) / int_secs.max(1e-12),
                        predictions_match: int_predictions == f32_predictions,
                    };
                    println!(
                        "{:<8} {:>14.1} {:>14.1} {:>9.2}x {:>8}",
                        result.bits,
                        result.int_qps,
                        result.f32_qps,
                        result.speedup,
                        result.predictions_match
                    );
                    result
                })
                .collect()
        });
    // Same slack convention as `quantized_regression` below: a few percent
    // absorbs timer noise on scoring-dominated widths whose encode share is
    // small; a genuine fused-path regression lands far below it.
    let int_encode_regression = int_encode_results
        .iter()
        .any(|r| !r.predictions_match || r.speedup < 0.95);
    let speedup_int_encode_over_f32 = int_encode_results
        .iter()
        .find(|r| r.bits == 1)
        .map(|r| r.speedup);

    // Per-optimisation before/after: the zero-dequantize integer path
    // against the pre-PR f32-snapshot path, measured as the **class-scoring
    // loop of a live online-learning deployment** — the scenario the
    // zero-dequantize design exists for (DESIGN.md §6–§7): a stream of
    // query batches, with the class memory refreshed from the online
    // learner every [`REFRESH_EVERY`] batches.  Per refresh a new
    // `QuantizedMatrix` arrives (that is what `partial_fit` + requantize
    // hands the server); the integer path installs it with an
    // allocation-free word swap, while the snapshot path must dequantize
    // it and rebuild its normalized f32 `ClassModel`.  Per batch both
    // paths score the **identical pre-encoded hypervectors** — the encode
    // stage is byte-for-byte shared (same encoder object) and is what the
    // windows sweep above measures, so timing it here would only dilute
    // the signal this gate watches.  Loops are interleaved (int / f32 per
    // rep) and each path keeps its best rep, so frequency drift hits both
    // sides alike.  Predictions must agree — the integer path's contract.
    const REFRESH_EVERY: usize = 2;
    const SCORING_WINDOW: usize = 512;
    let (int_secs, f32_secs, int_predictions, f32_predictions) =
        parallel::with_thread_count(parallel_threads, || {
            use disthd_hd::encoder::Encoder;
            let mut encoded = deployed
                .encoder_parts()
                .encode_batch(&queries)
                .expect("encode");
            deployed.center_parts().apply_batch(&mut encoded);
            let batches: Vec<Matrix> = (0..queries_n)
                .step_by(SCORING_WINDOW)
                .map(|first| {
                    let rows: Vec<usize> =
                        (first..(first + SCORING_WINDOW).min(queries_n)).collect();
                    encoded.select_rows(&rows)
                })
                .collect();
            // The refreshed model the online learner delivers each cycle —
            // same weights, so predictions stay comparable across the run.
            let replacement = deployed.memory_parts().clone();
            let mut live = deployed.clone();
            let mut int_secs = f64::INFINITY;
            let mut f32_secs = f64::INFINITY;
            let mut int_predictions = Vec::new();
            let mut f32_predictions = Vec::new();
            for _ in 0..2 * REPS {
                let start = Instant::now();
                int_predictions.clear();
                for (b, batch) in batches.iter().enumerate() {
                    if b % REFRESH_EVERY == 0 {
                        live.swap_class_memory(replacement.clone())
                            .expect("swap class memory");
                    }
                    int_predictions.extend(live.predict_encoded_batch(batch).expect("int path"));
                }
                int_secs = int_secs.min(start.elapsed().as_secs_f64());

                let start = Instant::now();
                f32_predictions.clear();
                let mut snapshot = None;
                for (b, batch) in batches.iter().enumerate() {
                    if b % REFRESH_EVERY == 0 {
                        let delivered = replacement.clone();
                        let mut rebuilt =
                            disthd_hd::ClassModel::from_matrix(delivered.dequantize());
                        rebuilt.prepare_inference();
                        snapshot = Some(rebuilt);
                    }
                    let snapshot = snapshot.as_mut().expect("snapshot built on first batch");
                    f32_predictions
                        .extend(snapshot.predict_batch(batch).expect("snapshot predict"));
                }
                f32_secs = f32_secs.min(start.elapsed().as_secs_f64());
            }
            (int_secs, f32_secs, int_predictions, f32_predictions)
        });
    let int_qps = queries_n as f64 / int_secs.max(1e-12);
    let f32_snapshot_qps = queries_n as f64 / f32_secs.max(1e-12);
    let int_speedup = int_qps / f32_snapshot_qps;
    let int_predictions_match = int_predictions == f32_predictions;
    // The regression this file exists to never silently record again
    // (PR 4 shipped the int path at 0.81x): the zero-dequantize path must
    // not lose to the f32 snapshot it replaced.  A few percent of slack
    // absorbs timer noise on a ~millisecond loop — a real regression of
    // the 0.81x class sits far below it.
    let quantized_regression = !int_predictions_match || int_speedup < 0.95;
    println!(
        "\nzero-dequantize scoring loop (window {SCORING_WINDOW}, refresh every \
         {REFRESH_EVERY}): {int_qps:.1} qps vs f32-snapshot {f32_snapshot_qps:.1} qps \
         ({int_speedup:.2}x), predictions match: {int_predictions_match}"
    );

    // Serving task types on the batched path: top-k ranking and one-class
    // anomaly scoring at the amortized window, against the classify qps of
    // the same window.  Both endpoints run the identical encode GEMM and
    // similarity pass and differ only in a cheap per-row epilogue (a
    // truncated argsort / a norm + threshold), so neither may fall below
    // 0.95x classify.  Parity: every ranking's leading entry must equal
    // the classify answer for its query, and every anomaly score must be
    // bit-identical to the direct DeployedModel API; the response streams
    // are hashed (topk_fnv1a / anomaly_fnv1a) for cross-run byte diffs.
    const TASK_WINDOW: usize = 32;
    const TASK_TOP_K: usize = 3;
    let tasked = {
        let mut tasked = deployed.clone();
        tasked
            .set_tasks(disthd::ServingTasks {
                top_k: Some(TASK_TOP_K.min(tasked.class_count())),
                anomaly_threshold: Some(0.0),
            })
            .expect("task configuration");
        tasked
    };
    // The classify denominator is re-measured here, interleaved leg by leg
    // with the task endpoints, rather than borrowed from the window sweep
    // minutes earlier: container frequency drift between phases used to
    // land entirely on one side of the ratio and flip the 0.95x gate on
    // identical code (the same fix the int-encode phase applies with its
    // interleaved best-of-5 legs).
    let (classify_secs, topk_secs, anomaly_secs, topk_responses, anomaly_responses) =
        parallel::with_thread_count(1, || {
            const TASK_REPS: usize = 5;
            let mut classify_secs = f64::INFINITY;
            let mut topk_secs = f64::INFINITY;
            let mut anomaly_secs = f64::INFINITY;
            let mut topk_responses = Vec::new();
            let mut anomaly_responses = Vec::new();
            for _ in 0..TASK_REPS {
                let start = Instant::now();
                let mut engine =
                    ServeEngine::new(deployed.clone(), BatchPolicy::window(TASK_WINDOW));
                engine.serve_all(&queries).expect("serve");
                classify_secs = classify_secs.min(start.elapsed().as_secs_f64());

                let start = Instant::now();
                topk_responses = serve_task_leg(&tasked, &queries, TASK_WINDOW, TaskKind::TopK);
                topk_secs = topk_secs.min(start.elapsed().as_secs_f64());

                let start = Instant::now();
                anomaly_responses =
                    serve_task_leg(&tasked, &queries, TASK_WINDOW, TaskKind::Anomaly);
                anomaly_secs = anomaly_secs.min(start.elapsed().as_secs_f64());
            }
            (
                classify_secs,
                topk_secs,
                anomaly_secs,
                topk_responses,
                anomaly_responses,
            )
        });
    let classify_window_qps = queries_n as f64 / classify_secs.max(1e-12);
    let topk_qps = queries_n as f64 / topk_secs.max(1e-12);
    let anomaly_qps = queries_n as f64 / anomaly_secs.max(1e-12);
    let topk_first_matches_classify =
        topk_responses
            .iter()
            .zip(&baseline_predictions)
            .all(|(response, &want)| {
                matches!(response, TaskResponse::Ranked(ranks) if ranks.first() == Some(&want))
            });
    let direct_anomaly_scores = tasked.anomaly_scores(&queries).expect("anomaly scores");
    let anomaly_scores_match_direct =
        anomaly_responses
            .iter()
            .zip(&direct_anomaly_scores)
            .all(|(response, want)| {
                matches!(response, TaskResponse::Anomaly(v) if v.score.to_bits() == want.to_bits())
            });
    let topk_fnv1a = fnv1a_words(topk_responses.iter().flat_map(|response| {
        let ranks: Vec<u64> = match response {
            TaskResponse::Ranked(ranks) => ranks.iter().map(|&c| c as u64).collect(),
            _ => unreachable!("top-k responses only"),
        };
        ranks
    }));
    let anomaly_fnv1a = fnv1a_words(anomaly_responses.iter().map(|response| match response {
        TaskResponse::Anomaly(v) => u64::from(v.score.to_bits()),
        _ => unreachable!("anomaly responses only"),
    }));
    let task_regression = !topk_first_matches_classify
        || !anomaly_scores_match_direct
        || topk_qps < 0.95 * classify_window_qps
        || anomaly_qps < 0.95 * classify_window_qps;
    println!(
        "\ntask endpoints (window {TASK_WINDOW}): top-{TASK_TOP_K} {topk_qps:.1} qps \
         ({:.2}x classify), anomaly {anomaly_qps:.1} qps ({:.2}x classify), \
         top-1 parity: {topk_first_matches_classify}, score parity: {anomaly_scores_match_direct}",
        topk_qps / classify_window_qps.max(1e-12),
        anomaly_qps / classify_window_qps.max(1e-12),
    );

    // Sustained-load soak at 1 shard and at the full shard count; every
    // answer is checked live against the serial baseline and the post-soak
    // deterministic pass is hashed for the cross-shard byte diff.
    let serial_fnv1a = fnv1a(&baseline_predictions);
    let soak_runs: Vec<SoakRun> = if soak_secs > 0.0 {
        let mut shard_counts = vec![1];
        if parallel_threads > 1 {
            shard_counts.push(parallel_threads);
        }
        shard_counts
            .into_iter()
            .map(|shards| {
                let run = soak(
                    &deployed,
                    &queries,
                    &baseline_predictions,
                    soak_secs,
                    shards,
                );
                println!(
                    "soak {:>4.1}s @ {} shard(s): {:>10.1} qps, p50 {:>8.1} us, p99 {:>8.1} us, \
                     p999 {:>8.1} us, shed {}, stolen {}, peakq {}, mismatches {}",
                    soak_secs,
                    run.shards,
                    run.qps,
                    run.p50_us,
                    run.p99_us,
                    run.p999_us,
                    run.shed,
                    run.stolen_batches,
                    run.peak_queue_depth,
                    run.mismatches
                );
                run
            })
            .collect()
    } else {
        Vec::new()
    };
    let soak_mismatch = soak_runs.iter().any(|r| r.mismatches > 0);
    let soak_hashes_identical = soak_runs
        .iter()
        .all(|r| r.predictions_fnv1a == serial_fnv1a);

    // Chaos soak: seeded worker panics, slow shards, corrupt snapshots and
    // bit-flipped installs against a supervised server.  Availability
    // excludes deliberately-shed requests (overload + deadline); the
    // post-chaos deterministic pass must hash equal to the fault-free
    // serial baseline.  Chaos gates measure *correctness under faults*,
    // not speed, so — unlike `parallel_regression` — they stay armed on a
    // single-core container (see DESIGN.md §13).
    let chaos_run: Option<ChaosRun> = (chaos_secs > 0.0).then(|| {
        let run = chaos_soak(&deployed, &queries, chaos_secs, parallel_threads.max(2));
        println!(
            "\nchaos {:>4.1}s @ {} shard(s), {} client(s): availability {:.4} \
             ({} answered / {} submitted, {} overload-shed, {} deadline-shed, \
             {} worker-failed, {} lost), {} restarts, {} failed batches, {} faulty installs",
            chaos_secs,
            run.shards,
            run.clients,
            run.availability,
            run.answered,
            run.submitted,
            run.shed_overloaded,
            run.shed_deadline,
            run.worker_failed,
            run.lost_tickets,
            run.worker_restarts,
            run.failed_batches,
            run.faulty_installs,
        );
        println!(
            "chaos integrity: corrupt snapshot detected {}, rolled back to last-known-good {}, \
             post-chaos hash matches fault-free baseline {}",
            run.snapshot_corruption_detected,
            run.snapshot_rolled_back,
            run.post_chaos_fnv1a == serial_fnv1a,
        );
        run
    });
    let chaos_regression = chaos_run.as_ref().is_some_and(|run| {
        run.lost_tickets > 0
            || run.availability < 0.99
            || run.post_chaos_fnv1a != serial_fnv1a
            || !run.snapshot_corruption_detected
            || !run.snapshot_rolled_back
    });

    let base = &results[0];
    let batched_2x = results.iter().filter(|r| r.window >= 32).all(|r| {
        r.serial_qps >= 2.0 * base.serial_qps && r.parallel_qps >= 2.0 * base.parallel_qps
    });
    // The regression signal this file exists to never silently record
    // again: at amortized windows (>= 32, where per-flush overhead is
    // negligible) the sharded server must not serve fewer queries/sec than
    // the serial engine.  The comparison is only **meaningful** when the
    // machine can host every shard on its own core
    // (`machine_cores >= parallel_threads > 1`) — on one core, or
    // oversubscribed, parallel can at best tie serial, so both a green and
    // a red speedup there measure the scheduler, not the code.  The
    // `parallel_comparison_meaningful` field records that verdict in the
    // artifact, and the gate arms only when it is true.
    let machine_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel_comparison_meaningful = machine_cores >= parallel_threads && parallel_threads > 1;
    let parallel_regression = parallel_comparison_meaningful
        && results
            .iter()
            .filter(|r| r.window >= 32)
            .any(|r| r.parallel_qps < r.serial_qps);
    println!("\npredictions bit-identical across windows, shards and threads: {bit_identical}");
    println!("every window >= 32 at least 2x one-at-a-time:          {batched_2x}");
    println!(
        "parallel comparison meaningful ({machine_cores} core(s), {parallel_threads} \
         shard(s)):        {parallel_comparison_meaningful}"
    );
    println!("parallel regression at any window >= 32:               {parallel_regression}");

    let windows_json: Vec<String> = results.iter().map(|r| r.json(base)).collect();
    let int_encode_json: Vec<String> = int_encode_results
        .iter()
        .map(|r| {
            format!(
                "{{ \"width_bits\": {}, \"int_qps\": {:.2}, \"f32_qps\": {:.2}, \
                 \"speedup_int_encode_over_f32\": {:.3}, \"predictions_match\": {} }}",
                r.bits, r.int_qps, r.f32_qps, r.speedup, r.predictions_match
            )
        })
        .collect();
    let headline_int_speedup = speedup_int_encode_over_f32
        .map(|s| format!("{s:.3}"))
        .unwrap_or_else(|| "null".into());
    let chaos_json = match &chaos_run {
        None => "null".to_string(),
        Some(run) => format!(
            "{{ \"seconds\": {chaos_secs}, \"shards\": {}, \"clients\": {}, \
             \"window\": {SOAK_WINDOW}, \"submitted\": {}, \"answered\": {}, \
             \"shed_overloaded\": {}, \"shed_deadline\": {}, \"worker_failed\": {}, \
             \"lost_tickets\": {}, \"availability\": {:.6}, \"worker_restarts\": {}, \
             \"failed_batches\": {}, \"faulty_installs\": {}, \
             \"snapshot_corruption_detected\": {}, \"snapshot_rolled_back\": {}, \
             \"post_chaos_fnv1a\": \"{:#018x}\", \"post_chaos_matches_baseline\": {}, \
             \"chaos_regression\": {chaos_regression} }}",
            run.shards,
            run.clients,
            run.submitted,
            run.answered,
            run.shed_overloaded,
            run.shed_deadline,
            run.worker_failed,
            run.lost_tickets,
            run.availability,
            run.worker_restarts,
            run.failed_batches,
            run.faulty_installs,
            run.snapshot_corruption_detected,
            run.snapshot_rolled_back,
            run.post_chaos_fnv1a,
            run.post_chaos_fnv1a == serial_fnv1a,
        ),
    };
    let soak_json = if soak_runs.is_empty() {
        "null".to_string()
    } else {
        format!(
            "{{ \"seconds\": {soak_secs}, \"window\": {SOAK_WINDOW}, \"runs\": [\n    {}\n  ], \
             \"serial_predictions_fnv1a\": \"{serial_fnv1a:#018x}\", \
             \"predictions_identical_across_shards\": {soak_hashes_identical} }}",
            soak_runs
                .iter()
                .map(SoakRun::json)
                .collect::<Vec<_>>()
                .join(",\n    ")
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"dataset\": \"{}\",\n  \"dim\": {DIM},\n  \
         \"scale\": {scale},\n  \"encoder_backend\": \"{encoder_backend}\",\n  \
         \"queries\": {queries_n},\n  \
         \"threads_parallel\": {parallel_threads},\n  \"shards\": {parallel_threads},\n  \
         \"machine_cores\": {machine_cores},\n  \
         \"width_bits\": 8,\n  \"windows\": [\n    {}\n  ],\n  \
         \"int_encode\": [\n    {}\n  ],\n  \
         \"speedup_int_encode_over_f32\": {headline_int_speedup},\n  \
         \"int_encode_regression\": {int_encode_regression},\n  \
         \"quantized_path\": {{ \"scoring_window\": {SCORING_WINDOW}, \
         \"refresh_every\": {REFRESH_EVERY}, \"int_qps\": {int_qps:.2}, \
         \"f32_snapshot_qps\": {f32_snapshot_qps:.2}, \
         \"speedup_int_over_f32_snapshot\": {int_speedup:.3}, \
         \"predictions_match\": {int_predictions_match}, \
         \"quantized_regression\": {quantized_regression} }},\n  \
         \"task_endpoints\": {{ \"window\": {TASK_WINDOW}, \"top_k\": {TASK_TOP_K}, \
         \"classify_qps\": {classify_window_qps:.2}, \"topk_qps\": {topk_qps:.2}, \
         \"anomaly_qps\": {anomaly_qps:.2}, \
         \"topk_first_matches_classify\": {topk_first_matches_classify}, \
         \"anomaly_scores_match_direct\": {anomaly_scores_match_direct}, \
         \"topk_fnv1a\": \"{topk_fnv1a:#018x}\", \
         \"anomaly_fnv1a\": \"{anomaly_fnv1a:#018x}\", \
         \"task_regression\": {task_regression} }},\n  \
         \"soak\": {soak_json},\n  \
         \"chaos\": {chaos_json},\n  \
         \"bit_identical_across_windows_and_threads\": {bit_identical},\n  \
         \"parallel_comparison_meaningful\": {parallel_comparison_meaningful},\n  \
         \"parallel_regression\": {parallel_regression},\n  \
         \"batched_at_least_2x_over_one_at_a_time\": {batched_2x}\n}}\n",
        dataset.name(),
        windows_json.join(",\n    "),
        int_encode_json.join(",\n    ")
    );
    let out_path = std::env::var("DISTHD_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");

    if !bit_identical {
        eprintln!("ERROR: batched serving changed predictions — determinism contract violated");
        std::process::exit(1);
    }
    if parallel_regression {
        eprintln!(
            "ERROR: the {parallel_threads}-shard server is slower than serial at an amortized \
             batch window on a {machine_cores}-core machine — parallel regression"
        );
        std::process::exit(1);
    }
    if int_encode_regression {
        eprintln!(
            "ERROR: the fused integer encode path mismatched or served below 0.95x the f32 \
             round-trip at some width — int-encode regression"
        );
        std::process::exit(1);
    }
    if quantized_regression {
        eprintln!(
            "ERROR: the zero-dequantize scoring path lost to the f32-snapshot path \
             ({int_speedup:.3}x, predictions match: {int_predictions_match}) — quantized-path \
             regression"
        );
        std::process::exit(1);
    }
    if task_regression {
        eprintln!(
            "ERROR: a task endpoint regressed — top-1/score parity broke or top-k/anomaly \
             serving fell below 0.95x classify at window {TASK_WINDOW}"
        );
        std::process::exit(1);
    }
    if soak_mismatch {
        eprintln!(
            "ERROR: a soak response diverged from the serial baseline — sharded serving \
             changed a prediction under sustained load"
        );
        std::process::exit(1);
    }
    if !soak_hashes_identical {
        eprintln!(
            "ERROR: post-soak prediction hashes differ across shard counts — sharded serving \
             is not byte-for-byte identical to the serial baseline"
        );
        std::process::exit(1);
    }
    if chaos_regression {
        eprintln!(
            "ERROR: chaos soak regressed — a ticket was lost, availability fell below 0.99, \
             the post-chaos pass diverged from the fault-free baseline, or snapshot \
             corruption was not detected and rolled back"
        );
        std::process::exit(1);
    }
}
