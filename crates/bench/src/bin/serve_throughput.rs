//! Serving-layer throughput benchmark: queries/sec through the
//! request-batching [`disthd_serve::ServeEngine`] as a function of the
//! batch window, at 1 thread and at `DISTHD_THREADS` (or all cores).
//!
//! Window 1 is classic one-at-a-time serving — every query pays a full
//! encode pass over the base matrix and a similarity pass over the class
//! matrix by itself.  Wider windows coalesce queued queries into one
//! batched pass, amortizing both streams; the sweep quantifies that
//! latency-vs-throughput trade.  Predictions must be **bit-identical** at
//! every window and thread count (the engine serves through the same
//! deterministic kernels regardless of batch composition); the bin exits
//! non-zero if they ever diverge.
//!
//! Emits `BENCH_serve.json` (override with `DISTHD_BENCH_OUT`); the
//! workload scales with `DISTHD_SCALE`.  Run with
//! `cargo run --release -p disthd_bench --bin serve_throughput`.

use disthd::{DeployedModel, DistHd, DistHdConfig, EncoderBackend};
use disthd_bench::default_scale;
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::Classifier;
use disthd_hd::quantize::BitWidth;
use disthd_linalg::{parallel, Matrix};
use disthd_serve::{BatchPolicy, ServeEngine};
use std::time::Instant;

/// Fig. 5's heavy dimensionality (BaselineHD's D* = 4k) — the encode cost
/// batching has to amortize.
const DIM: usize = 4096;
/// Batch windows swept (1 = one-at-a-time serving).
const WINDOWS: [usize; 5] = [1, 8, 32, 128, 512];
/// Timing repetitions; the best rep is reported (least scheduler noise).
const REPS: usize = 3;
/// Offline training epochs for the served model.
const TRAIN_EPOCHS: usize = 6;

/// Best-of-`REPS` wall-clock seconds for `f`, plus its last result.
fn time_best<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("REPS > 0"))
}

struct WindowResult {
    window: usize,
    serial_qps: f64,
    parallel_qps: f64,
}

impl WindowResult {
    fn json(&self, base: &WindowResult) -> String {
        format!(
            "{{ \"window\": {}, \"serial_qps\": {:.2}, \"parallel_qps\": {:.2}, \
             \"speedup_serial_vs_window1\": {:.3}, \"speedup_parallel_vs_window1\": {:.3} }}",
            self.window,
            self.serial_qps,
            self.parallel_qps,
            self.serial_qps / base.serial_qps,
            self.parallel_qps / base.parallel_qps
        )
    }
}

/// Serves every row of `queries` through a fresh engine at `window`,
/// returning wall-clock seconds and the predictions.
fn serve_once(model: &DeployedModel, queries: &Matrix, window: usize) -> (f64, Vec<usize>) {
    time_best(|| {
        let mut engine = ServeEngine::new(model.clone(), BatchPolicy::window(window));
        engine.serve_all(queries).expect("serve")
    })
}

fn main() {
    let scale = default_scale();
    let parallel_threads = parallel::thread_count();
    // The served model's RBF backend: `DISTHD_ENCODER=dense` restores the
    // pre-structured O(F·D) encoder; the default serves through the
    // structured O(D log D) encoder, whose cheaper encode is what lifts
    // the window-512 ceiling (the engine's qps saturates at the encode
    // GEMM — see BENCH_throughput's encode_structured phase).
    let encoder_backend = std::env::var("DISTHD_ENCODER")
        .ok()
        .map(|name| EncoderBackend::parse(&name).expect("DISTHD_ENCODER: dense|structured"))
        .unwrap_or(EncoderBackend::Structured);
    let dataset = PaperDataset::Isolet;
    let data = dataset
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");

    // Offline-train the served model once (single-thread for a
    // deterministic artifact regardless of the machine).
    let mut model = DistHd::new(
        DistHdConfig {
            dim: DIM,
            epochs: TRAIN_EPOCHS,
            patience: None,
            encoder_backend,
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    parallel::with_thread_count(parallel_threads, || {
        model.fit(&data.train, None).expect("fit")
    });
    let deployed = DeployedModel::freeze(&model, BitWidth::B8).expect("freeze");

    // Query stream: the test split cycled to a steady load.
    let queries_n = (4 * data.test.len()).max(1024);
    let indices: Vec<usize> = (0..queries_n).map(|i| i % data.test.len()).collect();
    let queries = data.test.features().select_rows(&indices);
    println!(
        "serve_throughput: {} (scale {scale}), D = {DIM}, encoder = {encoder_backend}, \
         {} queries, parallel = {parallel_threads} thread(s)\n",
        dataset.name(),
        queries_n
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>10}",
        "window", "serial qps", "par qps", "x1 serial", "x1 par"
    );

    let mut results: Vec<WindowResult> = Vec::new();
    let mut baseline_predictions: Option<Vec<usize>> = None;
    let mut bit_identical = true;
    for window in WINDOWS {
        let (serial_secs, serial_pred) =
            parallel::with_thread_count(1, || serve_once(&deployed, &queries, window));
        let (par_secs, par_pred) = parallel::with_thread_count(parallel_threads, || {
            serve_once(&deployed, &queries, window)
        });
        match &baseline_predictions {
            None => baseline_predictions = Some(serial_pred.clone()),
            Some(base) => bit_identical &= base == &serial_pred,
        }
        bit_identical &= serial_pred == par_pred;
        let result = WindowResult {
            window,
            serial_qps: queries_n as f64 / serial_secs.max(1e-12),
            parallel_qps: queries_n as f64 / par_secs.max(1e-12),
        };
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>9.2}x {:>9.2}x",
            result.window,
            result.serial_qps,
            result.parallel_qps,
            result.serial_qps / results.first().map_or(result.serial_qps, |b| b.serial_qps),
            result.parallel_qps
                / results
                    .first()
                    .map_or(result.parallel_qps, |b| b.parallel_qps),
        );
        results.push(result);
    }

    // Per-optimisation before/after: the zero-dequantize integer path
    // against the pre-PR f32-snapshot path, measured as the **class-scoring
    // loop of a live online-learning deployment** — the scenario the
    // zero-dequantize design exists for (DESIGN.md §6–§7): a stream of
    // query batches, with the class memory refreshed from the online
    // learner every [`REFRESH_EVERY`] batches.  Per refresh a new
    // `QuantizedMatrix` arrives (that is what `partial_fit` + requantize
    // hands the server); the integer path installs it with an
    // allocation-free word swap, while the snapshot path must dequantize
    // it and rebuild its normalized f32 `ClassModel`.  Per batch both
    // paths score the **identical pre-encoded hypervectors** — the encode
    // stage is byte-for-byte shared (same encoder object) and is what the
    // windows sweep above measures, so timing it here would only dilute
    // the signal this gate watches.  Loops are interleaved (int / f32 per
    // rep) and each path keeps its best rep, so frequency drift hits both
    // sides alike.  Predictions must agree — the integer path's contract.
    const REFRESH_EVERY: usize = 2;
    const SCORING_WINDOW: usize = 512;
    let (int_secs, f32_secs, int_predictions, f32_predictions) =
        parallel::with_thread_count(parallel_threads, || {
            use disthd_hd::encoder::Encoder;
            let mut encoded = deployed
                .encoder_parts()
                .encode_batch(&queries)
                .expect("encode");
            deployed.center_parts().apply_batch(&mut encoded);
            let batches: Vec<Matrix> = (0..queries_n)
                .step_by(SCORING_WINDOW)
                .map(|first| {
                    let rows: Vec<usize> =
                        (first..(first + SCORING_WINDOW).min(queries_n)).collect();
                    encoded.select_rows(&rows)
                })
                .collect();
            // The refreshed model the online learner delivers each cycle —
            // same weights, so predictions stay comparable across the run.
            let replacement = deployed.memory_parts().clone();
            let mut live = deployed.clone();
            let mut int_secs = f64::INFINITY;
            let mut f32_secs = f64::INFINITY;
            let mut int_predictions = Vec::new();
            let mut f32_predictions = Vec::new();
            for _ in 0..2 * REPS {
                let start = Instant::now();
                int_predictions.clear();
                for (b, batch) in batches.iter().enumerate() {
                    if b % REFRESH_EVERY == 0 {
                        live.swap_class_memory(replacement.clone())
                            .expect("swap class memory");
                    }
                    int_predictions.extend(live.predict_encoded_batch(batch).expect("int path"));
                }
                int_secs = int_secs.min(start.elapsed().as_secs_f64());

                let start = Instant::now();
                f32_predictions.clear();
                let mut snapshot = None;
                for (b, batch) in batches.iter().enumerate() {
                    if b % REFRESH_EVERY == 0 {
                        let delivered = replacement.clone();
                        let mut rebuilt =
                            disthd_hd::ClassModel::from_matrix(delivered.dequantize());
                        rebuilt.prepare_inference();
                        snapshot = Some(rebuilt);
                    }
                    let snapshot = snapshot.as_mut().expect("snapshot built on first batch");
                    f32_predictions
                        .extend(snapshot.predict_batch(batch).expect("snapshot predict"));
                }
                f32_secs = f32_secs.min(start.elapsed().as_secs_f64());
            }
            (int_secs, f32_secs, int_predictions, f32_predictions)
        });
    let int_qps = queries_n as f64 / int_secs.max(1e-12);
    let f32_snapshot_qps = queries_n as f64 / f32_secs.max(1e-12);
    let int_speedup = int_qps / f32_snapshot_qps;
    let int_predictions_match = int_predictions == f32_predictions;
    // The regression this file exists to never silently record again
    // (PR 4 shipped the int path at 0.81x): the zero-dequantize path must
    // not lose to the f32 snapshot it replaced.  A few percent of slack
    // absorbs timer noise on a ~millisecond loop — a real regression of
    // the 0.81x class sits far below it.
    let quantized_regression = !int_predictions_match || int_speedup < 0.95;
    println!(
        "\nzero-dequantize scoring loop (window {SCORING_WINDOW}, refresh every \
         {REFRESH_EVERY}): {int_qps:.1} qps vs f32-snapshot {f32_snapshot_qps:.1} qps \
         ({int_speedup:.2}x), predictions match: {int_predictions_match}"
    );

    let base = &results[0];
    let batched_2x = results.iter().filter(|r| r.window >= 32).all(|r| {
        r.serial_qps >= 2.0 * base.serial_qps && r.parallel_qps >= 2.0 * base.parallel_qps
    });
    // The regression signal this file exists to never silently record
    // again: at amortized windows (>= 32, where per-flush overhead is
    // negligible) the multi-threaded engine must not serve fewer
    // queries/sec than the serial one.  The comparison only arms when the
    // machine can host every requested worker on its own core
    // (`machine_cores >= parallel_threads`) — under oversubscription
    // parallel can at best tie serial, so a deficit there is scheduler
    // noise, not a code regression (the recorded `machine_cores` keeps
    // that context in the artifact).  When the field is true the process
    // exits non-zero.
    let machine_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel_regression = machine_cores >= parallel_threads
        && parallel_threads > 1
        && results
            .iter()
            .filter(|r| r.window >= 32)
            .any(|r| r.parallel_qps < r.serial_qps);
    println!("\npredictions bit-identical across windows and threads: {bit_identical}");
    println!("every window >= 32 at least 2x one-at-a-time:          {batched_2x}");
    println!("parallel regression at any window >= 32:               {parallel_regression}");

    let windows_json: Vec<String> = results.iter().map(|r| r.json(base)).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"dataset\": \"{}\",\n  \"dim\": {DIM},\n  \
         \"scale\": {scale},\n  \"encoder_backend\": \"{encoder_backend}\",\n  \
         \"queries\": {queries_n},\n  \
         \"threads_parallel\": {parallel_threads},\n  \"machine_cores\": {machine_cores},\n  \
         \"width_bits\": 8,\n  \"windows\": [\n    {}\n  ],\n  \
         \"quantized_path\": {{ \"scoring_window\": {SCORING_WINDOW}, \
         \"refresh_every\": {REFRESH_EVERY}, \"int_qps\": {int_qps:.2}, \
         \"f32_snapshot_qps\": {f32_snapshot_qps:.2}, \
         \"speedup_int_over_f32_snapshot\": {int_speedup:.3}, \
         \"predictions_match\": {int_predictions_match}, \
         \"quantized_regression\": {quantized_regression} }},\n  \
         \"bit_identical_across_windows_and_threads\": {bit_identical},\n  \
         \"parallel_regression\": {parallel_regression},\n  \
         \"batched_at_least_2x_over_one_at_a_time\": {batched_2x}\n}}\n",
        dataset.name(),
        windows_json.join(",\n    ")
    );
    let out_path = std::env::var("DISTHD_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");

    if !bit_identical {
        eprintln!("ERROR: batched serving changed predictions — determinism contract violated");
        std::process::exit(1);
    }
    if parallel_regression {
        eprintln!(
            "ERROR: the {parallel_threads}-thread engine is slower than serial at an amortized \
             batch window on a {machine_cores}-core machine — parallel regression"
        );
        std::process::exit(1);
    }
    if quantized_regression {
        eprintln!(
            "ERROR: the zero-dequantize scoring path lost to the f32-snapshot path \
             ({int_speedup:.3}x, predictions match: {int_predictions_match}) — quantized-path \
             regression"
        );
        std::process::exit(1);
    }
}
