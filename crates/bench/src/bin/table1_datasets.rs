//! Regenerates **Table I**: the dataset roster (n, k, train size, test
//! size, description), plus the actually generated (scaled) sizes used by
//! the other experiment binaries.
//!
//! Run with `cargo run --release -p disthd-bench --bin table1_datasets`.
//! Set `DISTHD_SCALE` to change the size multiplier (default 0.02).

use disthd_bench::default_scale;
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::report::Table;

fn main() {
    let scale = default_scale();
    let config = SuiteConfig::at_scale(scale);
    println!("Table I: datasets (paper shapes; generated at scale {scale})\n");

    let mut table = Table::new(vec![
        "dataset".into(),
        "n".into(),
        "k".into(),
        "train (paper)".into(),
        "test (paper)".into(),
        "train (here)".into(),
        "test (here)".into(),
        "description".into(),
    ]);
    for dataset in PaperDataset::all() {
        let spec = dataset.spec();
        let generated = dataset.generate(&config).expect("generation succeeds");
        table.add_row(vec![
            spec.name.clone(),
            spec.feature_dim.to_string(),
            spec.class_count.to_string(),
            spec.train_size.to_string(),
            spec.test_size.to_string(),
            generated.train.len().to_string(),
            generated.test.len().to_string(),
            spec.description.clone(),
        ]);
    }
    println!("{}", table.render());
}
