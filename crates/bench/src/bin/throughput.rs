//! Compute-backend throughput benchmark: encode / structured encode /
//! top-2 / predict / train samples-per-second, comparing the pre-backend
//! scalar kernels against the cache-blocked kernel serial (1 thread) and
//! parallel (`DISTHD_THREADS` or all cores), and the dense `O(F·D)` RBF
//! encoder against the structured `O(D log D)` Walsh–Hadamard encoder.
//!
//! The workload is the Fig. 5 efficiency setting at `D = 4096` (the
//! BaselineHD D* dimensionality — the heaviest encode in the paper's panel)
//! on the synthetic ISOLET substitute.  `DISTHD_ENCODER` (`dense` |
//! `structured`, default `dense`) selects the backend the end-to-end train
//! and predict phases run on, so CI exercises the full pipeline under both
//! backends and diffs their accuracies across thread counts; the
//! `encode_structured` phase and the structured-vs-dense accuracy
//! comparison are always emitted.  `DISTHD_FHT_SCHEDULE` (`ascending` |
//! `cascading-haar`) selects the structured backend's butterfly pass
//! order, and `DISTHD_SYNTH_F` remaps the dataset to a synthetic feature
//! count by cyclic repetition/truncation (to exercise non-power-of-two
//! pad/half-block handling at widths the generator doesn't emit).  An
//! `fht_phases` micro-bench block records per-schedule transform
//! throughput and the pruned-vs-full ratio under synthetic eviction, and
//! an in-bin bitwise gate proves the zero-aware and pruned FHT paths equal
//! the full ascending transform on every live lane.  Emits
//! `BENCH_throughput.json` (override the path with `DISTHD_BENCH_OUT`) and
//! exits non-zero if the parallel backend's results are not bit-identical
//! to serial, if parallel encode or train lose to serial on a machine that
//! could host every worker, if structured encode falls under 6× dense
//! serial encode on a multi-core runner, or if the FHT bitwise gate fails.
//!
//! Run with `cargo run --release -p disthd_bench --bin throughput`.

use disthd::{categorize, categorize_batch, DistHd, DistHdConfig, EncoderBackend};
use disthd_bench::default_scale;
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_datasets::Dataset;
use disthd_eval::Classifier;
use disthd_hd::encoder::{AnyRbfEncoder, Encoder, RbfEncoder, StructuredRbfEncoder};
use disthd_hd::learn::bundle_init;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_hd::ClassModel;
use disthd_linalg::{fht_inplace, fht_inplace_opts, parallel, FhtOpts, FhtPrunePlan, FhtSchedule};
use disthd_linalg::{Matrix, RngSeed};
use std::time::Instant;

/// Fig. 5's heavy dimensionality (BaselineHD's D* = 4k).
const DIM: usize = 4096;
/// Timing repetitions; the best rep is reported (least scheduler noise).
const REPS: usize = 3;
/// Epochs for the end-to-end training phase.
const TRAIN_EPOCHS: usize = 6;

/// Best-of-`REPS` wall-clock seconds for `f`, plus its last result.
fn time_best<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("REPS > 0"))
}

/// Samples-per-second from a best-of timing.
fn sps(samples: usize, seconds: f64) -> f64 {
    samples as f64 / seconds.max(1e-12)
}

/// Remaps every sample to `new_f` features by cyclic repetition (or
/// truncation) of its real features — a synthetic feature width for
/// exercising pad/half-block handling at non-power-of-two `F` the
/// generator doesn't emit.  The RBF bandwidth scale (`base_std ∝ 1/√F`)
/// cancels the repeated energy, so kernel widths stay comparable.
fn remap_feature_dim(data: &Dataset, new_f: usize) -> Dataset {
    let old_f = data.feature_dim();
    let features = Matrix::from_fn(data.len(), new_f, |r, c| data.sample(r)[c % old_f]);
    Dataset::new(features, data.labels().to_vec(), data.class_count())
        .expect("remap preserves rows and labels")
}

/// Deterministic micro-bench input (values in roughly ±0.8, no special
/// structure).
fn fht_bench_input(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.7).sin() * 0.8).collect()
}

/// Transforms-per-second of `fht_inplace_opts` under `opts` at size `n`,
/// best-of-REPS over `batch` back-to-back transforms.
fn fht_sps(n: usize, batch: usize, opts: &FhtOpts) -> f64 {
    let input = fht_bench_input(n);
    let mut buf = vec![0.0f32; n];
    let (secs, _) = time_best(|| {
        for _ in 0..batch {
            buf.copy_from_slice(&input);
            fht_inplace_opts(&mut buf, opts);
        }
        buf[0]
    });
    sps(batch, secs)
}

/// Synthetic eviction mask: lane `l` is dead iff its multiplicative hash
/// lands under `pct` — scattered like real regeneration, not contiguous.
fn synthetic_live(pct: u32) -> impl Fn(usize) -> bool {
    move |lane| (lane.wrapping_mul(2654435761) >> 7) as u32 % 100 >= pct
}

/// In-bin bitwise gate: zero-aware and pruned schedules must equal the
/// plain full transform on every live lane, at the bench's exact shapes.
/// Returns `false` (→ non-zero exit) on any mismatch.
fn fht_bitwise_live_lanes_ok() -> bool {
    let mut ok = true;
    for &n in &[1024usize, 4096] {
        // Zero-aware front end vs transforming the padded buffer in full,
        // under both schedules, at the ISOLET and synth non-pow2 widths.
        for &nz in &[617usize, 1000, n] {
            let nz = nz.min(n);
            let mut padded = fht_bench_input(nz);
            padded.resize(n, 0.0);
            for schedule in [FhtSchedule::Ascending, FhtSchedule::CascadingHaar] {
                let mut reference = padded.clone();
                fht_inplace_opts(&mut reference, &FhtOpts::dense(schedule));
                let mut aware = padded.clone();
                fht_inplace_opts(
                    &mut aware,
                    &FhtOpts {
                        nonzero_len: nz,
                        ..FhtOpts::dense(schedule)
                    },
                );
                ok &= reference
                    .iter()
                    .zip(&aware)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            }
        }
        // Pruned final stage vs the full ascending transform on live lanes.
        for &pct in &[10u32, 25] {
            let live = synthetic_live(pct);
            let plan = FhtPrunePlan::from_live(n, &live);
            let mut reference = fht_bench_input(n);
            fht_inplace(&mut reference);
            let mut pruned = fht_bench_input(n);
            fht_inplace_opts(
                &mut pruned,
                &FhtOpts {
                    prune: Some(&plan),
                    ..FhtOpts::dense(FhtSchedule::Ascending)
                },
            );
            ok &= reference
                .iter()
                .zip(&pruned)
                .enumerate()
                .all(|(lane, (a, b))| !live(lane) || a.to_bits() == b.to_bits());
        }
    }
    ok
}

struct Phase {
    name: &'static str,
    reference_sps: Option<f64>,
    serial_sps: f64,
    parallel_sps: f64,
}

impl Phase {
    fn speedup_serial(&self) -> Option<f64> {
        self.reference_sps.map(|r| self.serial_sps / r)
    }

    fn speedup_parallel(&self) -> f64 {
        self.parallel_sps / self.serial_sps
    }

    fn json(&self) -> String {
        let reference = match self.reference_sps {
            Some(r) => format!(
                "\"reference_sps\": {:.2}, \"speedup_serial_over_reference\": {:.3}, ",
                r,
                self.speedup_serial().unwrap_or(0.0)
            ),
            None => String::new(),
        };
        format!(
            "{{ {reference}\"serial_sps\": {:.2}, \"parallel_sps\": {:.2}, \
             \"speedup_parallel_over_serial\": {:.3} }}",
            self.serial_sps,
            self.parallel_sps,
            self.speedup_parallel()
        )
    }

    fn print(&self) {
        match (self.reference_sps, self.speedup_serial()) {
            (Some(r), Some(s)) => println!(
                "{:<8} {:>12.1} {:>12.1} {:>12.1}   {:>6.2}x {:>8.2}x",
                self.name,
                r,
                self.serial_sps,
                self.parallel_sps,
                s,
                self.speedup_parallel()
            ),
            _ => println!(
                "{:<8} {:>12} {:>12.1} {:>12.1}   {:>6} {:>8.2}x",
                self.name,
                "-",
                self.serial_sps,
                self.parallel_sps,
                "-",
                self.speedup_parallel()
            ),
        }
    }
}

fn main() {
    let scale = default_scale();
    let parallel_threads = parallel::thread_count();
    // Backend for the end-to-end train/predict phases (the encode phases
    // always measure both backends explicitly).
    let encoder_backend = std::env::var("DISTHD_ENCODER")
        .ok()
        .map(|name| EncoderBackend::parse(&name).expect("DISTHD_ENCODER: dense|structured"))
        .unwrap_or(EncoderBackend::Dense);
    // Physical parallelism actually available, as opposed to the requested
    // worker count: on a single-core machine a >1x parallel speedup is
    // physically impossible, so the regression gate only arms when the
    // hardware could have delivered one.
    let machine_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let dataset = PaperDataset::Isolet;
    let mut data = dataset
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    // Synthetic feature width: cyclically repeat/truncate the real
    // features so non-pow2 pad and half-block shapes the generator doesn't
    // emit still get end-to-end coverage.
    let synth_f = std::env::var("DISTHD_SYNTH_F").ok().map(|v| {
        v.trim()
            .parse::<usize>()
            .expect("DISTHD_SYNTH_F: a feature count")
    });
    if let Some(new_f) = synth_f {
        data.train = remap_feature_dim(&data.train, new_f);
        data.test = remap_feature_dim(&data.test, new_f);
    }
    let fht_schedule = FhtSchedule::from_env();
    let train_n = data.train.len();
    let test_n = data.test.len();
    println!(
        "throughput: {} (scale {scale}), D = {DIM}, F = {}, {} train / {} test samples, \
         encoder = {encoder_backend}, fht schedule = {fht_schedule}, \
         parallel = {parallel_threads} thread(s)\n",
        dataset.name(),
        data.train.feature_dim(),
        train_n,
        test_n
    );

    let encoder = RbfEncoder::new(data.train.feature_dim(), DIM, RngSeed(11));

    // -- encode: pre-PR scalar kernel vs blocked serial vs blocked parallel.
    let (ref_secs, _) = time_best(|| encoder.encode_batch_reference(data.train.features()));
    let (serial_secs, encoded_serial) = parallel::with_thread_count(1, || {
        time_best(|| encoder.encode_batch(data.train.features()).expect("encode"))
    });
    let (par_secs, encoded_parallel) = parallel::with_thread_count(parallel_threads, || {
        time_best(|| encoder.encode_batch(data.train.features()).expect("encode"))
    });
    let mut bit_identical = encoded_serial.as_slice() == encoded_parallel.as_slice();
    let encode = Phase {
        name: "encode",
        reference_sps: Some(sps(train_n, ref_secs)),
        serial_sps: sps(train_n, serial_secs),
        parallel_sps: sps(train_n, par_secs),
    };

    // -- structured encode: the O(D log D) Walsh–Hadamard encoder against
    //    the dense O(F·D) GEMM encoder (the dense *blocked serial* sps is
    //    the reference, so `speedup_serial_over_reference` is the headline
    //    structured-vs-dense factor the ≥ 6× gate watches).
    let structured_encoder = StructuredRbfEncoder::new(data.train.feature_dim(), DIM, RngSeed(11));
    let (structured_serial_secs, structured_serial) = parallel::with_thread_count(1, || {
        time_best(|| {
            structured_encoder
                .encode_batch(data.train.features())
                .expect("structured encode")
        })
    });
    let (structured_par_secs, structured_parallel) =
        parallel::with_thread_count(parallel_threads, || {
            time_best(|| {
                structured_encoder
                    .encode_batch(data.train.features())
                    .expect("structured encode")
            })
        });
    bit_identical &= structured_serial.as_slice() == structured_parallel.as_slice();
    let encode_structured = Phase {
        name: "enc-fht",
        reference_sps: Some(encode.serial_sps),
        serial_sps: sps(train_n, structured_serial_secs),
        parallel_sps: sps(train_n, structured_par_secs),
    };
    let structured_speedup = encode_structured
        .speedup_serial()
        .expect("dense reference present");
    drop(structured_serial);
    drop(structured_parallel);

    // -- top-2 categorization: per-sample matvecs vs one batched GEMM.
    let mut model = ClassModel::new(data.train.class_count(), DIM);
    bundle_init(&mut model, &encoded_serial, data.train.labels()).expect("bundle");
    let (ref_secs, outcomes_ref) =
        time_best(|| categorize(&mut model, &encoded_serial, data.train.labels()).expect("top2"));
    let (serial_secs, outcomes_serial) = parallel::with_thread_count(1, || {
        time_best(|| {
            categorize_batch(&mut model, &encoded_serial, data.train.labels()).expect("top2")
        })
    });
    let (par_secs, outcomes_parallel) = parallel::with_thread_count(parallel_threads, || {
        time_best(|| {
            categorize_batch(&mut model, &encoded_serial, data.train.labels()).expect("top2")
        })
    });
    bit_identical &= outcomes_serial == outcomes_parallel;
    let taxonomy_agrees = outcomes_ref == outcomes_serial;
    let top2 = Phase {
        name: "top2",
        reference_sps: Some(sps(train_n, ref_secs)),
        serial_sps: sps(train_n, serial_secs),
        parallel_sps: sps(train_n, par_secs),
    };

    // -- end-to-end training and prediction (DistHD at D = 4096, on the
    //    `DISTHD_ENCODER`-selected backend).  Training is deterministic,
    //    so repeating a fit only re-times the identical computation:
    //    best-of-REPS keeps one scheduler hiccup from being recorded as a
    //    parallel train regression.
    let config = DistHdConfig {
        dim: DIM,
        epochs: TRAIN_EPOCHS,
        patience: None,
        encoder_backend,
        ..Default::default()
    };
    let fit_once = |threads: usize| {
        parallel::with_thread_count(threads, || {
            let mut best = f64::INFINITY;
            let mut fitted = None;
            for _ in 0..REPS {
                let mut m = DistHd::new(
                    config.clone(),
                    data.train.feature_dim(),
                    data.train.class_count(),
                );
                let start = Instant::now();
                m.fit(&data.train, None).expect("fit");
                best = best.min(start.elapsed().as_secs_f64());
                fitted = Some(m);
            }
            let mut m = fitted.expect("REPS > 0");
            let accuracy = m.accuracy(&data.test).expect("accuracy");
            (m, best, accuracy)
        })
    };
    let (mut model_serial, serial_secs, accuracy_serial) = fit_once(1);
    let (mut model_parallel, par_secs, accuracy_parallel) = fit_once(parallel_threads);
    bit_identical &= accuracy_serial == accuracy_parallel;
    let train = Phase {
        name: "train",
        reference_sps: None,
        serial_sps: sps(train_n * TRAIN_EPOCHS, serial_secs),
        parallel_sps: sps(train_n * TRAIN_EPOCHS, par_secs),
    };

    // -- structured-vs-dense end-to-end accuracy: the other backend,
    //    trained once with the same hyper-parameters, must land within one
    //    accuracy point (the tentpole's fidelity bar).
    let other_backend = match encoder_backend {
        EncoderBackend::Dense => EncoderBackend::Structured,
        EncoderBackend::Structured => EncoderBackend::Dense,
    };
    let accuracy_other = parallel::with_thread_count(parallel_threads, || {
        let mut m = DistHd::new(
            DistHdConfig {
                encoder_backend: other_backend,
                ..config.clone()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        m.fit(&data.train, None).expect("fit");
        m.accuracy(&data.test).expect("accuracy")
    });
    let (accuracy_dense, accuracy_structured) = match encoder_backend {
        EncoderBackend::Dense => (accuracy_serial, accuracy_other),
        EncoderBackend::Structured => (accuracy_other, accuracy_serial),
    };
    // Directional gap: positive means the structured encoder is *worse*
    // than dense.  Both encoders draw different random features, so on a
    // small test split either can land a point ahead by luck; only the
    // structured encoder losing accuracy is a regression.
    let accuracy_gap = accuracy_dense - accuracy_structured;
    let within_one_point = accuracy_gap <= 0.01;
    // The gate tolerance widens to the test split's resolution when the
    // split is tiny (a couple of samples at DISTHD_SCALE=0.02 are already
    // > 1 point); at the committed scale (260+ test samples) it is the
    // literal one-point bar.
    let accuracy_tolerance = (2.5 / test_n as f64).max(0.01);
    let accuracy_regression = accuracy_gap > accuracy_tolerance;

    // -- prediction: per-sample encode+matvec loop vs batched pipeline.
    let (ref_secs, _) = time_best(|| {
        (0..test_n)
            .map(|i| model_serial.predict_one(data.test.sample(i)).expect("pred"))
            .collect::<Vec<usize>>()
    });
    let (serial_secs, predictions_serial) = parallel::with_thread_count(1, || {
        time_best(|| model_serial.predict(&data.test).expect("predict"))
    });
    let (par_secs, predictions_parallel) = parallel::with_thread_count(parallel_threads, || {
        time_best(|| model_parallel.predict(&data.test).expect("predict"))
    });
    bit_identical &= predictions_serial == predictions_parallel;
    let predict = Phase {
        name: "predict",
        reference_sps: Some(sps(test_n, ref_secs)),
        serial_sps: sps(test_n, serial_secs),
        parallel_sps: sps(test_n, par_secs),
    };

    // -- fused integer encode: the bit-sliced encode-with-quantize
    //    epilogue against the f32 round-trip (encode → center → quantize)
    //    it replaces, on the `DISTHD_ENCODER`-selected backend.
    //    `DISTHD_WIDTH` (1|2|4|8) narrows the sweep to one storage width
    //    so CI can pin a width per job.  Parity is exact: both legs must
    //    produce identical packed words and row scales at every width.
    let int_widths: Vec<BitWidth> = match std::env::var("DISTHD_WIDTH") {
        Ok(v) => {
            let bits: usize = v.trim().parse().expect("DISTHD_WIDTH: 1|2|4|8");
            vec![BitWidth::from_bits(bits).expect("DISTHD_WIDTH: 1|2|4|8")]
        }
        Err(_) => BitWidth::all().to_vec(),
    };
    let any_encoder = match encoder_backend {
        EncoderBackend::Dense => AnyRbfEncoder::Dense(encoder.clone()),
        EncoderBackend::Structured => AnyRbfEncoder::Structured(structured_encoder.clone()),
    };
    // Centering vector representative of the deployed
    // encode → center → quantize pipeline: the per-dimension mean of the
    // encoded training batch.
    let center: Vec<f32> = {
        let mut sums = vec![0.0f64; DIM];
        for r in 0..encoded_serial.rows() {
            for (s, &v) in sums.iter_mut().zip(encoded_serial.row(r)) {
                *s += f64::from(v);
            }
        }
        sums.iter()
            .map(|s| (*s / train_n.max(1) as f64) as f32)
            .collect()
    };
    struct IntEncodeResult {
        bits: usize,
        int_sps: f64,
        f32_sps: f64,
        speedup: f64,
        parity: bool,
    }
    let int_encode_results: Vec<IntEncodeResult> =
        parallel::with_thread_count(parallel_threads, || {
            int_widths
                .iter()
                .map(|&width| {
                    let (int_secs, fused) = time_best(|| {
                        any_encoder
                            .encode_batch_quantized(data.train.features(), Some(&center), width)
                            .expect("fused quantized encode")
                    });
                    let (f32_secs, round_trip) = time_best(|| {
                        let mut m = any_encoder
                            .encode_batch(data.train.features())
                            .expect("f32 encode");
                        for r in 0..m.rows() {
                            for (v, c) in m.row_mut(r).iter_mut().zip(&center) {
                                *v -= *c;
                            }
                        }
                        QuantizedMatrix::quantize(&m, width)
                    });
                    let parity = fused.as_words() == round_trip.as_words()
                        && fused.scales() == round_trip.scales();
                    IntEncodeResult {
                        bits: width.bits(),
                        int_sps: sps(train_n, int_secs),
                        f32_sps: sps(train_n, f32_secs),
                        speedup: f32_secs / int_secs.max(1e-12),
                        parity,
                    }
                })
                .collect()
        });
    // Same slack convention as the serve bench's int-encode gate: a few
    // percent absorbs timer noise; a genuine fused-path loss lands far
    // below it.  Parity has no noise to absorb and gates exactly.
    let int_encode_regression = int_encode_results
        .iter()
        .any(|r| !r.parity || r.speedup < 0.95);
    let speedup_int_encode_over_f32 = int_encode_results
        .iter()
        .find(|r| r.bits == 1)
        .map(|r| r.speedup);

    println!(
        "{:<8} {:>12} {:>12} {:>12}   {:>7} {:>9}",
        "phase", "ref sps", "serial sps", "par sps", "blk/ref", "par/serial"
    );
    for phase in [&encode, &encode_structured, &top2, &train, &predict] {
        phase.print();
    }
    println!(
        "\n{:<8} {:>12} {:>12} {:>10} {:>8}",
        "width", "int sps", "f32 sps", "speedup", "parity"
    );
    for r in &int_encode_results {
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>9.2}x {:>8}",
            r.bits, r.int_sps, r.f32_sps, r.speedup, r.parity
        );
    }
    // The pool-backed regression signal: with every requested worker on
    // its own core, a parallel phase at or below serial throughput means
    // the dispatch machinery is eating the win — exactly the failure mode
    // the persistent pool (and the narrow-GEMM serial gating) exists to
    // prevent.  Under oversubscription (workers > cores, including the
    // 1-core case) the comparison is vacuous — parallel can at best tie
    // serial — so the gates only arm when `machine_cores >=
    // parallel_threads`; when one fires, the process exits non-zero.  The
    // gate covers **encode and train**: train is where PR 4 recorded a
    // 0.79x parallel loss from per-epoch GEMMs too small to fan out.
    let encode_speedup = encode.speedup_parallel();
    let train_speedup = train.speedup_parallel();
    // `parallel_comparison_meaningful` is the same predicate the gates arm
    // on, recorded in the artifact so a green-looking
    // `*_speedup_parallel_over_serial` emitted from a single-core (or
    // oversubscribed) run cannot be mistaken for a measured win — on such
    // machines the number measures the scheduler, not the code.
    let parallel_comparison_meaningful = machine_cores >= parallel_threads && parallel_threads > 1;
    let parallel_regression =
        parallel_comparison_meaningful && (encode_speedup < 1.0 || train_speedup < 1.0);
    // The tentpole gates: structured encode must stay ≥ 6× dense serial
    // encode at D = 4096 (armed on multi-core machines only — single-core
    // containers run every phase on one thread where the factor is still
    // measured and recorded, but timing variance is higher), and the
    // structured backend's accuracy must stay within the fidelity bar on
    // *every* machine — accuracy is deterministic, so that check has no
    // noise to absorb.
    let structured_regression =
        (machine_cores > 1 && structured_speedup < 6.0) || accuracy_regression;

    // -- fht_phases micro-bench: per-schedule serial transform throughput
    //    and the pruned-vs-full ratio under synthetic eviction, plus the
    //    bitwise gate proving the skip paths touch no live lane.
    let fht_batch = |n: usize| (1 << 22) / n; // ~4M lanes per rep
    let mut schedule_sps = [[0.0f64; 2]; 2];
    for (i, &n) in [1024usize, 4096].iter().enumerate() {
        for (j, schedule) in [FhtSchedule::Ascending, FhtSchedule::CascadingHaar]
            .into_iter()
            .enumerate()
        {
            schedule_sps[i][j] = fht_sps(n, fht_batch(n), &FhtOpts::dense(schedule));
        }
    }
    let pruned_ratio: Vec<(u32, f64)> = [0u32, 10, 25]
        .into_iter()
        .map(|pct| {
            let n = 4096;
            let plan = FhtPrunePlan::from_live(n, synthetic_live(pct));
            let full = fht_sps(n, fht_batch(n), &FhtOpts::dense(FhtSchedule::Ascending));
            let pruned = fht_sps(
                n,
                fht_batch(n),
                &FhtOpts {
                    prune: Some(&plan),
                    ..FhtOpts::dense(FhtSchedule::Ascending)
                },
            );
            (pct, pruned / full.max(1e-12))
        })
        .collect();
    let fht_bitwise_ok = fht_bitwise_live_lanes_ok();

    println!("\naccuracy serial   = {accuracy_serial:.6}");
    println!("accuracy parallel = {accuracy_parallel:.6}");
    println!(
        "accuracy dense = {accuracy_dense:.6}, structured = {accuracy_structured:.6} \
         (gap {accuracy_gap:.4}, within one point: {within_one_point})"
    );
    println!("top2 taxonomy batch == per-sample: {taxonomy_agrees}");
    println!("parallel bit-identical to serial:  {bit_identical}");
    println!(
        "machine cores = {machine_cores}, encode parallel/serial = {encode_speedup:.3}x, \
         train parallel/serial = {train_speedup:.3}x \
         (comparison meaningful: {parallel_comparison_meaningful})"
    );
    println!("structured encode vs dense serial  = {structured_speedup:.3}x");
    println!(
        "fht d=1024: ascending {:.0} sps, cascading-haar {:.0} sps; \
         d=4096: ascending {:.0} sps, cascading-haar {:.0} sps",
        schedule_sps[0][0], schedule_sps[0][1], schedule_sps[1][0], schedule_sps[1][1]
    );
    for (pct, ratio) in &pruned_ratio {
        println!("fht pruned/full at {pct}% eviction (d=4096) = {ratio:.3}x");
    }
    println!("fht skip paths bitwise-equal on live lanes: {fht_bitwise_ok}");

    let pruned_ratio_json = pruned_ratio
        .iter()
        .map(|(pct, ratio)| format!("\"evict_{pct}pct\": {ratio:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    let synth_f_json = synth_f
        .map(|f| f.to_string())
        .unwrap_or_else(|| "null".into());
    let int_encode_json: Vec<String> = int_encode_results
        .iter()
        .map(|r| {
            format!(
                "{{ \"width_bits\": {}, \"int_sps\": {:.2}, \"f32_sps\": {:.2}, \
                 \"speedup_int_encode_over_f32\": {:.3}, \"parity\": {} }}",
                r.bits, r.int_sps, r.f32_sps, r.speedup, r.parity
            )
        })
        .collect();
    let headline_int_speedup = speedup_int_encode_over_f32
        .map(|s| format!("{s:.3}"))
        .unwrap_or_else(|| "null".into());
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"dataset\": \"{}\",\n  \"dim\": {DIM},\n  \
         \"scale\": {scale},\n  \"train_samples\": {train_n},\n  \"test_samples\": {test_n},\n  \
         \"train_epochs\": {TRAIN_EPOCHS},\n  \"encoder_backend\": \"{encoder_backend}\",\n  \
         \"fht_schedule\": \"{fht_schedule}\",\n  \"feature_dim\": {},\n  \
         \"synth_f\": {synth_f_json},\n  \
         \"threads_parallel\": {parallel_threads},\n  \
         \"machine_cores\": {machine_cores},\n  \
         \"phases\": {{\n    \"encode\": {},\n    \"encode_structured\": {},\n    \
         \"top2\": {},\n    \"train\": {},\n    \
         \"predict\": {}\n  }},\n  \
         \"fht_phases\": {{\n    \
         \"d1024\": {{ \"ascending_sps\": {:.2}, \"cascading_haar_sps\": {:.2} }},\n    \
         \"d4096\": {{ \"ascending_sps\": {:.2}, \"cascading_haar_sps\": {:.2} }},\n    \
         \"pruned_over_full_d4096\": {{ {pruned_ratio_json} }},\n    \
         \"bitwise_live_lanes_ok\": {fht_bitwise_ok}\n  }},\n  \
         \"int_encode\": [\n    {}\n  ],\n  \
         \"speedup_int_encode_over_f32\": {headline_int_speedup},\n  \
         \"int_encode_regression\": {int_encode_regression},\n  \
         \"accuracy\": {{ \"serial\": {accuracy_serial:.6}, \
         \"parallel\": {accuracy_parallel:.6} }},\n  \
         \"structured_vs_dense\": {{ \"accuracy_dense\": {accuracy_dense:.6}, \
         \"accuracy_structured\": {accuracy_structured:.6}, \
         \"accuracy_gap\": {accuracy_gap:.6}, \"within_one_point\": {within_one_point}, \
         \"accuracy_gate_tolerance\": {accuracy_tolerance:.6}, \
         \"encode_speedup_structured_over_dense_serial\": {structured_speedup:.3}, \
         \"structured_regression\": {structured_regression} }},\n  \
         \"top2_taxonomy_agrees\": {taxonomy_agrees},\n  \
         \"encode_speedup_parallel_over_serial\": {encode_speedup:.3},\n  \
         \"train_speedup_parallel_over_serial\": {train_speedup:.3},\n  \
         \"parallel_comparison_meaningful\": {parallel_comparison_meaningful},\n  \
         \"parallel_regression\": {parallel_regression},\n  \
         \"parallel_bit_identical_to_serial\": {bit_identical}\n}}\n",
        dataset.name(),
        data.train.feature_dim(),
        encode.json(),
        encode_structured.json(),
        top2.json(),
        train.json(),
        predict.json(),
        schedule_sps[0][0],
        schedule_sps[0][1],
        schedule_sps[1][0],
        schedule_sps[1][1],
        int_encode_json.join(",\n    ")
    );
    let out_path =
        std::env::var("DISTHD_BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");

    if !bit_identical {
        eprintln!("ERROR: parallel results diverged from serial — determinism contract violated");
        std::process::exit(1);
    }
    if parallel_regression {
        eprintln!(
            "ERROR: a parallel phase is slower than serial (encode {encode_speedup:.3}x, \
             train {train_speedup:.3}x) on a {machine_cores}-core machine — parallel regression"
        );
        std::process::exit(1);
    }
    if structured_regression {
        eprintln!(
            "ERROR: structured-encoder regression — encode {structured_speedup:.3}x dense \
             serial (gate on multi-core: >= 6x), accuracy gap {accuracy_gap:.4} \
             (gate: <= {accuracy_tolerance:.4})"
        );
        std::process::exit(1);
    }
    if int_encode_regression {
        eprintln!(
            "ERROR: the fused integer encode diverged from the f32 round-trip or ran below \
             0.95x its throughput at some width — int-encode regression"
        );
        std::process::exit(1);
    }
    if !fht_bitwise_ok {
        eprintln!(
            "ERROR: a zero-aware or pruned FHT path changed a live lane's bits relative to \
             the full ascending transform — skip-path soundness violated"
        );
        std::process::exit(1);
    }
}
