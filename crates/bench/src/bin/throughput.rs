//! Compute-backend throughput benchmark: encode / top-2 / predict / train
//! samples-per-second, comparing the pre-backend scalar kernels against the
//! cache-blocked kernel serial (1 thread) and parallel (`DISTHD_THREADS` or
//! all cores).
//!
//! The workload is the Fig. 5 efficiency setting at `D = 4096` (the
//! BaselineHD D* dimensionality — the heaviest encode in the paper's panel)
//! on the synthetic ISOLET substitute.  Emits `BENCH_throughput.json`
//! (override the path with `DISTHD_BENCH_OUT`) and exits non-zero if the
//! parallel backend's results are not bit-identical to serial — the
//! determinism contract CI enforces by diffing accuracies across
//! `DISTHD_THREADS` values.
//!
//! Run with `cargo run --release -p disthd_bench --bin throughput`.

use disthd::{categorize, categorize_batch, DistHd, DistHdConfig};
use disthd_bench::default_scale;
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::Classifier;
use disthd_hd::encoder::{Encoder, RbfEncoder};
use disthd_hd::learn::bundle_init;
use disthd_hd::ClassModel;
use disthd_linalg::{parallel, RngSeed};
use std::time::Instant;

/// Fig. 5's heavy dimensionality (BaselineHD's D* = 4k).
const DIM: usize = 4096;
/// Timing repetitions; the best rep is reported (least scheduler noise).
const REPS: usize = 3;
/// Epochs for the end-to-end training phase.
const TRAIN_EPOCHS: usize = 6;

/// Best-of-`REPS` wall-clock seconds for `f`, plus its last result.
fn time_best<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("REPS > 0"))
}

/// Samples-per-second from a best-of timing.
fn sps(samples: usize, seconds: f64) -> f64 {
    samples as f64 / seconds.max(1e-12)
}

struct Phase {
    name: &'static str,
    reference_sps: Option<f64>,
    serial_sps: f64,
    parallel_sps: f64,
}

impl Phase {
    fn speedup_serial(&self) -> Option<f64> {
        self.reference_sps.map(|r| self.serial_sps / r)
    }

    fn speedup_parallel(&self) -> f64 {
        self.parallel_sps / self.serial_sps
    }

    fn json(&self) -> String {
        let reference = match self.reference_sps {
            Some(r) => format!(
                "\"reference_sps\": {:.2}, \"speedup_serial_over_reference\": {:.3}, ",
                r,
                self.speedup_serial().unwrap_or(0.0)
            ),
            None => String::new(),
        };
        format!(
            "{{ {reference}\"serial_sps\": {:.2}, \"parallel_sps\": {:.2}, \
             \"speedup_parallel_over_serial\": {:.3} }}",
            self.serial_sps,
            self.parallel_sps,
            self.speedup_parallel()
        )
    }

    fn print(&self) {
        match (self.reference_sps, self.speedup_serial()) {
            (Some(r), Some(s)) => println!(
                "{:<8} {:>12.1} {:>12.1} {:>12.1}   {:>6.2}x {:>8.2}x",
                self.name,
                r,
                self.serial_sps,
                self.parallel_sps,
                s,
                self.speedup_parallel()
            ),
            _ => println!(
                "{:<8} {:>12} {:>12.1} {:>12.1}   {:>6} {:>8.2}x",
                self.name,
                "-",
                self.serial_sps,
                self.parallel_sps,
                "-",
                self.speedup_parallel()
            ),
        }
    }
}

fn main() {
    let scale = default_scale();
    let parallel_threads = parallel::thread_count();
    // Physical parallelism actually available, as opposed to the requested
    // worker count: on a single-core machine a >1x parallel speedup is
    // physically impossible, so the regression gate only arms when the
    // hardware could have delivered one.
    let machine_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let dataset = PaperDataset::Isolet;
    let data = dataset
        .generate(&SuiteConfig::at_scale(scale))
        .expect("dataset generation");
    let train_n = data.train.len();
    let test_n = data.test.len();
    println!(
        "throughput: {} (scale {scale}), D = {DIM}, {} train / {} test samples, \
         parallel = {parallel_threads} thread(s)\n",
        dataset.name(),
        train_n,
        test_n
    );

    let encoder = RbfEncoder::new(data.train.feature_dim(), DIM, RngSeed(11));

    // -- encode: pre-PR scalar kernel vs blocked serial vs blocked parallel.
    let (ref_secs, _) = time_best(|| encoder.encode_batch_reference(data.train.features()));
    let (serial_secs, encoded_serial) = parallel::with_thread_count(1, || {
        time_best(|| encoder.encode_batch(data.train.features()).expect("encode"))
    });
    let (par_secs, encoded_parallel) = parallel::with_thread_count(parallel_threads, || {
        time_best(|| encoder.encode_batch(data.train.features()).expect("encode"))
    });
    let mut bit_identical = encoded_serial.as_slice() == encoded_parallel.as_slice();
    let encode = Phase {
        name: "encode",
        reference_sps: Some(sps(train_n, ref_secs)),
        serial_sps: sps(train_n, serial_secs),
        parallel_sps: sps(train_n, par_secs),
    };

    // -- top-2 categorization: per-sample matvecs vs one batched GEMM.
    let mut model = ClassModel::new(data.train.class_count(), DIM);
    bundle_init(&mut model, &encoded_serial, data.train.labels()).expect("bundle");
    let (ref_secs, outcomes_ref) =
        time_best(|| categorize(&mut model, &encoded_serial, data.train.labels()).expect("top2"));
    let (serial_secs, outcomes_serial) = parallel::with_thread_count(1, || {
        time_best(|| {
            categorize_batch(&mut model, &encoded_serial, data.train.labels()).expect("top2")
        })
    });
    let (par_secs, outcomes_parallel) = parallel::with_thread_count(parallel_threads, || {
        time_best(|| {
            categorize_batch(&mut model, &encoded_serial, data.train.labels()).expect("top2")
        })
    });
    bit_identical &= outcomes_serial == outcomes_parallel;
    let taxonomy_agrees = outcomes_ref == outcomes_serial;
    let top2 = Phase {
        name: "top2",
        reference_sps: Some(sps(train_n, ref_secs)),
        serial_sps: sps(train_n, serial_secs),
        parallel_sps: sps(train_n, par_secs),
    };

    // -- end-to-end training and prediction (DistHD at D = 4096).
    let config = DistHdConfig {
        dim: DIM,
        epochs: TRAIN_EPOCHS,
        patience: None,
        ..Default::default()
    };
    let fit_once = |threads: usize| {
        parallel::with_thread_count(threads, || {
            let mut m = DistHd::new(
                config.clone(),
                data.train.feature_dim(),
                data.train.class_count(),
            );
            let start = Instant::now();
            m.fit(&data.train, None).expect("fit");
            let secs = start.elapsed().as_secs_f64();
            let accuracy = m.accuracy(&data.test).expect("accuracy");
            (m, secs, accuracy)
        })
    };
    let (mut model_serial, serial_secs, accuracy_serial) = fit_once(1);
    let (mut model_parallel, par_secs, accuracy_parallel) = fit_once(parallel_threads);
    bit_identical &= accuracy_serial == accuracy_parallel;
    let train = Phase {
        name: "train",
        reference_sps: None,
        serial_sps: sps(train_n * TRAIN_EPOCHS, serial_secs),
        parallel_sps: sps(train_n * TRAIN_EPOCHS, par_secs),
    };

    // -- prediction: per-sample encode+matvec loop vs batched pipeline.
    let (ref_secs, _) = time_best(|| {
        (0..test_n)
            .map(|i| model_serial.predict_one(data.test.sample(i)).expect("pred"))
            .collect::<Vec<usize>>()
    });
    let (serial_secs, predictions_serial) = parallel::with_thread_count(1, || {
        time_best(|| model_serial.predict(&data.test).expect("predict"))
    });
    let (par_secs, predictions_parallel) = parallel::with_thread_count(parallel_threads, || {
        time_best(|| model_parallel.predict(&data.test).expect("predict"))
    });
    bit_identical &= predictions_serial == predictions_parallel;
    let predict = Phase {
        name: "predict",
        reference_sps: Some(sps(test_n, ref_secs)),
        serial_sps: sps(test_n, serial_secs),
        parallel_sps: sps(test_n, par_secs),
    };

    println!(
        "{:<8} {:>12} {:>12} {:>12}   {:>7} {:>9}",
        "phase", "ref sps", "serial sps", "par sps", "blk/ref", "par/serial"
    );
    for phase in [&encode, &top2, &train, &predict] {
        phase.print();
    }
    // The pool-backed regression signal: with every requested worker on
    // its own core, parallel encode at or below serial throughput means
    // the dispatch machinery is eating the win — exactly the failure mode
    // the persistent pool exists to prevent.  Under oversubscription
    // (workers > cores, including the 1-core case) the comparison is
    // vacuous — parallel can at best tie serial — so the gate only arms
    // when `machine_cores >= parallel_threads`; when it fires, the process
    // exits non-zero.
    let encode_speedup = encode.speedup_parallel();
    let parallel_regression =
        machine_cores >= parallel_threads && parallel_threads > 1 && encode_speedup < 1.0;

    println!("\naccuracy serial   = {accuracy_serial:.6}");
    println!("accuracy parallel = {accuracy_parallel:.6}");
    println!("top2 taxonomy batch == per-sample: {taxonomy_agrees}");
    println!("parallel bit-identical to serial:  {bit_identical}");
    println!("machine cores = {machine_cores}, encode parallel/serial = {encode_speedup:.3}x");

    let json = format!
    (
        "{{\n  \"bench\": \"throughput\",\n  \"dataset\": \"{}\",\n  \"dim\": {DIM},\n  \
         \"scale\": {scale},\n  \"train_samples\": {train_n},\n  \"test_samples\": {test_n},\n  \
         \"train_epochs\": {TRAIN_EPOCHS},\n  \"threads_parallel\": {parallel_threads},\n  \
         \"machine_cores\": {machine_cores},\n  \
         \"phases\": {{\n    \"encode\": {},\n    \"top2\": {},\n    \"train\": {},\n    \
         \"predict\": {}\n  }},\n  \"accuracy\": {{ \"serial\": {accuracy_serial:.6}, \
         \"parallel\": {accuracy_parallel:.6} }},\n  \"top2_taxonomy_agrees\": {taxonomy_agrees},\n  \
         \"encode_speedup_parallel_over_serial\": {encode_speedup:.3},\n  \
         \"parallel_regression\": {parallel_regression},\n  \
         \"parallel_bit_identical_to_serial\": {bit_identical}\n}}\n",
        dataset.name(),
        encode.json(),
        top2.json(),
        train.json(),
        predict.json()
    );
    let out_path =
        std::env::var("DISTHD_BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");

    if !bit_identical {
        eprintln!("ERROR: parallel results diverged from serial — determinism contract violated");
        std::process::exit(1);
    }
    if parallel_regression {
        eprintln!(
            "ERROR: parallel encode is slower than serial ({encode_speedup:.3}x) on a \
             {machine_cores}-core machine — parallel regression"
        );
        std::process::exit(1);
    }
}
