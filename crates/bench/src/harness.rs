//! Model zoo and measurement driver shared by all experiment binaries.

use disthd::{DistHd, DistHdConfig};
use disthd_baselines::{
    BaselineHd, BaselineHdConfig, LinearSvm, Mlp, MlpConfig, NeuralHd, NeuralHdConfig, SvmConfig,
};
use disthd_datasets::TrainTest;
use disthd_eval::{Classifier, ModelError, TrainingHistory};
use disthd_linalg::RngSeed;
use std::time::Duration;

/// The models the paper compares (Fig. 4/5 panels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelKind {
    /// "SOTA DNN" — the MLP comparator.
    Dnn,
    /// Linear one-vs-rest SVM.
    Svm,
    /// Static-encoder HDC at the given dimensionality.
    BaselineHd {
        /// Hyperdimensional dimensionality `D`.
        dim: usize,
    },
    /// Variance-regenerating dynamic HDC at the given dimensionality.
    NeuralHd {
        /// Hyperdimensional dimensionality `D`.
        dim: usize,
    },
    /// This paper's model at the given dimensionality.
    DistHd {
        /// Hyperdimensional dimensionality `D`.
        dim: usize,
    },
}

impl ModelKind {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            ModelKind::Dnn => "DNN".into(),
            ModelKind::Svm => "SVM".into(),
            ModelKind::BaselineHd { dim } => format!("BaselineHD (D={})", fmt_dim(*dim)),
            ModelKind::NeuralHd { dim } => format!("NeuralHD (D={})", fmt_dim(*dim)),
            ModelKind::DistHd { dim } => format!("DistHD (D={})", fmt_dim(*dim)),
        }
    }
}

fn fmt_dim(dim: usize) -> String {
    if dim % 1000 == 0 {
        format!("{}k", dim / 1000)
    } else if dim % 100 == 0 {
        format!("{:.1}k", dim as f64 / 1000.0)
    } else {
        dim.to_string()
    }
}

/// The paper's Fig. 4 model panel: DNN, SVM, BaselineHD at the compressed
/// physical D, BaselineHD at the effective D* = 4k, NeuralHD and DistHD at
/// the compressed D.
pub fn paper_models(dim: usize, effective_dim: usize) -> Vec<ModelKind> {
    vec![
        ModelKind::Dnn,
        ModelKind::Svm,
        ModelKind::BaselineHd { dim },
        ModelKind::BaselineHd { dim: effective_dim },
        ModelKind::NeuralHd { dim },
        ModelKind::DistHd { dim },
    ]
}

/// Builds a fresh model of `kind` for a dataset shape.
pub fn build_model(
    kind: ModelKind,
    feature_dim: usize,
    class_count: usize,
    seed: RngSeed,
) -> Box<dyn Classifier> {
    match kind {
        ModelKind::Dnn => Box::new(Mlp::new(
            MlpConfig {
                hidden: vec![128],
                epochs: 20,
                learning_rate: 0.02,
                seed,
                ..Default::default()
            },
            feature_dim,
            class_count,
        )),
        ModelKind::Svm => Box::new(LinearSvm::new(
            SvmConfig {
                epochs: 15,
                seed,
                ..Default::default()
            },
            feature_dim,
            class_count,
        )),
        ModelKind::BaselineHd { dim } => Box::new(BaselineHd::new(
            BaselineHdConfig {
                dim,
                epochs: 20,
                seed,
                ..Default::default()
            },
            feature_dim,
            class_count,
        )),
        ModelKind::NeuralHd { dim } => Box::new(NeuralHd::new(
            NeuralHdConfig {
                dim,
                epochs: 20,
                seed,
                ..Default::default()
            },
            feature_dim,
            class_count,
        )),
        ModelKind::DistHd { dim } => Box::new(DistHd::new(
            DistHdConfig {
                dim,
                epochs: 20,
                seed,
                ..Default::default()
            },
            feature_dim,
            class_count,
        )),
    }
}

/// One trained-and-measured model run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which model ran.
    pub kind: ModelKind,
    /// Held-out accuracy after training.
    pub accuracy: f64,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Wall-clock time to classify the whole test set.
    pub inference_time: Duration,
    /// Per-epoch trace.
    pub history: TrainingHistory,
}

impl RunResult {
    /// Inference latency per sample in seconds.
    pub fn per_sample_latency(&self, test_len: usize) -> f64 {
        self.inference_time.as_secs_f64() / test_len.max(1) as f64
    }
}

/// Trains `kind` on `data.train`, times training and full-test-set
/// inference, and returns the measurements.
///
/// # Errors
///
/// Propagates model errors.
pub fn run_model(
    kind: ModelKind,
    data: &TrainTest,
    seed: RngSeed,
) -> Result<RunResult, ModelError> {
    let mut model = build_model(
        kind,
        data.train.feature_dim(),
        data.train.class_count(),
        seed,
    );
    let trained = disthd_eval::time_it(|| model.fit(&data.train, None));
    let history = trained.value?;
    let inferred = disthd_eval::time_it(|| model.predict(&data.test));
    let predictions = inferred.value?;
    let accuracy = disthd_eval::accuracy(&predictions, data.test.labels());
    Ok(RunResult {
        kind,
        accuracy,
        train_time: trained.elapsed,
        inference_time: inferred.elapsed,
        history,
    })
}

/// Default dataset scale for the experiment binaries, overridable with the
/// `DISTHD_SCALE` environment variable.
pub fn default_scale() -> f64 {
    std::env::var("DISTHD_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Deterministic per-trial seeds for repeated runs.
pub fn trial_seeds(count: usize) -> Vec<RngSeed> {
    (0..count as u64)
        .map(|i| RngSeed(0xBE7C_u64 + 7919 * i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ModelKind::Dnn.label(), "DNN");
        assert_eq!(
            ModelKind::BaselineHd { dim: 4000 }.label(),
            "BaselineHD (D=4k)"
        );
        assert_eq!(ModelKind::DistHd { dim: 500 }.label(), "DistHD (D=0.5k)");
    }

    #[test]
    fn paper_panel_has_six_models() {
        let panel = paper_models(500, 4000);
        assert_eq!(panel.len(), 6);
    }

    #[test]
    fn run_model_measures_all_kinds() {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.0005))
            .unwrap();
        for kind in [
            ModelKind::Dnn,
            ModelKind::Svm,
            ModelKind::BaselineHd { dim: 128 },
            ModelKind::NeuralHd { dim: 128 },
            ModelKind::DistHd { dim: 128 },
        ] {
            let result = run_model(kind, &data, RngSeed(1)).unwrap();
            assert!(result.accuracy > 0.2, "{:?}: {}", kind, result.accuracy);
            assert!(result.train_time > Duration::ZERO);
        }
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds = trial_seeds(5);
        let unique: std::collections::HashSet<u64> = seeds.iter().map(|s| s.0).collect();
        assert_eq!(unique.len(), 5);
    }
}
