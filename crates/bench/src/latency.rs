//! Log-bucketed latency histogram for the serving soak benchmark.
//!
//! Latencies span four orders of magnitude between a cache-warm window-1
//! hit and a deadline-flushed tail, so a linear histogram either truncates
//! the tail or wastes memory.  This one buckets by (exponent, 5-bit
//! mantissa prefix) — HDR-style — giving ≤ 1/32 (~3 %) relative error at
//! every scale with a fixed 15 KiB footprint, mergeable across client
//! threads without locks.

/// Mantissa bits retained per octave (32 sub-buckets, ≤ 1/32 rel. error).
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` nanosecond range: one identity
/// octave block below [`SUB`] plus one block per remaining octave (the
/// top exponent is 63, giving a maximum index of
/// `(63 - SUB_BITS + 1) * SUB + SUB - 1`).
const BUCKETS: usize = ((64 - SUB_BITS + 1) as usize) * (SUB as usize);

/// A fixed-size log-bucketed histogram of nanosecond latencies.
///
/// # Example
///
/// ```
/// use disthd_bench::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for us in [50u64, 100, 150, 10_000] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.count(), 4);
/// // p50 falls on the second value, p999 on the tail — within the
/// // histogram's 1/32 relative resolution.
/// assert!((h.quantile_us(0.5) - 100.0).abs() / 100.0 < 0.04);
/// assert!((h.quantile_us(0.999) - 10_000.0).abs() / 10_000.0 < 0.04);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a nanosecond value: identity below [`SUB`], then
/// (octave, top-[`SUB_BITS`]-mantissa) above it.
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros();
    let sub = (nanos >> (exp - SUB_BITS)) - SUB;
    ((u64::from(exp - SUB_BITS + 1) * SUB) + sub) as usize
}

/// Inclusive upper bound (nanoseconds) of the values a bucket holds.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let exp = index / SUB + SUB_BITS as u64 - 1;
    let sub = index % SUB;
    let width = 1u64 << (exp - SUB_BITS as u64);
    (SUB + sub) * width + (width - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: std::time::Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(nanos)] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one (per-thread collection, one
    /// merge at the end — no locks on the hot path).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The latency (microseconds) at or below which a `q` fraction of the
    /// samples fall, resolved to the containing bucket's upper bound
    /// (≤ 1/32 relative error).  Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(index) as f64 / 1_000.0;
            }
        }
        bucket_upper(BUCKETS - 1) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|offset| (1u64 << shift).saturating_add(offset)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let index = bucket_index(v);
            assert!(index >= last, "index regressed at {v}");
            assert!(index < BUCKETS);
            last = index;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_its_own_values() {
        for v in (0u64..4096).chain([1u64 << 20, 1 << 40, u64::MAX - 1]) {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative resolution: the bound overshoots by at most 1/32.
            if v >= SUB {
                assert!(
                    (upper - v) as f64 / v as f64 <= 1.0 / SUB as f64,
                    "resolution worse than 1/{SUB} at {v}: upper {upper}"
                );
            }
        }
    }

    #[test]
    fn quantiles_resolve_known_distributions() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        for (q, expected_us) in [(0.5, 500.0), (0.99, 990.0), (0.999, 999.0)] {
            let got = h.quantile_us(q);
            assert!(
                (got - expected_us).abs() / expected_us <= 1.0 / SUB as f64,
                "p{q}: got {got}, expected ~{expected_us}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_nanos(i * i + 1);
            if i % 2 == 0 {
                left.record(d);
            } else {
                right.record(d);
            }
            all.record(d);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(left.quantile_us(q), all.quantile_us(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0.0);
    }
}
