//! # disthd-bench
//!
//! Shared harness for the experiment binaries and Criterion benches that
//! regenerate every table and figure of the DistHD paper.  See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

#![deny(missing_docs)]

pub mod harness;
pub mod latency;

pub use harness::{
    build_model, default_scale, paper_models, run_model, trial_seeds, ModelKind, RunResult,
};
pub use latency::LatencyHistogram;
