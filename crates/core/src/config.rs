use disthd_hd::encoder::EncoderBackend;
use disthd_linalg::{FhtSchedule, RngSeed};

/// The α/β/θ weight parameters of Algorithm 2.
///
/// `alpha` scales the distance to the **true** label (dimensions far from
/// the truth look undesirable); `beta` and `theta` scale the distances to
/// the first and second predicted **wrong** labels (dimensions close to a
/// wrong class look undesirable, but a dimension close to *both* a wrong
/// class and the true class carries shared information and should be
/// spared).
///
/// Per §III-C / Fig. 6: larger `alpha` trades toward sensitivity (lower
/// FNR); larger `beta`/`theta` trade toward specificity (lower FPR).  The
/// paper requires `theta < beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightParams {
    /// Weight on `|H − C_true|`.
    pub alpha: f32,
    /// Weight on `|H − C_pred1|`.
    pub beta: f32,
    /// Weight on `|H − C_pred2|` (incorrect samples only).
    pub theta: f32,
}

impl WeightParams {
    /// Creates weight parameters.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or `theta >= beta` (the paper's
    /// stated constraint).
    pub fn new(alpha: f32, beta: f32, theta: f32) -> Self {
        assert!(
            alpha >= 0.0 && beta >= 0.0 && theta >= 0.0,
            "weights must be non-negative"
        );
        assert!(theta < beta, "paper constraint: theta < beta");
        Self { alpha, beta, theta }
    }

    /// The α/β ratio, the Fig. 6 tuning knob.
    pub fn alpha_beta_ratio(&self) -> f32 {
        if self.beta == 0.0 {
            f32::INFINITY
        } else {
            self.alpha / self.beta
        }
    }
}

impl Default for WeightParams {
    fn default() -> Self {
        // Balanced sensitivity/specificity; theta below beta per the paper.
        Self {
            alpha: 1.0,
            beta: 1.0,
            theta: 0.25,
        }
    }
}

/// Configuration for [`crate::DistHd`].
#[derive(Debug, Clone, PartialEq)]
pub struct DistHdConfig {
    /// Physical hyperdimensional dimensionality `D` (the paper's headline
    /// setting is `0.5k = 500`).
    pub dim: usize,
    /// Adaptive learning rate `η` of Algorithm 1.
    pub learning_rate: f32,
    /// Maximum retraining epochs.
    pub epochs: usize,
    /// Regeneration rate `R` as a fraction (paper sweeps around `0.10`).
    pub regen_rate: f64,
    /// Run the top-2 / regeneration step every this many epochs
    /// (`0` disables regeneration → pure static-encoder training).
    ///
    /// The default is `2`: dimensions regenerated in epoch `t` carry only
    /// their one-pass bundle until the epoch `t + 1` adaptive pass refines
    /// them, so scoring them again at `t + 1` re-flags half-trained
    /// dimensions and churns the encoder — measurably losing accuracy at
    /// every seed we swept.  One consolidation epoch between regenerations
    /// keeps the selection honest.
    pub regen_interval: usize,
    /// Algorithm 2 weight parameters.
    pub weights: WeightParams,
    /// Stop early when train accuracy stalls this many epochs (`None`
    /// disables early stopping).
    pub patience: Option<usize>,
    /// Seed for the encoder and regeneration stream.
    pub seed: RngSeed,
    /// RBF encoder implementation: the paper-literal dense `O(F·D)` GEMM
    /// encoder, or the structured `O(D log D)` Walsh–Hadamard construction
    /// (same kernel map, same regeneration semantics — a speed knob; see
    /// `disthd_hd::encoder::StructuredRbfEncoder`).
    pub encoder_backend: EncoderBackend,
    /// Butterfly pass order of the structured backend's Walsh–Hadamard
    /// transforms (ignored by the dense backend).  Defaults to the
    /// `DISTHD_FHT_SCHEDULE` environment knob.  Schedules differ only in
    /// floating-point rounding; each is bit-deterministic across kernel
    /// tiers and thread counts, and the choice is never persisted — DHD
    /// artifact bytes are schedule-independent.
    pub fht_schedule: FhtSchedule,
}

impl Default for DistHdConfig {
    fn default() -> Self {
        Self {
            dim: 500,
            learning_rate: 0.05,
            epochs: 30,
            regen_rate: 0.10,
            regen_interval: 2,
            weights: WeightParams::default(),
            patience: Some(6),
            seed: RngSeed::default(),
            encoder_backend: EncoderBackend::default(),
            fht_schedule: FhtSchedule::from_env(),
        }
    }
}

impl DistHdConfig {
    /// Validates the configuration, panicking on degenerate values.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `learning_rate <= 0`, or `regen_rate` is
    /// outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            (0.0..=1.0).contains(&self.regen_rate),
            "regen_rate must be in [0, 1]"
        );
    }

    /// Effective dimensionality after `iterations` regenerating epochs:
    /// `D* = D + D·R%·iterations` (§IV-B).
    pub fn effective_dim(&self, iterations: usize) -> f64 {
        self.dim as f64 + self.dim as f64 * self.regen_rate * iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        DistHdConfig::default().validate();
    }

    #[test]
    fn default_weights_satisfy_paper_constraint() {
        let w = WeightParams::default();
        assert!(w.theta < w.beta);
    }

    #[test]
    #[should_panic(expected = "theta < beta")]
    fn theta_must_be_below_beta() {
        WeightParams::new(1.0, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        WeightParams::new(-1.0, 1.0, 0.1);
    }

    #[test]
    fn alpha_beta_ratio() {
        let w = WeightParams::new(2.0, 1.0, 0.1);
        assert!((w.alpha_beta_ratio() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn effective_dim_matches_paper_formula() {
        let cfg = DistHdConfig {
            dim: 500,
            regen_rate: 0.10,
            ..Default::default()
        };
        // D* = 500 + 500 * 0.10 * 70 = 4000: the paper's "D=0.5k behaves
        // like D*=4k" accounting.
        assert!((cfg.effective_dim(70) - 4000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_invalid() {
        DistHdConfig {
            dim: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "regen_rate")]
    fn regen_rate_bounds_checked() {
        DistHdConfig {
            regen_rate: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
