//! Low-precision deployment of a trained DistHD model.
//!
//! The paper's edge story (§IV-D) stores the class hypervectors at 1–8 bits
//! per dimension.  [`DeployedModel`] freezes a trained [`crate::DistHd`]
//! into that form: the encoder and centering stay in f32 (they run once per
//! query), while the class memory — the part that dominates storage and is
//! exposed to memory faults — lives in a [`QuantizedMatrix`].
//!
//! The quantized words are the **single source of truth** for the class
//! memory: no dequantized `ClassModel` snapshot exists, and construct,
//! hot-swap and predict perform zero `dequantize()` calls (a regression
//! test pins this via `disthd_hd::quantize::dequantize_calls`).
//! [`DeployedModel::inject_faults`] flips bits in place exactly like the
//! Fig. 8 fault model, and inference derives everything it reads from
//! those very words — a faulted deployment behaves like the faulted device
//! would, with out-of-range codes saturating as on hardware.
//!
//! Batched scoring decodes the codes straight into the GEMM's packed-panel
//! layout and runs the full 4×16 register-tiled similarity micro-kernel
//! ([`disthd_hd::quantized_similarity_matrix`]): the decode streams the
//! class memory at its packed width (4× fewer source bytes than the f32
//! snapshot's per-call pack had to copy) and the panel is written
//! immediately before the GEMM reads it back out of cache, which is what
//! finally puts the integer path ahead of the old dequantize-into-a-
//! snapshot pipeline at every batch size.  Single queries stream the
//! packed words through a 1 KiB decode segment
//! ([`disthd_hd::quantized_similarity_to_all`]) in the GEMM's per-element
//! accumulation order, scoring bit-identically to the batched kernel.

use crate::trainer::DistHd;
use disthd_eval::ModelError;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{AnyRbfEncoder, Encoder};
use disthd_hd::noise::flip_random_bits;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_hd::{
    packed_cosine_matrix, packed_predict_batch, quantized_similarity_matrix,
    quantized_similarity_to_all,
};
use disthd_linalg::{Matrix, SeededRng};
use std::sync::Arc;

/// Optional serving-task configuration carried by a deployment.
///
/// Beyond plain classification, a deployment can serve two more task
/// types on the same batched GEMM path: **top-k multi-label prediction**
/// (the `k` most similar classes, ranked) and **one-class anomaly
/// scoring** (is this query close enough to *any* class to be an
/// inlier?).  Both are pure post-processing of the similarity scores the
/// classify path already computes, so they inherit its batch-composition
/// invariance; this struct holds the knobs they need, travels with the
/// deployment through hot-swap and snapshot publication, and persists in
/// the `DHD` artifact (format version `'3'`, written only when a task is
/// actually configured — see [`crate::io`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServingTasks {
    /// Ranked classes returned by top-k serving requests (`None` = top-k
    /// requests fall back to `k = 1`, i.e. plain argmax in a vector).
    pub top_k: Option<usize>,
    /// Decision threshold of the one-class anomaly scorer: a query whose
    /// best class cosine falls **below** this is flagged anomalous.
    /// Calibrate with [`DeployedModel::calibrate_anomaly_threshold`].
    pub anomaly_threshold: Option<f32>,
}

impl ServingTasks {
    /// `true` when no task is configured (the artifact then persists in
    /// its task-free pre-v3 format, byte-identical to older writers).
    pub fn is_empty(&self) -> bool {
        self.top_k.is_none() && self.anomaly_threshold.is_none()
    }
}

/// A trained DistHD model frozen for low-precision edge deployment.
///
/// # Example
///
/// ```
/// use disthd::{DeployedModel, DistHd, DistHdConfig};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
/// use disthd_eval::Classifier;
/// use disthd_hd::quantize::BitWidth;
///
/// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
/// let mut model = DistHd::new(
///     DistHdConfig { dim: 256, epochs: 6, ..Default::default() },
///     data.train.feature_dim(),
///     data.train.class_count(),
/// );
/// model.fit(&data.train, None)?;
/// let deployed = DeployedModel::freeze(&model, BitWidth::B1)?;
/// let class = deployed.predict(data.test.sample(0))?;
/// assert!(class < data.test.class_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeployedModel {
    /// The frozen encoder, shared structurally across clones: a deployment
    /// clone (e.g. a serving snapshot published for lock-free readers) costs
    /// O(class memory), not O(encoder) — the encoder is immutable after
    /// freeze, so every clone can point at the same instance.
    encoder: Arc<AnyRbfEncoder>,
    center: EncodingCenter,
    memory: QuantizedMatrix,
    /// Reciprocal integer code norms, one per class — the only derived
    /// state inference needs on top of the packed words.  Refreshed in
    /// place (no allocation) on hot-swap and fault injection.
    inv_norms: Vec<f32>,
    class_count: usize,
    /// Optional top-k / anomaly serving configuration; rides along through
    /// clone, hot-swap and persistence.
    tasks: ServingTasks,
}

impl DeployedModel {
    /// Freezes a trained model at the given storage precision.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] if `model` has not been trained.
    pub fn freeze(model: &DistHd, width: BitWidth) -> Result<Self, ModelError> {
        let class_model = model.class_model().ok_or(ModelError::NotFitted)?;
        let center = model.center().ok_or(ModelError::NotFitted)?.clone();
        let memory = QuantizedMatrix::quantize(class_model.classes(), width);
        let mut inv_norms = Vec::new();
        memory.code_inv_norms_into(&mut inv_norms);
        Ok(Self {
            encoder: Arc::new(model.encoder().clone()),
            center,
            memory,
            inv_norms,
            class_count: class_model.class_count(),
            tasks: ServingTasks::default(),
        })
    }

    /// Storage precision of the class memory.
    pub fn width(&self) -> BitWidth {
        self.memory.width()
    }

    /// Class-memory footprint in bits (the memory the fault model acts on).
    pub fn memory_bits(&self) -> usize {
        self.memory.payload_bits()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Classifies one feature vector, reading the packed quantized words
    /// directly (no dequantized snapshot exists to consult).
    ///
    /// # Errors
    ///
    /// Returns a shape error for a wrong-length input.
    pub fn predict(&self, features: &[f32]) -> Result<usize, ModelError> {
        let scores = self.decision_scores(features)?;
        Ok(argmax(&scores))
    }

    /// Classifies a whole batch of feature vectors (one per row) through
    /// the fused encode GEMM and one batched integer-similarity pass over
    /// the packed class words.
    ///
    /// This is the entry point the serving layer's request-batching engine
    /// coalesces queries into: per query it costs a slice of one large
    /// matrix product plus a packed-word similarity scan instead of a full
    /// streaming pass over the base and class matrices, which is where
    /// batched serving's throughput advantage comes from.  Because every
    /// row is computed independently by the deterministic backend, a
    /// query's prediction is bit-identical whether it is served alone or
    /// inside any batch.
    ///
    /// # Example
    ///
    /// ```
    /// use disthd::{DeployedModel, DistHd, DistHdConfig};
    /// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    /// use disthd_eval::Classifier;
    /// use disthd_hd::quantize::BitWidth;
    /// use disthd_linalg::Matrix;
    ///
    /// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
    /// let mut model = DistHd::new(
    ///     DistHdConfig { dim: 256, epochs: 6, ..Default::default() },
    ///     data.train.feature_dim(),
    ///     data.train.class_count(),
    /// );
    /// model.fit(&data.train, None)?;
    /// let deployed = DeployedModel::freeze(&model, BitWidth::B8)?;
    /// let queries = Matrix::from_row_slices(
    ///     data.test.feature_dim(),
    ///     &[data.test.sample(0), data.test.sample(1)],
    /// )?;
    /// let batched = deployed.predict_batch(&queries)?;
    /// // A batch of one is the same computation, so predictions agree.
    /// let solo = deployed.predict_batch(&queries.select_rows(&[0]))?;
    /// assert_eq!(batched[0], solo[0]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a shape error if `queries.cols()` differs from the
    /// encoder's input arity.
    pub fn predict_batch(&self, queries: &Matrix) -> Result<Vec<usize>, ModelError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let mut encoded = self.encoder.encode_batch(queries)?;
        self.center.apply_batch(&mut encoded);
        self.predict_encoded_batch(&encoded)
    }

    /// Classifies a whole batch through the **end-to-end integer
    /// dataflow**: the fused bit-sliced encode quantizes each encoded,
    /// centered query row straight into packed words at the class memory's
    /// width (no intermediate f32 hypervector matrix), and scoring runs
    /// entirely on packed integers — XOR+popcount at 1 bit, widening
    /// i2/i4/i8 dot products otherwise.  After featurization the hot loop
    /// performs **zero f32 similarity work and zero `dequantize()` calls**;
    /// the only float arithmetic left is the scalar `dot × inv_norm`
    /// scaling of each integer dot.
    ///
    /// Compared to [`DeployedModel::predict_batch`] the query side is
    /// quantized too, so predictions can differ where query-quantization
    /// error flips a near-tie; the serving benchmark records the agreement
    /// rate per width.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `queries.cols()` differs from the
    /// encoder's input arity.
    pub fn predict_quantized_batch(&self, queries: &Matrix) -> Result<Vec<usize>, ModelError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let encoded = self.encoder.encode_batch_quantized(
            queries,
            Some(self.center.means()),
            self.memory.width(),
        )?;
        Ok(packed_predict_batch(
            &encoded,
            &self.memory,
            &self.inv_norms,
        )?)
    }

    /// Classifies a batch of **already encoded and centered** hypervectors
    /// (one per row) through the amortized integer scoring GEMM.
    ///
    /// This is the class-scoring stage of [`DeployedModel::predict_batch`]
    /// in isolation — for callers that pre-encode once and score many
    /// model variants (the Fig. 8 robustness harness) or benchmark the
    /// scoring stage without the shared encode cost.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `encoded.cols()` differs from the class
    /// memory's dimensionality.
    pub fn predict_encoded_batch(&self, encoded: &Matrix) -> Result<Vec<usize>, ModelError> {
        let scores = quantized_similarity_matrix(encoded, &self.memory, &self.inv_norms)?;
        Ok(scores.iter_rows().map(argmax).collect())
    }

    /// Hot-swaps the quantized class memory, e.g. with a freshly
    /// requantized model produced by [`crate::DistHd::partial_fit`].
    ///
    /// The encoder and centering are untouched: online adaptive updates
    /// keep the encoder frozen between regeneration events, so the class
    /// memory is the only part of the deployment that needs to move for a
    /// live model refresh.
    ///
    /// The swap moves the replacement's words in and refreshes the per-row
    /// code norms into the existing buffer — **allocation-free**, so a hot
    /// serving loop can swap between batches without touching the
    /// allocator (no `f32` snapshot is rebuilt; there is none).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] if the replacement's shape
    /// differs from the current memory — a swap may change weights, never
    /// topology.
    pub fn swap_class_memory(&mut self, memory: QuantizedMatrix) -> Result<(), ModelError> {
        if memory.shape() != self.memory.shape() {
            return Err(ModelError::Incompatible(format!(
                "class memory shape {:?} cannot replace {:?}",
                memory.shape(),
                self.memory.shape()
            )));
        }
        memory.code_inv_norms_into(&mut self.inv_norms);
        self.memory = memory;
        Ok(())
    }

    /// Builds a **new** deployment that serves `memory` in place of the
    /// current class memory, without mutating `self` — the copy-on-write
    /// counterpart of [`DeployedModel::swap_class_memory`] for snapshot
    /// publication: a serving layer that shares one immutable deployment
    /// across reader threads derives the post-swap generation from the live
    /// one and publishes it, while in-flight readers keep scoring the old
    /// generation untouched.
    ///
    /// The encoder and centering are structurally shared with `self`
    /// (`Arc`), so the construction cost is the class memory plus its code
    /// norms — independent of the encoder's size.  Predictions of the
    /// returned deployment are bit-identical to calling
    /// [`DeployedModel::swap_class_memory`] on a clone.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] if the replacement's shape
    /// differs from the current memory — a swap may change weights, never
    /// topology.
    pub fn with_swapped_memory(&self, memory: QuantizedMatrix) -> Result<Self, ModelError> {
        if memory.shape() != self.memory.shape() {
            return Err(ModelError::Incompatible(format!(
                "class memory shape {:?} cannot replace {:?}",
                memory.shape(),
                self.memory.shape()
            )));
        }
        let mut inv_norms = Vec::with_capacity(self.inv_norms.len());
        memory.code_inv_norms_into(&mut inv_norms);
        Ok(Self {
            encoder: Arc::clone(&self.encoder),
            center: self.center.clone(),
            memory,
            inv_norms,
            class_count: self.class_count,
            tasks: self.tasks,
        })
    }

    /// Per-class similarity scores for one feature vector: the encoded
    /// query dotted against the integer codes of each class, normalized by
    /// the class's code norm — cosine-equivalent to the dequantized
    /// similarity (the quantization scale cancels).
    ///
    /// # Errors
    ///
    /// Returns a shape error for a wrong-length input.
    pub fn decision_scores(&self, features: &[f32]) -> Result<Vec<f32>, ModelError> {
        let mut encoded = self.encoder.encode(features)?;
        self.center.apply(&mut encoded);
        Ok(quantized_similarity_to_all(
            &encoded,
            &self.memory,
            &self.inv_norms,
        )?)
    }

    /// Accuracy over a dataset.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn accuracy(&self, data: &disthd_datasets::Dataset) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for i in 0..data.len() {
            if self.predict(data.sample(i))? == data.label(i) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Reassembles a deployment from persisted parts (see [`crate::io`]).
    pub fn from_parts(
        encoder: AnyRbfEncoder,
        center: EncodingCenter,
        memory: QuantizedMatrix,
    ) -> Self {
        let mut inv_norms = Vec::new();
        memory.code_inv_norms_into(&mut inv_norms);
        let class_count = memory.shape().0;
        Self {
            encoder: Arc::new(encoder),
            center,
            memory,
            inv_norms,
            class_count,
            tasks: ServingTasks::default(),
        }
    }

    /// Borrows the encoder (persistence access).
    pub fn encoder_parts(&self) -> &AnyRbfEncoder {
        self.encoder.as_ref()
    }

    /// Borrows the centering means (persistence access).
    pub fn center_parts(&self) -> &EncodingCenter {
        &self.center
    }

    /// Borrows the quantized class memory (persistence access).
    pub fn memory_parts(&self) -> &QuantizedMatrix {
        &self.memory
    }

    /// The serving-task configuration this deployment carries.
    pub fn tasks(&self) -> ServingTasks {
        self.tasks
    }

    /// Sets the serving-task configuration (see [`ServingTasks`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] if `top_k` is configured as 0
    /// or exceeds the class count — a `k` outside `1..=classes` cannot
    /// rank anything.
    pub fn set_tasks(&mut self, tasks: ServingTasks) -> Result<(), ModelError> {
        if let Some(k) = tasks.top_k {
            if k == 0 || k > self.class_count {
                return Err(ModelError::Incompatible(format!(
                    "top-k of {k} is outside 1..={} classes",
                    self.class_count
                )));
            }
        }
        self.tasks = tasks;
        Ok(())
    }

    /// The `k` most similar classes per query row, best first — the top-k
    /// multi-label serving task on the batched GEMM path.
    ///
    /// The scores are the same `samples × classes` similarity matrix the
    /// classify path ranks ([`disthd_hd::quantized_similarity_matrix`]),
    /// so `result[r][0]` always equals [`DeployedModel::predict_batch`]'s
    /// answer for row `r` (ties resolve to the lower class index in both),
    /// and every row is computed independently — a query's ranking is
    /// bit-identical in any batch.  `k` is clamped to the class count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] for `k = 0`, or a shape error
    /// if `queries.cols()` differs from the encoder's input arity.
    pub fn top_k_batch(&self, queries: &Matrix, k: usize) -> Result<Vec<Vec<usize>>, ModelError> {
        if k == 0 {
            return Err(ModelError::Incompatible("top-k of 0 ranks nothing".into()));
        }
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let mut encoded = self.encoder.encode_batch(queries)?;
        self.center.apply_batch(&mut encoded);
        let scores = quantized_similarity_matrix(&encoded, &self.memory, &self.inv_norms)?;
        Ok(scores
            .iter_rows()
            .map(|row| disthd_linalg::top_k_largest(row, k))
            .collect())
    }

    /// [`DeployedModel::top_k_batch`] on the **end-to-end integer
    /// pipeline**: queries are quantized by the fused encode and ranked by
    /// packed integer cosines ([`disthd_hd::packed_cosine_matrix`]) — the
    /// per-query norm the argmax-only predictor skips is applied here, so
    /// the scores backing the ranking are true cosines (shared with the
    /// anomaly scorer; one kernel serves both tasks).
    ///
    /// # Errors
    ///
    /// See [`DeployedModel::top_k_batch`].
    pub fn top_k_quantized_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<usize>>, ModelError> {
        if k == 0 {
            return Err(ModelError::Incompatible("top-k of 0 ranks nothing".into()));
        }
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let scores = self.quantized_cosines(queries)?;
        Ok(scores
            .iter_rows()
            .map(|row| disthd_linalg::top_k_largest(row, k))
            .collect())
    }

    /// One-class anomaly scores: each query row's **best class cosine** in
    /// `[-1, 1]`.  An inlier resembles some class and scores high; a query
    /// from outside the training distribution resembles none and scores
    /// low.  Unlike the classify/top-k rankings, these values are compared
    /// **across queries** (against a threshold), so the per-query norm the
    /// ranking paths may drop is applied here: the classify scores are
    /// divided by the encoded query's L2 norm, making them genuine
    /// cosines.  Rows are scored independently — batch-composition
    /// invariant like every serving path.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `queries.cols()` differs from the
    /// encoder's input arity.
    pub fn anomaly_scores(&self, queries: &Matrix) -> Result<Vec<f32>, ModelError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let mut encoded = self.encoder.encode_batch(queries)?;
        self.center.apply_batch(&mut encoded);
        let scores = quantized_similarity_matrix(&encoded, &self.memory, &self.inv_norms)?;
        Ok(scores
            .iter_rows()
            .enumerate()
            .map(|(r, row)| {
                let norm = disthd_linalg::l2_norm(encoded.row(r));
                if norm == 0.0 {
                    0.0
                } else {
                    max_score(row) / norm
                }
            })
            .collect())
    }

    /// [`DeployedModel::anomaly_scores`] on the **end-to-end integer
    /// pipeline**: the fused encode quantizes each query and
    /// [`disthd_hd::packed_cosine_matrix`] produces true integer-code
    /// cosines (per-query *and* per-class norms applied), whose row
    /// maximum is the anomaly score.
    ///
    /// # Errors
    ///
    /// See [`DeployedModel::anomaly_scores`].
    pub fn anomaly_scores_quantized(&self, queries: &Matrix) -> Result<Vec<f32>, ModelError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let scores = self.quantized_cosines(queries)?;
        Ok(scores.iter_rows().map(max_score).collect())
    }

    /// Calibrates the one-class anomaly threshold from labelled
    /// calibration batches: `inliers` should come from the training
    /// distribution, `outliers` from outside it.  Both are scored with
    /// [`DeployedModel::anomaly_scores`], an ROC curve is swept over the
    /// pooled scores (`disthd_eval::roc`) and the threshold maximizing
    /// Youden's J (`tpr − fpr`) is stored in [`ServingTasks`] and
    /// returned.  A query scoring **below** the threshold is anomalous.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] if either batch is empty or
    /// the scores cannot separate anything (degenerate ROC curve), or a
    /// shape error for wrong-arity rows.
    pub fn calibrate_anomaly_threshold(
        &mut self,
        inliers: &Matrix,
        outliers: &Matrix,
    ) -> Result<f32, ModelError> {
        if inliers.rows() == 0 || outliers.rows() == 0 {
            return Err(ModelError::Incompatible(
                "anomaly calibration needs at least one inlier and one outlier".into(),
            ));
        }
        let mut scores = self.anomaly_scores(inliers)?;
        let mut labels = vec![true; scores.len()];
        scores.extend(self.anomaly_scores(outliers)?);
        labels.resize(scores.len(), false);
        let curve = disthd_eval::roc_curve(&scores, &labels);
        let threshold = disthd_eval::youden_threshold(&curve).ok_or_else(|| {
            ModelError::Incompatible(
                "anomaly calibration scores are degenerate (no separating threshold)".into(),
            )
        })?;
        self.tasks.anomaly_threshold = Some(threshold);
        Ok(threshold)
    }

    /// The integer-pipeline cosine matrix shared by the quantized top-k
    /// and anomaly paths: fused quantizing encode, then packed cosines.
    fn quantized_cosines(&self, queries: &Matrix) -> Result<Matrix, ModelError> {
        let encoded = self.encoder.encode_batch_quantized(
            queries,
            Some(self.center.means()),
            self.memory.width(),
        )?;
        Ok(packed_cosine_matrix(
            &encoded,
            &self.memory,
            &self.inv_norms,
        )?)
    }

    /// Flips `round(rate * memory_bits())` random bits of the stored class
    /// memory (the Fig. 8 fault model) and refreshes the per-class code
    /// norms in place.  Inference reads the very same faulted words, so no
    /// snapshot rebuild is needed.  Returns the number of bits flipped.
    pub fn inject_faults(&mut self, rate: f64, rng: &mut SeededRng) -> usize {
        let flipped = flip_random_bits(&mut self.memory, rate, rng);
        self.memory.code_inv_norms_into(&mut self.inv_norms);
        flipped
    }
}

/// Greatest score of a non-empty row (the anomaly scorer's "best class").
fn max_score(scores: &[f32]) -> f32 {
    scores[argmax(scores)]
}

/// Index of the strictly greatest score (ties resolve to the lower class
/// index, matching `ClassModel`'s argmax convention).
fn argmax(scores: &[f32]) -> usize {
    let mut best = 0;
    for i in 1..scores.len() {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistHdConfig;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    use disthd_eval::Classifier;
    use disthd_linalg::RngSeed;

    fn trained() -> (DistHd, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 512,
                epochs: 10,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (model, data)
    }

    #[test]
    fn freeze_requires_fitted_model() {
        let model = DistHd::new(
            DistHdConfig {
                dim: 64,
                ..Default::default()
            },
            4,
            3,
        );
        assert!(matches!(
            DeployedModel::freeze(&model, BitWidth::B8),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn integer_path_predictions_match_f32_snapshot_at_every_width() {
        // The zero-dequantize serving path must predict exactly what the
        // old dequantize-into-a-ClassModel snapshot path predicted, for
        // every sample, at every storage precision — including after a
        // hot-swap and after fault injection.
        use disthd_hd::ClassModel;
        let (model, data) = trained();
        for width in BitWidth::all() {
            let mut deployed = DeployedModel::freeze(&model, width).unwrap();
            let mut rng = SeededRng::new(RngSeed(17));
            for phase in 0..2 {
                if phase == 1 {
                    deployed.inject_faults(0.02, &mut rng);
                }
                let mut snapshot = ClassModel::from_matrix(deployed.memory_parts().dequantize());
                for i in 0..data.test.len() {
                    let mut encoded = deployed
                        .encoder_parts()
                        .encode(data.test.sample(i))
                        .unwrap();
                    deployed.center_parts().apply(&mut encoded);
                    let expected = snapshot.predict(&encoded);
                    let got = deployed.predict(data.test.sample(i)).unwrap();
                    assert_eq!(got, expected, "{width}, sample {i}, phase {phase}");
                }
                // The batched path agrees with the single path.
                let n = data.test.len().min(32);
                let rows: Vec<usize> = (0..n).collect();
                let batch = deployed
                    .predict_batch(&data.test.features().select_rows(&rows))
                    .unwrap();
                for (i, &b) in batch.iter().enumerate() {
                    assert_eq!(
                        b,
                        deployed.predict(data.test.sample(i)).unwrap(),
                        "{width}, batched sample {i}, phase {phase}"
                    );
                }
            }
        }
    }

    #[test]
    fn eight_bit_deployment_matches_f32_closely() {
        let (mut model, data) = trained();
        let f32_acc = model.accuracy(&data.test).unwrap();
        let deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let deployed_acc = deployed.accuracy(&data.test).unwrap();
        assert!(
            (f32_acc - deployed_acc).abs() < 0.05,
            "f32 {f32_acc:.3} vs 8-bit {deployed_acc:.3}"
        );
    }

    #[test]
    fn memory_bits_scale_with_width() {
        let (model, _) = trained();
        let b1 = DeployedModel::freeze(&model, BitWidth::B1).unwrap();
        let b8 = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        assert_eq!(b8.memory_bits(), 8 * b1.memory_bits());
        assert_eq!(b1.width(), BitWidth::B1);
        assert_eq!(b1.class_count(), 3);
    }

    #[test]
    fn fault_injection_flips_requested_fraction() {
        let (model, _) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B4).unwrap();
        let mut rng = SeededRng::new(RngSeed(5));
        let flipped = deployed.inject_faults(0.10, &mut rng);
        assert_eq!(
            flipped,
            (deployed.memory_bits() as f64 * 0.10).round() as usize
        );
    }

    #[test]
    fn faulted_deployment_still_classifies_above_chance() {
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B1).unwrap();
        let mut rng = SeededRng::new(RngSeed(6));
        deployed.inject_faults(0.05, &mut rng);
        let acc = deployed.accuracy(&data.test).unwrap();
        assert!(acc > 1.0 / 3.0, "faulted accuracy {acc}");
    }

    #[test]
    fn predict_batch_is_invariant_to_batch_composition() {
        // The serving engine relies on this: a query's prediction must not
        // depend on which other queries happen to share its batch.
        let (model, data) = trained();
        let deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let n = data.test.len().min(40);
        let all: Vec<usize> = (0..n).collect();
        let batched = deployed
            .predict_batch(&data.test.features().select_rows(&all))
            .unwrap();
        for (i, &expected) in batched.iter().enumerate() {
            let solo = deployed
                .predict_batch(&data.test.features().select_rows(&[i]))
                .unwrap();
            assert_eq!(solo[0], expected, "sample {i}");
        }
    }

    #[test]
    fn quantized_batch_predictions_track_the_f32_pipeline() {
        // The all-integer pipeline quantizes the query side too, so it may
        // legitimately flip near-ties against the mixed f32-query pipeline
        // — but agreement must stay high at every width and the resulting
        // accuracy must not collapse.
        let (model, data) = trained();
        let n = data.test.len();
        let all: Vec<usize> = (0..n).collect();
        let queries = data.test.features().select_rows(&all);
        for width in BitWidth::all() {
            let deployed = DeployedModel::freeze(&model, width).unwrap();
            let f32_preds = deployed.predict_batch(&queries).unwrap();
            let int_preds = deployed.predict_quantized_batch(&queries).unwrap();
            assert_eq!(int_preds.len(), n);
            let agree = f32_preds
                .iter()
                .zip(&int_preds)
                .filter(|(a, b)| a == b)
                .count() as f64
                / n as f64;
            let floor = match width {
                BitWidth::B1 | BitWidth::B2 => 0.85,
                _ => 0.95,
            };
            assert!(agree >= floor, "{width}: agreement {agree:.3} < {floor}");
            let f32_acc = f32_preds
                .iter()
                .enumerate()
                .filter(|&(i, &p)| p == data.test.label(i))
                .count() as f64
                / n as f64;
            let int_acc = int_preds
                .iter()
                .enumerate()
                .filter(|&(i, &p)| p == data.test.label(i))
                .count() as f64
                / n as f64;
            assert!(
                int_acc >= f32_acc - 0.05,
                "{width}: integer accuracy {int_acc:.3} vs f32 {f32_acc:.3}"
            );
        }
        // Degenerate shapes behave like predict_batch.
        let deployed = DeployedModel::freeze(&model, BitWidth::B1).unwrap();
        assert!(deployed
            .predict_quantized_batch(&Matrix::zeros(2, 3))
            .is_err());
        assert!(deployed
            .predict_quantized_batch(&Matrix::zeros(0, 0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn predict_batch_checks_shapes_and_handles_empty() {
        let (model, _) = trained();
        let deployed = DeployedModel::freeze(&model, BitWidth::B4).unwrap();
        assert!(deployed.predict_batch(&Matrix::zeros(2, 3)).is_err());
        assert!(deployed
            .predict_batch(&Matrix::zeros(0, 0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn swap_class_memory_changes_predictions_and_rejects_reshape() {
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let before = deployed.accuracy(&data.test).unwrap();
        // Swapping in a permuted class memory must change behaviour.
        let k = deployed.class_count();
        let rotated: Vec<usize> = (0..k).map(|c| (c + 1) % k).collect();
        let permuted = model.class_model().unwrap().classes().select_rows(&rotated);
        deployed
            .swap_class_memory(QuantizedMatrix::quantize(&permuted, BitWidth::B8))
            .unwrap();
        let after = deployed.accuracy(&data.test).unwrap();
        assert!(after < before, "permuted memory should hurt: {after}");
        // Swapping the original back restores the original accuracy.
        let restore =
            QuantizedMatrix::quantize(model.class_model().unwrap().classes(), BitWidth::B8);
        deployed.swap_class_memory(restore).unwrap();
        assert_eq!(deployed.accuracy(&data.test).unwrap(), before);
        // Topology changes are rejected.
        let wrong = QuantizedMatrix::quantize(&Matrix::zeros(k + 1, 512), BitWidth::B8);
        assert!(matches!(
            deployed.swap_class_memory(wrong),
            Err(ModelError::Incompatible(_))
        ));
    }

    #[test]
    fn with_swapped_memory_matches_in_place_swap_and_shares_the_encoder() {
        let (model, data) = trained();
        let deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let k = deployed.class_count();
        let rotated: Vec<usize> = (0..k).map(|c| (c + 1) % k).collect();
        let permuted = model.class_model().unwrap().classes().select_rows(&rotated);
        let replacement = QuantizedMatrix::quantize(&permuted, BitWidth::B8);

        // Copy-on-write swap: `self` is untouched, the derived generation
        // predicts exactly like an in-place swap on a clone.
        let derived = deployed.with_swapped_memory(replacement.clone()).unwrap();
        let mut swapped = deployed.clone();
        swapped.swap_class_memory(replacement).unwrap();
        for i in 0..data.test.len().min(40) {
            let x = data.test.sample(i);
            assert_eq!(
                derived.predict(x).unwrap(),
                swapped.predict(x).unwrap(),
                "sample {i}"
            );
        }
        // The pre-swap deployment still serves the old memory.
        assert_eq!(
            deployed.accuracy(&data.test).unwrap(),
            DeployedModel::freeze(&model, BitWidth::B8)
                .unwrap()
                .accuracy(&data.test)
                .unwrap()
        );
        // Structural sharing: both generations point at one encoder, so
        // publication costs O(class memory), not O(encoder).
        assert!(Arc::ptr_eq(&deployed.encoder, &derived.encoder));
        assert!(Arc::ptr_eq(&deployed.encoder, &deployed.clone().encoder));
        // Topology changes are rejected, exactly like the in-place swap.
        let wrong = QuantizedMatrix::quantize(&Matrix::zeros(k + 1, 512), BitWidth::B8);
        assert!(matches!(
            deployed.with_swapped_memory(wrong),
            Err(ModelError::Incompatible(_))
        ));
    }

    #[test]
    fn top_k_first_choice_matches_the_classify_path_on_both_pipelines() {
        // Top-k is post-processing of the very scores classify ranks, so
        // rank 0 must equal predict_batch (f32 pipeline) and
        // predict_quantized_batch (integer pipeline) — and k clamps.
        let (model, data) = trained();
        let n = data.test.len().min(40);
        let all: Vec<usize> = (0..n).collect();
        let queries = data.test.features().select_rows(&all);
        for width in [BitWidth::B8, BitWidth::B1] {
            let deployed = DeployedModel::freeze(&model, width).unwrap();
            let k = deployed.class_count();
            let ranked = deployed.top_k_batch(&queries, 2).unwrap();
            let classes = deployed.predict_batch(&queries).unwrap();
            for (r, ranks) in ranked.iter().enumerate() {
                assert_eq!(ranks.len(), 2, "{width}, row {r}");
                assert_eq!(ranks[0], classes[r], "{width}, row {r}");
            }
            let int_ranked = deployed.top_k_quantized_batch(&queries, 2).unwrap();
            let int_classes = deployed.predict_quantized_batch(&queries).unwrap();
            for (r, ranks) in int_ranked.iter().enumerate() {
                assert_eq!(ranks[0], int_classes[r], "{width}, integer row {r}");
            }
            // k beyond the class count clamps to a full ranking.
            let full = deployed.top_k_batch(&queries, k + 10).unwrap();
            assert!(full.iter().all(|ranks| ranks.len() == k));
            // Rankings are batch-composition invariant.
            let solo = deployed.top_k_batch(&queries.select_rows(&[3]), 2).unwrap();
            assert_eq!(solo[0], ranked[3], "{width}: solo vs batched ranking");
        }
        let deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        assert!(deployed.top_k_batch(&queries, 0).is_err());
        assert!(deployed.top_k_quantized_batch(&queries, 0).is_err());
        assert!(deployed
            .top_k_batch(&Matrix::zeros(0, 0), 2)
            .unwrap()
            .is_empty());
    }

    /// Uniform-noise queries with the deployment's arity — off the
    /// training manifold, so they should resemble no class.
    fn noise_queries(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(RngSeed(seed));
        Matrix::from_fn(n, dim, |_, _| rng.next_unit())
    }

    #[test]
    fn anomaly_scores_separate_the_manifold_from_noise_and_calibrate() {
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let n = data.test.len().min(60);
        let all: Vec<usize> = (0..n).collect();
        let inliers = data.test.features().select_rows(&all);
        let outliers = noise_queries(n, data.test.feature_dim(), 0xA70);

        let in_scores = deployed.anomaly_scores(&inliers).unwrap();
        let out_scores = deployed.anomaly_scores(&outliers).unwrap();
        // Scores are genuine cosines.
        for s in in_scores.iter().chain(&out_scores) {
            assert!((-1.001..=1.001).contains(s), "score {s}");
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&in_scores) > mean(&out_scores) + 0.05,
            "inliers {:.3} vs outliers {:.3}",
            mean(&in_scores),
            mean(&out_scores)
        );

        // Youden calibration stores a threshold that actually separates.
        let threshold = deployed
            .calibrate_anomaly_threshold(&inliers, &outliers)
            .unwrap();
        assert_eq!(deployed.tasks().anomaly_threshold, Some(threshold));
        let inlier_pass = in_scores.iter().filter(|&&s| s >= threshold).count();
        let outlier_flagged = out_scores.iter().filter(|&&s| s < threshold).count();
        assert!(
            inlier_pass * 10 >= n * 8,
            "only {inlier_pass}/{n} inliers pass"
        );
        assert!(
            outlier_flagged * 10 >= n * 8,
            "only {outlier_flagged}/{n} outliers flagged"
        );

        // Batch-composition invariance: a solo score equals the batched one.
        let solo = deployed.anomaly_scores(&inliers.select_rows(&[5])).unwrap();
        assert_eq!(solo[0].to_bits(), in_scores[5].to_bits());

        // The integer pipeline agrees directionally (same separation).
        let int_in = deployed.anomaly_scores_quantized(&inliers).unwrap();
        let int_out = deployed.anomaly_scores_quantized(&outliers).unwrap();
        assert!(mean(&int_in) > mean(&int_out) + 0.05);
        let int_solo = deployed
            .anomaly_scores_quantized(&inliers.select_rows(&[5]))
            .unwrap();
        assert_eq!(int_solo[0].to_bits(), int_in[5].to_bits());
    }

    #[test]
    fn task_configuration_validates_and_travels_with_swaps() {
        let (model, _) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        assert!(deployed.tasks().is_empty());
        // k outside 1..=classes is rejected.
        assert!(deployed
            .set_tasks(ServingTasks {
                top_k: Some(0),
                anomaly_threshold: None
            })
            .is_err());
        assert!(deployed
            .set_tasks(ServingTasks {
                top_k: Some(deployed.class_count() + 1),
                anomaly_threshold: None
            })
            .is_err());
        let tasks = ServingTasks {
            top_k: Some(2),
            anomaly_threshold: Some(0.25),
        };
        deployed.set_tasks(tasks).unwrap();
        assert!(!deployed.tasks().is_empty());
        // Hot-swap derivation keeps the configuration.
        let derived = deployed
            .with_swapped_memory(deployed.memory_parts().clone())
            .unwrap();
        assert_eq!(derived.tasks(), tasks);
        assert_eq!(deployed.clone().tasks(), tasks);
        // Calibration rejects empty batches.
        let dim = model.encoder().input_dim();
        assert!(deployed
            .calibrate_anomaly_threshold(&Matrix::zeros(0, dim), &noise_queries(4, dim, 1))
            .is_err());
        assert!(deployed
            .calibrate_anomaly_threshold(&noise_queries(4, dim, 1), &Matrix::zeros(0, dim))
            .is_err());
    }

    #[test]
    fn decision_scores_rank_like_predict() {
        let (model, data) = trained();
        let deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let x = data.test.sample(0);
        let predicted = deployed.predict(x).unwrap();
        let scores = deployed.decision_scores(x).unwrap();
        assert_eq!(disthd_linalg::argsort_descending(&scores)[0], predicted);
    }
}
