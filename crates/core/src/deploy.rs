//! Low-precision deployment of a trained DistHD model.
//!
//! The paper's edge story (§IV-D) stores the class hypervectors at 1–8 bits
//! per dimension.  [`DeployedModel`] freezes a trained [`crate::DistHd`]
//! into that form: the encoder and centering stay in f32 (they run once per
//! query), while the class memory — the part that dominates storage and is
//! exposed to memory faults — lives in a [`QuantizedMatrix`].
//!
//! The deployment keeps the quantized words as the source of truth:
//! [`DeployedModel::inject_faults`] flips bits in place exactly like the
//! Fig. 8 fault model, and inference always reads through a dequantized
//! snapshot, so a faulted deployment behaves like the faulted device would.

use crate::trainer::DistHd;
use disthd_eval::ModelError;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{Encoder, RbfEncoder};
use disthd_hd::noise::flip_random_bits;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_hd::ClassModel;
use disthd_linalg::{Matrix, SeededRng};

/// A trained DistHD model frozen for low-precision edge deployment.
///
/// # Example
///
/// ```
/// use disthd::{DeployedModel, DistHd, DistHdConfig};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
/// use disthd_eval::Classifier;
/// use disthd_hd::quantize::BitWidth;
///
/// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
/// let mut model = DistHd::new(
///     DistHdConfig { dim: 256, epochs: 6, ..Default::default() },
///     data.train.feature_dim(),
///     data.train.class_count(),
/// );
/// model.fit(&data.train, None)?;
/// let mut deployed = DeployedModel::freeze(&model, BitWidth::B1)?;
/// let class = deployed.predict(data.test.sample(0))?;
/// assert!(class < data.test.class_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeployedModel {
    encoder: RbfEncoder,
    center: EncodingCenter,
    memory: QuantizedMatrix,
    /// Dequantized snapshot used for similarity search; refreshed after
    /// fault injection.
    snapshot: ClassModel,
    class_count: usize,
}

impl DeployedModel {
    /// Freezes a trained model at the given storage precision.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] if `model` has not been trained.
    pub fn freeze(model: &DistHd, width: BitWidth) -> Result<Self, ModelError> {
        let class_model = model.class_model().ok_or(ModelError::NotFitted)?;
        let center = model.center().ok_or(ModelError::NotFitted)?.clone();
        let memory = QuantizedMatrix::quantize(class_model.classes(), width);
        let snapshot = ClassModel::from_matrix(memory.dequantize());
        Ok(Self {
            encoder: model.encoder().clone(),
            center,
            memory,
            snapshot,
            class_count: class_model.class_count(),
        })
    }

    /// Storage precision of the class memory.
    pub fn width(&self) -> BitWidth {
        self.memory.width()
    }

    /// Class-memory footprint in bits (the memory the fault model acts on).
    pub fn memory_bits(&self) -> usize {
        self.memory.payload_bits()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Classifies one feature vector.
    ///
    /// # Errors
    ///
    /// Returns a shape error for a wrong-length input.
    pub fn predict(&mut self, features: &[f32]) -> Result<usize, ModelError> {
        let mut encoded = self.encoder.encode(features)?;
        self.center.apply(&mut encoded);
        Ok(self.snapshot.predict(&encoded))
    }

    /// Classifies a whole batch of feature vectors (one per row) through
    /// the fused encode GEMM and one batched similarity GEMM.
    ///
    /// This is the entry point the serving layer's request-batching engine
    /// coalesces queries into: per query it costs a slice of two large
    /// matrix products instead of a full streaming pass over the base and
    /// class matrices, which is where batched serving's throughput
    /// advantage comes from.  Because every row is computed independently
    /// by the deterministic backend, a query's prediction is bit-identical
    /// whether it is served alone or inside any batch.
    ///
    /// # Example
    ///
    /// ```
    /// use disthd::{DeployedModel, DistHd, DistHdConfig};
    /// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    /// use disthd_eval::Classifier;
    /// use disthd_hd::quantize::BitWidth;
    /// use disthd_linalg::Matrix;
    ///
    /// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
    /// let mut model = DistHd::new(
    ///     DistHdConfig { dim: 256, epochs: 6, ..Default::default() },
    ///     data.train.feature_dim(),
    ///     data.train.class_count(),
    /// );
    /// model.fit(&data.train, None)?;
    /// let mut deployed = DeployedModel::freeze(&model, BitWidth::B8)?;
    /// let queries = Matrix::from_row_slices(
    ///     data.test.feature_dim(),
    ///     &[data.test.sample(0), data.test.sample(1)],
    /// )?;
    /// let batched = deployed.predict_batch(&queries)?;
    /// // A batch of one is the same computation, so predictions agree.
    /// let solo = deployed.predict_batch(&queries.select_rows(&[0]))?;
    /// assert_eq!(batched[0], solo[0]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a shape error if `queries.cols()` differs from the
    /// encoder's input arity.
    pub fn predict_batch(&mut self, queries: &Matrix) -> Result<Vec<usize>, ModelError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        let mut encoded = self.encoder.encode_batch(queries)?;
        self.center.apply_batch(&mut encoded);
        Ok(self.snapshot.predict_batch(&encoded)?)
    }

    /// Hot-swaps the quantized class memory, e.g. with a freshly
    /// requantized model produced by [`crate::DistHd::partial_fit`], and
    /// refreshes the inference snapshot.
    ///
    /// The encoder and centering are untouched: online adaptive updates
    /// keep the encoder frozen between regeneration events, so the class
    /// memory is the only part of the deployment that needs to move for a
    /// live model refresh.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] if the replacement's shape
    /// differs from the current memory — a swap may change weights, never
    /// topology.
    pub fn swap_class_memory(&mut self, memory: QuantizedMatrix) -> Result<(), ModelError> {
        if memory.shape() != self.memory.shape() {
            return Err(ModelError::Incompatible(format!(
                "class memory shape {:?} cannot replace {:?}",
                memory.shape(),
                self.memory.shape()
            )));
        }
        self.snapshot.set_classes(memory.dequantize());
        self.snapshot.prepare_inference();
        self.memory = memory;
        Ok(())
    }

    /// Per-class similarity scores for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns a shape error for a wrong-length input.
    pub fn decision_scores(&mut self, features: &[f32]) -> Result<Vec<f32>, ModelError> {
        let mut encoded = self.encoder.encode(features)?;
        self.center.apply(&mut encoded);
        Ok(self.snapshot.similarities(&encoded)?)
    }

    /// Accuracy over a dataset.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn accuracy(&mut self, data: &disthd_datasets::Dataset) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for i in 0..data.len() {
            if self.predict(data.sample(i))? == data.label(i) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Reassembles a deployment from persisted parts (see [`crate::io`]).
    pub fn from_parts(
        encoder: RbfEncoder,
        center: EncodingCenter,
        memory: QuantizedMatrix,
    ) -> Self {
        let snapshot = ClassModel::from_matrix(memory.dequantize());
        let class_count = snapshot.class_count();
        Self {
            encoder,
            center,
            memory,
            snapshot,
            class_count,
        }
    }

    /// Borrows the encoder (persistence access).
    pub fn encoder_parts(&self) -> &RbfEncoder {
        &self.encoder
    }

    /// Borrows the centering means (persistence access).
    pub fn center_parts(&self) -> &EncodingCenter {
        &self.center
    }

    /// Borrows the quantized class memory (persistence access).
    pub fn memory_parts(&self) -> &QuantizedMatrix {
        &self.memory
    }

    /// Flips `round(rate * memory_bits())` random bits of the stored class
    /// memory (the Fig. 8 fault model) and refreshes the inference
    /// snapshot.  Returns the number of bits flipped.
    pub fn inject_faults(&mut self, rate: f64, rng: &mut SeededRng) -> usize {
        let flipped = flip_random_bits(&mut self.memory, rate, rng);
        self.snapshot = ClassModel::from_matrix(self.memory.dequantize());
        flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistHdConfig;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    use disthd_eval::Classifier;
    use disthd_linalg::RngSeed;

    fn trained() -> (DistHd, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 512,
                epochs: 10,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (model, data)
    }

    #[test]
    fn freeze_requires_fitted_model() {
        let model = DistHd::new(
            DistHdConfig {
                dim: 64,
                ..Default::default()
            },
            4,
            3,
        );
        assert!(matches!(
            DeployedModel::freeze(&model, BitWidth::B8),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn eight_bit_deployment_matches_f32_closely() {
        let (mut model, data) = trained();
        let f32_acc = model.accuracy(&data.test).unwrap();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let deployed_acc = deployed.accuracy(&data.test).unwrap();
        assert!(
            (f32_acc - deployed_acc).abs() < 0.05,
            "f32 {f32_acc:.3} vs 8-bit {deployed_acc:.3}"
        );
    }

    #[test]
    fn memory_bits_scale_with_width() {
        let (model, _) = trained();
        let b1 = DeployedModel::freeze(&model, BitWidth::B1).unwrap();
        let b8 = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        assert_eq!(b8.memory_bits(), 8 * b1.memory_bits());
        assert_eq!(b1.width(), BitWidth::B1);
        assert_eq!(b1.class_count(), 3);
    }

    #[test]
    fn fault_injection_flips_requested_fraction() {
        let (model, _) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B4).unwrap();
        let mut rng = SeededRng::new(RngSeed(5));
        let flipped = deployed.inject_faults(0.10, &mut rng);
        assert_eq!(
            flipped,
            (deployed.memory_bits() as f64 * 0.10).round() as usize
        );
    }

    #[test]
    fn faulted_deployment_still_classifies_above_chance() {
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B1).unwrap();
        let mut rng = SeededRng::new(RngSeed(6));
        deployed.inject_faults(0.05, &mut rng);
        let acc = deployed.accuracy(&data.test).unwrap();
        assert!(acc > 1.0 / 3.0, "faulted accuracy {acc}");
    }

    #[test]
    fn predict_batch_is_invariant_to_batch_composition() {
        // The serving engine relies on this: a query's prediction must not
        // depend on which other queries happen to share its batch.
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let n = data.test.len().min(40);
        let all: Vec<usize> = (0..n).collect();
        let batched = deployed
            .predict_batch(&data.test.features().select_rows(&all))
            .unwrap();
        for (i, &expected) in batched.iter().enumerate() {
            let solo = deployed
                .predict_batch(&data.test.features().select_rows(&[i]))
                .unwrap();
            assert_eq!(solo[0], expected, "sample {i}");
        }
    }

    #[test]
    fn predict_batch_checks_shapes_and_handles_empty() {
        let (model, _) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B4).unwrap();
        assert!(deployed.predict_batch(&Matrix::zeros(2, 3)).is_err());
        assert!(deployed
            .predict_batch(&Matrix::zeros(0, 0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn swap_class_memory_changes_predictions_and_rejects_reshape() {
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let before = deployed.accuracy(&data.test).unwrap();
        // Swapping in a permuted class memory must change behaviour.
        let k = deployed.class_count();
        let rotated: Vec<usize> = (0..k).map(|c| (c + 1) % k).collect();
        let permuted = model.class_model().unwrap().classes().select_rows(&rotated);
        deployed
            .swap_class_memory(QuantizedMatrix::quantize(&permuted, BitWidth::B8))
            .unwrap();
        let after = deployed.accuracy(&data.test).unwrap();
        assert!(after < before, "permuted memory should hurt: {after}");
        // Swapping the original back restores the original accuracy.
        let restore =
            QuantizedMatrix::quantize(model.class_model().unwrap().classes(), BitWidth::B8);
        deployed.swap_class_memory(restore).unwrap();
        assert_eq!(deployed.accuracy(&data.test).unwrap(), before);
        // Topology changes are rejected.
        let wrong = QuantizedMatrix::quantize(&Matrix::zeros(k + 1, 512), BitWidth::B8);
        assert!(matches!(
            deployed.swap_class_memory(wrong),
            Err(ModelError::Incompatible(_))
        ));
    }

    #[test]
    fn decision_scores_rank_like_predict() {
        let (model, data) = trained();
        let mut deployed = DeployedModel::freeze(&model, BitWidth::B8).unwrap();
        let x = data.test.sample(0);
        let predicted = deployed.predict(x).unwrap();
        let scores = deployed.decision_scores(x).unwrap();
        assert_eq!(disthd_linalg::argsort_descending(&scores)[0], predicted);
    }
}
