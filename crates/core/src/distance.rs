//! Undesired-dimension identification (Algorithm 2).
//!
//! For every sample the top-2 pass marked *partially correct* or
//! *incorrect*, we score each dimension by how strongly it pulls the sample
//! toward the wrong classes and away from the true one:
//!
//! ```text
//! partial:   M_row = α·|Ĥ − Ĉ_true| − β·|Ĥ − Ĉ_pred1|
//! incorrect: N_row = α·|Ĥ − Ĉ_true| − β·|Ĥ − Ĉ_pred1| − θ·|Ĥ − Ĉ_pred2|
//! ```
//!
//! (absolute differences element-wise; `Ĥ`, `Ĉ` are L2-normalized so the
//! per-dimension distances compare directions, not accumulated magnitudes).
//! A **large** entry marks a dimension far from the truth and close to the
//! wrong class — the β/θ subtraction spares dimensions that are close to
//! *both*, i.e. store information shared across classes.
//!
//! Rows are min–max normalized, summed column-wise into `M'` and `N'`, and
//! the paper drops only dimensions in the **intersection** of the top-`R%`
//! of both, avoiding over-elimination.
//!
//! The published pseudocode's sign conventions for `N` conflict with the
//! prose; this module follows the prose semantics (see `DESIGN.md` §3).

use crate::config::WeightParams;
use crate::top2::Top2Outcome;
use disthd_linalg::{normalize_l2_in_place, Matrix};

/// The reduced distance vectors and the selected dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionScores {
    /// Column-reduced partial-mistake scores `M'` (empty if no partial
    /// samples).
    pub m_reduced: Vec<f32>,
    /// Column-reduced incorrect-mistake scores `N'` (empty if no incorrect
    /// samples).
    pub n_reduced: Vec<f32>,
    /// Dimensions selected to drop and regenerate.
    pub undesired: Vec<usize>,
}

/// Runs Algorithm 2: selects the undesired dimensions for one iteration.
///
/// `encoded` holds the batch hypervectors (one per row), `outcomes` the
/// top-2 categorization of each row, `classes` the current class matrix,
/// `regen_rate` the paper's `R` as a fraction.
///
/// When only one of the two mistake categories occurred this iteration, the
/// selection falls back to that category's top set alone (the intersection
/// with an undefined set would always be empty and regeneration would
/// starve); when neither occurred, no dimensions are selected.
///
/// # Panics
///
/// Panics if `outcomes.len() != encoded.rows()` or any recorded class index
/// is out of range.
pub fn select_undesired_dims(
    encoded: &Matrix,
    labels: &[usize],
    outcomes: &[Top2Outcome],
    classes: &Matrix,
    weights: &WeightParams,
    regen_rate: f64,
) -> DimensionScores {
    assert_eq!(outcomes.len(), encoded.rows(), "outcomes/sample mismatch");
    assert_eq!(labels.len(), encoded.rows(), "labels/sample mismatch");
    let dim = encoded.cols();

    // L2-normalize every class row once up front (O(k·D), negligible next
    // to the per-mistake row construction).
    let normalized_classes = disthd_hd::cosine_similarity_matrix(classes);

    // Pre-size the mistake matrices from the outcome counts and write rows
    // in place: no `push_row` reallocation growth, and one scratch buffer
    // serves every row's L2 normalization.
    let partial_count = outcomes
        .iter()
        .filter(|o| matches!(o, Top2Outcome::Partial { .. }))
        .count();
    let incorrect_count = outcomes
        .iter()
        .filter(|o| matches!(o, Top2Outcome::Incorrect { .. }))
        .count();
    let mut m_rows = Matrix::zeros(partial_count, dim);
    let mut n_rows = Matrix::zeros(incorrect_count, dim);
    let mut h = vec![0.0f32; dim];
    let (mut m_next, mut n_next) = (0usize, 0usize);
    for (i, outcome) in outcomes.iter().enumerate() {
        match *outcome {
            Top2Outcome::Correct => {}
            Top2Outcome::Partial { predicted } => {
                h.copy_from_slice(encoded.row(i));
                normalize_l2_in_place(&mut h);
                let true_c = normalized_classes.row(labels[i]);
                let pred_c = normalized_classes.row(predicted);
                let row = m_rows.row_mut(m_next);
                m_next += 1;
                for (((slot, &hv), &tc), &pc) in row.iter_mut().zip(&h).zip(true_c).zip(pred_c) {
                    *slot = weights.alpha * (hv - tc).abs() - weights.beta * (hv - pc).abs();
                }
            }
            Top2Outcome::Incorrect { first, second } => {
                h.copy_from_slice(encoded.row(i));
                normalize_l2_in_place(&mut h);
                let true_c = normalized_classes.row(labels[i]);
                let first_c = normalized_classes.row(first);
                let second_c = normalized_classes.row(second);
                let row = n_rows.row_mut(n_next);
                n_next += 1;
                for ((((slot, &hv), &tc), &fc), &sc) in row
                    .iter_mut()
                    .zip(&h)
                    .zip(true_c)
                    .zip(first_c)
                    .zip(second_c)
                {
                    *slot = weights.alpha * (hv - tc).abs()
                        - weights.beta * (hv - fc).abs()
                        - weights.theta * (hv - sc).abs();
                }
            }
        }
    }

    let m_reduced = reduce(&mut m_rows);
    let n_reduced = reduce(&mut n_rows);
    let take = ((dim as f64) * regen_rate).round() as usize;

    let undesired = match (m_reduced.is_empty(), n_reduced.is_empty()) {
        (true, true) => Vec::new(),
        (false, true) => top_set(&m_reduced, take),
        (true, false) => top_set(&n_reduced, take),
        (false, false) => {
            let m_top = top_set(&m_reduced, take);
            let n_top: std::collections::HashSet<usize> =
                top_set(&n_reduced, take).into_iter().collect();
            let mut both: Vec<usize> = m_top.into_iter().filter(|d| n_top.contains(d)).collect();
            both.sort_unstable();
            both
        }
    };

    DimensionScores {
        m_reduced,
        n_reduced,
        undesired,
    }
}

/// Min–max normalizes each row, then sums column-wise.
fn reduce(rows: &mut Matrix) -> Vec<f32> {
    if rows.rows() == 0 {
        return Vec::new();
    }
    for r in 0..rows.rows() {
        disthd_linalg::normalize_min_max_in_place(rows.row_mut(r));
    }
    disthd_linalg::column_sums(rows)
}

/// Indices of the `k` largest values, sorted ascending for deterministic
/// downstream use.
fn top_set(values: &[f32], k: usize) -> Vec<usize> {
    let mut set = disthd_linalg::top_k_largest(values, k);
    set.sort_unstable();
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-class, 4-dim setup where dimension 3 is engineered to be
    /// misleading: the sample's dim 3 agrees with the wrong class and
    /// disagrees with the true class.
    fn engineered_case() -> (Matrix, Vec<usize>, Vec<Top2Outcome>, Matrix) {
        // Class 0 (true): strong in dims 0,1; class 1 (wrong): strong in 2,3.
        let classes =
            Matrix::from_rows(&[vec![1.0, 1.0, 0.0, -1.0], vec![0.0, 0.0, 1.0, 1.0]]).unwrap();
        // The sample mostly matches class 0 but its dim 3 looks like class 1.
        let encoded = Matrix::from_rows(&[vec![1.0, 1.0, 0.0, 1.0]]).unwrap();
        let labels = vec![0usize];
        let outcomes = vec![Top2Outcome::Partial { predicted: 1 }];
        (encoded, labels, outcomes, classes)
    }

    #[test]
    fn misleading_dimension_scores_highest_in_m() {
        let (encoded, labels, outcomes, classes) = engineered_case();
        let scores = select_undesired_dims(
            &encoded,
            &labels,
            &outcomes,
            &classes,
            &WeightParams::default(),
            0.25,
        );
        assert_eq!(scores.m_reduced.len(), 4);
        let argmax = disthd_linalg::argsort_descending(&scores.m_reduced)[0];
        assert_eq!(
            argmax, 3,
            "dim 3 should be the most undesired: {:?}",
            scores.m_reduced
        );
        // With only partial mistakes, the fallback selects from M alone.
        assert_eq!(scores.undesired, vec![3]);
    }

    #[test]
    fn correct_samples_contribute_nothing() {
        let classes = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let encoded = Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let scores = select_undesired_dims(
            &encoded,
            &[0],
            &[Top2Outcome::Correct],
            &classes,
            &WeightParams::default(),
            0.5,
        );
        assert!(scores.m_reduced.is_empty());
        assert!(scores.n_reduced.is_empty());
        assert!(scores.undesired.is_empty());
    }

    #[test]
    fn intersection_requires_agreement_of_m_and_n() {
        // Build a case with one partial and one incorrect sample over 3
        // classes / 4 dims; the intersection can only contain dims in both
        // top sets.
        let classes = Matrix::from_rows(&[
            vec![1.0, 1.0, -1.0, -1.0],
            vec![-1.0, 1.0, 1.0, -1.0],
            vec![-1.0, -1.0, 1.0, 1.0],
        ])
        .unwrap();
        let encoded =
            Matrix::from_rows(&[vec![1.0, 1.0, 1.0, -1.0], vec![-1.0, 1.0, 1.0, 1.0]]).unwrap();
        let labels = vec![0usize, 0];
        let outcomes = vec![
            Top2Outcome::Partial { predicted: 1 },
            Top2Outcome::Incorrect {
                first: 1,
                second: 2,
            },
        ];
        let scores = select_undesired_dims(
            &encoded,
            &labels,
            &outcomes,
            &classes,
            &WeightParams::default(),
            0.5,
        );
        let m_top: std::collections::HashSet<usize> =
            disthd_linalg::top_k_largest(&scores.m_reduced, 2)
                .into_iter()
                .collect();
        let n_top: std::collections::HashSet<usize> =
            disthd_linalg::top_k_largest(&scores.n_reduced, 2)
                .into_iter()
                .collect();
        for d in &scores.undesired {
            assert!(m_top.contains(d) && n_top.contains(d));
        }
    }

    #[test]
    fn intersection_is_sorted_and_stable_across_runs() {
        // Regression guard: the top-R% intersection must come back in
        // ascending dimension order, identically on every invocation —
        // never in `HashSet` iteration order, which can vary and would make
        // the downstream regeneration (RNG consumption order!) seed-unstable.
        let classes = Matrix::from_rows(&[
            vec![1.0, 1.0, -1.0, -1.0, 0.5, -0.5],
            vec![-1.0, 1.0, 1.0, -1.0, -0.5, 0.5],
            vec![-1.0, -1.0, 1.0, 1.0, 0.5, 0.5],
        ])
        .unwrap();
        let encoded = Matrix::from_rows(&[
            vec![1.0, 1.0, 1.0, -1.0, 0.4, 0.1],
            vec![-1.0, 1.0, 1.0, 1.0, -0.2, 0.6],
            vec![1.0, -1.0, 1.0, 1.0, 0.3, -0.6],
        ])
        .unwrap();
        let labels = vec![0usize, 0, 1];
        let outcomes = vec![
            Top2Outcome::Partial { predicted: 1 },
            Top2Outcome::Incorrect {
                first: 1,
                second: 2,
            },
            Top2Outcome::Incorrect {
                first: 2,
                second: 0,
            },
        ];
        let reference = select_undesired_dims(
            &encoded,
            &labels,
            &outcomes,
            &classes,
            &WeightParams::default(),
            0.67,
        );
        assert!(
            reference.undesired.windows(2).all(|w| w[0] < w[1]),
            "selection must be strictly ascending: {:?}",
            reference.undesired
        );
        for _ in 0..10 {
            let again = select_undesired_dims(
                &encoded,
                &labels,
                &outcomes,
                &classes,
                &WeightParams::default(),
                0.67,
            );
            assert_eq!(again, reference);
        }
    }

    #[test]
    fn regen_rate_bounds_selection_size() {
        let (encoded, labels, outcomes, classes) = engineered_case();
        for rate in [0.25, 0.5, 1.0] {
            let scores = select_undesired_dims(
                &encoded,
                &labels,
                &outcomes,
                &classes,
                &WeightParams::default(),
                rate,
            );
            assert!(scores.undesired.len() <= (4.0 * rate).round() as usize);
        }
    }

    #[test]
    fn zero_rate_selects_nothing() {
        let (encoded, labels, outcomes, classes) = engineered_case();
        let scores = select_undesired_dims(
            &encoded,
            &labels,
            &outcomes,
            &classes,
            &WeightParams::default(),
            0.0,
        );
        assert!(scores.undesired.is_empty());
    }

    #[test]
    fn larger_beta_spares_shared_dimensions() {
        // Dim 1 is equally close to both classes (shared information);
        // a large beta should push its score down relative to dim 3.
        let (encoded, labels, outcomes, classes) = engineered_case();
        let sensitive = select_undesired_dims(
            &encoded,
            &labels,
            &outcomes,
            &classes,
            &WeightParams::new(2.0, 0.5, 0.1),
            1.0,
        );
        let specific = select_undesired_dims(
            &encoded,
            &labels,
            &outcomes,
            &classes,
            &WeightParams::new(0.5, 2.0, 0.1),
            1.0,
        );
        // Both runs produce full-rate selections, but the *scores* change:
        // the specific run must penalize closeness-to-wrong-class more.
        assert_ne!(sensitive.m_reduced, specific.m_reduced);
    }

    #[test]
    #[should_panic(expected = "outcomes/sample mismatch")]
    fn outcome_count_checked() {
        let (encoded, labels, _, classes) = engineered_case();
        select_undesired_dims(
            &encoded,
            &labels,
            &[],
            &classes,
            &WeightParams::default(),
            0.1,
        );
    }
}
