//! Binary persistence of deployed models.
//!
//! A [`crate::DeployedModel`] is the artifact that ships to an edge device:
//! the f32 encoder (bases + phases), the per-dimension centering means and
//! the quantized class memory.  This module writes and reads a compact,
//! versioned little-endian binary format:
//!
//! ```text
//! magic  "DHD1"            4 bytes
//! n (features)             u32    D (dims)    u32    k (classes)   u32
//! width bits               u32    base_std    f32
//! bases                    n*D f32 (row-major)
//! phases                   D f32
//! center means             D f32
//! memory scales            k f32
//! memory word count        u32
//! memory words             count u64
//! ```

use crate::deploy::DeployedModel;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::RbfEncoder;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"DHD1";

/// Errors produced while persisting or loading a deployed model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the expected magic/version.
    BadMagic,
    /// A field failed validation (corrupt or truncated stream).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a DHD1 model stream"),
            PersistError::Corrupt(msg) => write!(f, "corrupt model stream: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a deployed model to `writer` (pass `&mut` for reuse).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn save_deployed<W: Write>(model: &DeployedModel, mut writer: W) -> Result<(), PersistError> {
    let encoder = model.encoder_parts();
    let (rows, cols) = model.memory_parts().shape();
    writer.write_all(MAGIC)?;
    write_u32(&mut writer, encoder.bases().rows() as u32)?;
    write_u32(&mut writer, cols as u32)?;
    write_u32(&mut writer, rows as u32)?;
    write_u32(&mut writer, model.width().bits() as u32)?;
    write_f32(&mut writer, encoder.base_std())?;
    write_f32_slice(&mut writer, encoder.bases().as_slice())?;
    write_f32_slice(&mut writer, encoder.phases())?;
    write_f32_slice(&mut writer, model.center_parts().means())?;
    write_f32_slice(&mut writer, model.memory_parts().scales())?;
    let words = model.memory_parts().as_words();
    write_u32(&mut writer, words.len() as u32)?;
    for &w in words {
        writer.write_all(&w.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a deployed model from `reader` (pass `&mut` for reuse).
///
/// # Errors
///
/// * [`PersistError::BadMagic`] if the stream is not a `DHD1` model;
/// * [`PersistError::Corrupt`] on inconsistent sizes;
/// * [`PersistError::Io`] on read failure.
pub fn load_deployed<R: Read>(mut reader: R) -> Result<DeployedModel, PersistError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let n = read_u32(&mut reader)? as usize;
    let dim = read_u32(&mut reader)? as usize;
    let k = read_u32(&mut reader)? as usize;
    let bits = read_u32(&mut reader)? as usize;
    let width = BitWidth::from_bits(bits)
        .ok_or_else(|| PersistError::Corrupt(format!("unsupported width {bits}")))?;
    let base_std = read_f32(&mut reader)?;
    if n == 0 || dim == 0 || k == 0 {
        return Err(PersistError::Corrupt("zero-sized model".into()));
    }

    let bases = read_f32_vec(&mut reader, n * dim)?;
    let phases = read_f32_vec(&mut reader, dim)?;
    let means = read_f32_vec(&mut reader, dim)?;
    let scales = read_f32_vec(&mut reader, k)?;
    let word_count = read_u32(&mut reader)? as usize;
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        words.push(u64::from_le_bytes(buf));
    }

    let bases =
        Matrix::from_vec(n, dim, bases).map_err(|e| PersistError::Corrupt(e.to_string()))?;
    let encoder = RbfEncoder::from_parts(bases, phases, base_std)
        .map_err(|e| PersistError::Corrupt(e.to_string()))?;
    let center = EncodingCenter::from_means(means);
    let memory = QuantizedMatrix::from_parts(words, scales, width, k, dim)
        .map_err(|e| PersistError::Corrupt(e.to_string()))?;
    Ok(DeployedModel::from_parts(encoder, center, memory))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32_slice<W: Write>(w: &mut W, values: &[f32]) -> std::io::Result<()> {
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R) -> std::io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

fn read_f32_vec<R: Read>(r: &mut R, count: usize) -> std::io::Result<Vec<f32>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistHd, DistHdConfig};
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    use disthd_eval::Classifier;

    fn deployed() -> (DeployedModel, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 256,
                epochs: 8,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (DeployedModel::freeze(&model, BitWidth::B4).unwrap(), data)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (mut original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let mut restored = load_deployed(buffer.as_slice()).unwrap();
        for i in 0..data.test.len().min(50) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
        assert_eq!(original.width(), restored.width());
        assert_eq!(original.memory_bits(), restored.memory_bits());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_deployed(&b"NOPE............"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        assert!(load_deployed(buffer.as_slice()).is_err());
    }

    #[test]
    fn unsupported_width_is_corrupt() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(MAGIC);
        for v in [4u32, 8, 2, 3] {
            buffer.extend_from_slice(&v.to_le_bytes()); // width bits = 3: invalid
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
    }

    #[test]
    fn persist_error_display() {
        assert!(PersistError::BadMagic.to_string().contains("DHD1"));
        assert!(PersistError::Corrupt("x".into()).to_string().contains('x'));
    }
}
