//! Binary persistence of deployed models.
//!
//! A [`crate::DeployedModel`] is the artifact that ships to an edge device:
//! the f32 encoder, the per-dimension centering means and the quantized
//! class memory.  This module writes and reads a compact, versioned
//! little-endian binary format.  Version `'1'` is the dense-encoder layout:
//!
//! ```text
//! magic  "DHD" + version   4 bytes (version is the ASCII digit '1')
//! n (features)             u32    D (dims)    u32    k (classes)   u32
//! width bits               u32    base_std    f32
//! bases                    n*D f32 (row-major)
//! phases                   D f32
//! center means             D f32
//! memory scales            k f32
//! memory word count        u32
//! memory words             count u64
//! ```
//!
//! Version `'2'` adds an **encoder-kind byte** right after the magic so a
//! deployment can carry either RBF backend; kind `0` (dense) is followed by
//! the version-1 payload verbatim, kind `1` (structured) replaces the base
//! matrix with the Walsh–Hadamard construction's parts:
//!
//! ```text
//! magic  "DHD" + '2'       4 bytes
//! encoder kind             u8  (0 = dense, 1 = structured)
//! n, D, k, width bits      u32 each      base_std  f32
//! -- structured kind only --
//! block dim                u32 (padded FHT length, n.next_power_of_two())
//! sign word count          u32
//! sign words               count u64 (packed ±1 diagonals, bit = +1)
//! phases                   D f32
//! overlay count m          u32
//! overlay dims             m u32
//! overlay bases            m*n f32 (row-major, one base row per dim)
//! -- shared tail --
//! center means             D f32
//! memory scales            k f32
//! memory word count        u32
//! memory words             count u64
//! ```
//!
//! ## Format evolution
//!
//! The fourth magic byte is the **format version**.  Readers accept exactly
//! the versions they know: a stream that starts with `DHD` but carries an
//! unknown version digit fails with [`PersistError::UnsupportedVersion`] —
//! distinct from [`PersistError::BadMagic`] (not a DHD stream at all) so
//! callers can tell "newer than me" from "garbage".  Dense deployments are
//! still **written** as version `'1'`, so pre-structured readers keep
//! loading every dense artifact this writer produces; only structured
//! deployments need the `'2'` stream.  See `DESIGN.md` §6/§8 for the full
//! compatibility rules.  Every deserialization failure names the offending
//! field.

use crate::deploy::DeployedModel;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{AnyRbfEncoder, Encoder, RbfEncoder, StructuredRbfEncoder};
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// First three magic bytes shared by every DHD format version.
const MAGIC_PREFIX: &[u8; 3] = b"DHD";
/// Pre-allocation cap (elements) while deserializing: header counts are
/// untrusted, so a forged size must not drive a giant upfront allocation —
/// the vectors grow only as real payload bytes actually arrive, and a
/// truncated stream fails with a named short-read error instead.
const MAX_PREALLOC: usize = 1 << 20;
/// Dense-encoder format version (the original layout, still written for
/// dense deployments).
const VERSION_DENSE: u8 = b'1';
/// Encoder-kind-dispatched format version (structured deployments).
const VERSION_KINDED: u8 = b'2';
/// Encoder-kind byte: dense RBF encoder (version-1 payload follows).
const ENCODER_KIND_DENSE: u8 = 0;
/// Encoder-kind byte: structured Walsh–Hadamard RBF encoder.
const ENCODER_KIND_STRUCTURED: u8 = 1;

/// Errors produced while persisting or loading a deployed model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the `DHD` magic at all.
    BadMagic,
    /// The stream is a DHD model, but of a format version this reader does
    /// not understand (the byte is the raw version tag from the stream).
    UnsupportedVersion(u8),
    /// A field failed validation (corrupt or truncated stream); the message
    /// names the offending field.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a DHD1 model stream (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(
                f,
                "unsupported DHD format version {:?} (this reader understands versions {:?}–{:?})",
                char::from(*v),
                char::from(VERSION_DENSE),
                char::from(VERSION_KINDED)
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt model stream: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a deployed model to `writer` (pass `&mut` for reuse).
///
/// Dense-encoder deployments are written as format version `'1'`
/// (byte-compatible with pre-structured readers); structured-encoder
/// deployments need the encoder-kind dispatch and are written as `'2'`.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn save_deployed<W: Write>(model: &DeployedModel, mut writer: W) -> Result<(), PersistError> {
    let (rows, cols) = model.memory_parts().shape();
    let write_dims = |writer: &mut W, n: usize| -> Result<(), PersistError> {
        write_u32(writer, n as u32)?;
        write_u32(writer, cols as u32)?;
        write_u32(writer, rows as u32)?;
        write_u32(writer, model.width().bits() as u32)?;
        write_f32(writer, model.encoder_parts().base_std())?;
        Ok(())
    };
    match model.encoder_parts() {
        AnyRbfEncoder::Dense(encoder) => {
            writer.write_all(MAGIC_PREFIX)?;
            writer.write_all(&[VERSION_DENSE])?;
            write_dims(&mut writer, encoder.bases().rows())?;
            write_f32_slice(&mut writer, encoder.bases().as_slice())?;
            write_f32_slice(&mut writer, encoder.phases())?;
        }
        AnyRbfEncoder::Structured(encoder) => {
            writer.write_all(MAGIC_PREFIX)?;
            writer.write_all(&[VERSION_KINDED])?;
            writer.write_all(&[ENCODER_KIND_STRUCTURED])?;
            write_dims(&mut writer, encoder.input_dim())?;
            write_u32(&mut writer, encoder.block_dim() as u32)?;
            let sign_words = encoder.packed_signs();
            write_u32(&mut writer, sign_words.len() as u32)?;
            for &w in &sign_words {
                writer.write_all(&w.to_le_bytes())?;
            }
            write_f32_slice(&mut writer, encoder.phases())?;
            write_u32(&mut writer, encoder.overlay_dims().len() as u32)?;
            for &d in encoder.overlay_dims() {
                write_u32(&mut writer, d as u32)?;
            }
            write_f32_slice(&mut writer, encoder.overlay_rows().as_slice())?;
        }
    }
    write_f32_slice(&mut writer, model.center_parts().means())?;
    write_f32_slice(&mut writer, model.memory_parts().scales())?;
    let words = model.memory_parts().as_words();
    write_u32(&mut writer, words.len() as u32)?;
    for &w in words {
        writer.write_all(&w.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// The `n / D / k / width / base_std` header shared by every layout.
struct Header {
    n: usize,
    dim: usize,
    k: usize,
    bits: usize,
    width: BitWidth,
    base_std: f32,
}

/// Reads and validates the shared dimension header.
fn read_header<R: Read>(reader: &mut R) -> Result<Header, PersistError> {
    let n = read_u32(reader, "feature count n")? as usize;
    let dim = read_u32(reader, "dimensionality D")? as usize;
    let k = read_u32(reader, "class count k")? as usize;
    let bits = read_u32(reader, "width bits")? as usize;
    let width = BitWidth::from_bits(bits)
        .ok_or_else(|| PersistError::Corrupt(format!("field `width bits`: unsupported {bits}")))?;
    let base_std = read_f32(reader, "base_std")?;
    for (value, field) in [
        (n, "feature count n"),
        (dim, "dimensionality D"),
        (k, "class count k"),
    ] {
        if value == 0 {
            return Err(PersistError::Corrupt(format!("field `{field}` is zero")));
        }
    }
    Ok(Header {
        n,
        dim,
        k,
        bits,
        width,
        base_std,
    })
}

/// Reads a deployed model from `reader` (pass `&mut` for reuse).
///
/// # Errors
///
/// * [`PersistError::BadMagic`] if the stream is not a `DHD` model;
/// * [`PersistError::UnsupportedVersion`] for a DHD stream of a newer
///   (or otherwise unknown) format version;
/// * [`PersistError::Corrupt`] on inconsistent sizes, truncation or an
///   unknown encoder kind, naming the offending field;
/// * [`PersistError::Io`] on read failure.
pub fn load_deployed<R: Read>(mut reader: R) -> Result<DeployedModel, PersistError> {
    let mut magic = [0u8; 4];
    read_field_bytes(&mut reader, &mut magic, "magic")?;
    if &magic[..3] != MAGIC_PREFIX {
        return Err(PersistError::BadMagic);
    }
    match magic[3] {
        VERSION_DENSE => load_dense_body(&mut reader),
        VERSION_KINDED => {
            let mut kind = [0u8; 1];
            read_field_bytes(&mut reader, &mut kind, "encoder kind")?;
            match kind[0] {
                ENCODER_KIND_DENSE => load_dense_body(&mut reader),
                ENCODER_KIND_STRUCTURED => load_structured_body(&mut reader),
                other => Err(PersistError::Corrupt(format!(
                    "field `encoder kind`: unknown kind {other}"
                ))),
            }
        }
        version => Err(PersistError::UnsupportedVersion(version)),
    }
}

/// Reads the dense-encoder payload (everything after the magic / kind
/// dispatch) — the version-1 layout.
fn load_dense_body<R: Read>(reader: &mut R) -> Result<DeployedModel, PersistError> {
    let header = read_header(reader)?;
    let bases_len = header.n.checked_mul(header.dim).ok_or_else(|| {
        PersistError::Corrupt("field `bases`: n * D overflows the address space".into())
    })?;
    let bases = read_f32_vec(reader, bases_len, "bases")?;
    let phases = read_f32_vec(reader, header.dim, "phases")?;
    let bases = Matrix::from_vec(header.n, header.dim, bases)
        .map_err(|e| PersistError::Corrupt(format!("field `bases`: {e}")))?;
    let encoder = RbfEncoder::from_parts(bases, phases, header.base_std)
        .map_err(|e| PersistError::Corrupt(format!("field `phases`: {e}")))?;
    load_shared_tail(reader, header, AnyRbfEncoder::Dense(encoder))
}

/// Reads the structured-encoder payload (version-2, kind 1).
fn load_structured_body<R: Read>(reader: &mut R) -> Result<DeployedModel, PersistError> {
    let header = read_header(reader)?;
    let block_dim = read_u32(reader, "block dim")? as usize;
    if block_dim != header.n.next_power_of_two() {
        return Err(PersistError::Corrupt(format!(
            "field `block dim`: {block_dim} is not the padded size of {} features",
            header.n
        )));
    }
    let blocks = header.dim.div_ceil(block_dim);
    let expected_sign_words = blocks
        .checked_mul(block_dim)
        .and_then(|per_stage| per_stage.checked_mul(3))
        .map(|bits| bits.div_ceil(64))
        .ok_or_else(|| {
            PersistError::Corrupt(
                "field `sign word count`: 3 * blocks * block_dim overflows".into(),
            )
        })?;
    let sign_word_count = read_u32(reader, "sign word count")? as usize;
    if sign_word_count != expected_sign_words {
        return Err(PersistError::Corrupt(format!(
            "field `sign word count`: {sign_word_count} words for {blocks} blocks of \
             {block_dim} (expected {expected_sign_words})"
        )));
    }
    let mut sign_words = Vec::with_capacity(sign_word_count.min(MAX_PREALLOC));
    for _ in 0..sign_word_count {
        let mut buf = [0u8; 8];
        read_field_bytes(reader, &mut buf, "sign words")?;
        sign_words.push(u64::from_le_bytes(buf));
    }
    let phases = read_f32_vec(reader, header.dim, "phases")?;
    let overlay_count = read_u32(reader, "overlay count")? as usize;
    if overlay_count > header.dim {
        return Err(PersistError::Corrupt(format!(
            "field `overlay count`: {overlay_count} overlaid dims in a D={} model",
            header.dim
        )));
    }
    let mut overlay_dims = Vec::with_capacity(overlay_count.min(MAX_PREALLOC));
    for _ in 0..overlay_count {
        overlay_dims.push(read_u32(reader, "overlay dims")? as usize);
    }
    let overlay_len = overlay_count.checked_mul(header.n).ok_or_else(|| {
        PersistError::Corrupt("field `overlay bases`: m * n overflows the address space".into())
    })?;
    let overlay_values = read_f32_vec(reader, overlay_len, "overlay bases")?;
    let overlay_rows = Matrix::from_vec(overlay_count, header.n, overlay_values)
        .map_err(|e| PersistError::Corrupt(format!("field `overlay bases`: {e}")))?;
    let encoder = StructuredRbfEncoder::from_parts(
        header.n,
        header.dim,
        header.base_std,
        block_dim,
        &sign_words,
        phases,
        overlay_dims,
        overlay_rows,
    )
    .map_err(|e| PersistError::Corrupt(format!("field `overlay dims`: {e}")))?;
    load_shared_tail(reader, header, AnyRbfEncoder::Structured(encoder))
}

/// Reads the tail every layout shares — centering means, memory scales and
/// packed class-memory words — and assembles the deployment.
fn load_shared_tail<R: Read>(
    reader: &mut R,
    header: Header,
    encoder: AnyRbfEncoder,
) -> Result<DeployedModel, PersistError> {
    let Header {
        dim,
        k,
        bits,
        width,
        ..
    } = header;
    let means = read_f32_vec(reader, dim, "center means")?;
    let scales = read_f32_vec(reader, k, "memory scales")?;
    let word_count = read_u32(reader, "memory word count")? as usize;
    let expected_words = k
        .checked_mul(dim)
        .and_then(|kd| kd.checked_mul(bits))
        .map(|b| b.div_ceil(64))
        .ok_or_else(|| {
            PersistError::Corrupt("field `memory word count`: k * D * bits overflows".into())
        })?;
    if word_count != expected_words {
        return Err(PersistError::Corrupt(format!(
            "field `memory word count`: {word_count} words for a {k}x{dim} \
             {bits}-bit memory (expected {expected_words})"
        )));
    }
    let mut words = Vec::with_capacity(word_count.min(MAX_PREALLOC));
    for _ in 0..word_count {
        let mut buf = [0u8; 8];
        read_field_bytes(reader, &mut buf, "memory words")?;
        words.push(u64::from_le_bytes(buf));
    }
    let center = EncodingCenter::from_means(means);
    let memory = QuantizedMatrix::from_parts(words, scales, width, k, dim)
        .map_err(|e| PersistError::Corrupt(format!("field `memory words`: {e}")))?;
    Ok(DeployedModel::from_parts(encoder, center, memory))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32_slice<W: Write>(w: &mut W, values: &[f32]) -> std::io::Result<()> {
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// `read_exact` that converts a short read into a [`PersistError::Corrupt`]
/// naming `field`; other I/O failures stay [`PersistError::Io`].
fn read_field_bytes<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    field: &'static str,
) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt(format!("field `{field}` truncated (short read)"))
        } else {
            PersistError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, field: &'static str) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    read_field_bytes(r, &mut buf, field)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R, field: &'static str) -> Result<f32, PersistError> {
    let mut buf = [0u8; 4];
    read_field_bytes(r, &mut buf, field)?;
    Ok(f32::from_le_bytes(buf))
}

fn read_f32_vec<R: Read>(
    r: &mut R,
    count: usize,
    field: &'static str,
) -> Result<Vec<f32>, PersistError> {
    let mut out = Vec::with_capacity(count.min(MAX_PREALLOC));
    for _ in 0..count {
        out.push(read_f32(r, field)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistHd, DistHdConfig};
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    use disthd_eval::Classifier;

    fn deployed() -> (DeployedModel, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 256,
                epochs: 8,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (DeployedModel::freeze(&model, BitWidth::B4).unwrap(), data)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let restored = load_deployed(buffer.as_slice()).unwrap();
        for i in 0..data.test.len().min(50) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
        assert_eq!(original.width(), restored.width());
        assert_eq!(original.memory_bits(), restored.memory_bits());
    }

    #[test]
    fn single_class_model_round_trips() {
        // k = 1 is the degenerate deployment (an anomaly scorer): one class
        // row, one memory scale.  The format must not confuse the
        // single-element scale vector with an empty one.
        let (full, data) = deployed();
        let one_row = full.memory_parts().shape().1;
        let classes = Matrix::from_fn(1, one_row, |_, c| (c as f32 * 0.37).sin());
        let memory = QuantizedMatrix::quantize(&classes, BitWidth::B4);
        let single = DeployedModel::from_parts(
            full.encoder_parts().clone(),
            full.center_parts().clone(),
            memory,
        );
        let mut buffer = Vec::new();
        save_deployed(&single, &mut buffer).unwrap();
        let restored = load_deployed(buffer.as_slice()).unwrap();
        assert_eq!(restored.class_count(), 1);
        assert_eq!(restored.memory_bits(), single.memory_bits());
        // Every query lands in the only class.
        assert_eq!(restored.predict(data.test.sample(0)).unwrap(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_deployed(&b"NOPE............"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn newer_version_is_distinguished_from_garbage() {
        let err = load_deployed(&b"DHD3............"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::UnsupportedVersion(b'3')),
            "{err}"
        );
        assert!(err.to_string().contains('3'), "{err}");
    }

    fn structured_deployed() -> (DeployedModel, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 256,
                epochs: 8,
                encoder_backend: disthd_hd::encoder::EncoderBackend::Structured,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (DeployedModel::freeze(&model, BitWidth::B4).unwrap(), data)
    }

    #[test]
    fn dense_deployments_still_write_version_one() {
        // Pre-structured readers only understand 'DHD1'; a dense model from
        // this writer must stay loadable by them.
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        assert_eq!(&buffer[..4], b"DHD1");
    }

    #[test]
    fn structured_encoder_kind_round_trips() {
        // A regenerated structured model carries signs, phases and a
        // non-empty overlay; the v2 stream must reproduce its predictions
        // exactly.
        let (original, data) = structured_deployed();
        assert!(
            original
                .encoder_parts()
                .as_structured()
                .map(|e| e.overlay_len() > 0)
                .unwrap_or(false),
            "fit should have evicted dims into the overlay"
        );
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        assert_eq!(&buffer[..5], b"DHD2\x01");
        let restored = load_deployed(buffer.as_slice()).unwrap();
        assert!(restored.encoder_parts().as_structured().is_some());
        for i in 0..data.test.len().min(50) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
        assert_eq!(original.width(), restored.width());
        assert_eq!(original.memory_bits(), restored.memory_bits());
    }

    #[test]
    fn version_two_dense_kind_loads_like_version_one() {
        // The kind byte exists so future dense streams may use v2 as well:
        // splicing a dense-kind byte into a v1 stream must load the same
        // model.
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let mut v2 = Vec::with_capacity(buffer.len() + 1);
        v2.extend_from_slice(b"DHD2\x00");
        v2.extend_from_slice(&buffer[4..]);
        let restored = load_deployed(v2.as_slice()).unwrap();
        assert_eq!(
            original.predict(data.test.sample(0)).unwrap(),
            restored.predict(data.test.sample(0)).unwrap()
        );
    }

    #[test]
    fn unknown_encoder_kind_is_corrupt_and_named() {
        let err = load_deployed(&b"DHD2\x07..........."[..]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("encoder kind"), "{err}");
    }

    #[test]
    fn truncated_structured_stream_names_the_offending_field() {
        let (original, _) = structured_deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();

        // Cut right after the magic + kind byte: header dims are first.
        let err = load_deployed(&buffer[..7]).unwrap_err();
        assert!(err.to_string().contains("feature count n"), "{err}");

        // Cut inside the sign words: header is magic(4) + kind(1) +
        // 4 u32 + f32 + block_dim u32 + sign word count u32.
        let header = 5 + 4 * 4 + 4 + 4 + 4;
        let err = load_deployed(&buffer[..header + 10]).unwrap_err();
        assert!(err.to_string().contains("sign words"), "{err}");

        // Cut inside the trailing memory words.
        let err = load_deployed(&buffer[..buffer.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("memory words"), "{err}");
    }

    #[test]
    fn structured_block_dim_mismatch_is_corrupt() {
        let (original, _) = structured_deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        // block dim lives right after the 5-byte magic+kind and the
        // 4 u32 + f32 header.
        let offset = 5 + 4 * 4 + 4;
        buffer[offset..offset + 4].copy_from_slice(&3u32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("block dim"), "{err}");
    }

    #[test]
    fn truncated_stream_names_the_offending_field() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();

        // Cut inside the bases payload: header is magic(4) + 4 u32 + 1 f32.
        let header = 4 + 4 * 4 + 4;
        let err = load_deployed(&buffer[..header + 10]).unwrap_err();
        assert!(err.to_string().contains("bases"), "{err}");

        // Cut inside the magic itself.
        let err = load_deployed(&buffer[..2]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Cut inside the trailing memory words.
        let err = load_deployed(&buffer[..buffer.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("memory words"), "{err}");
    }

    #[test]
    fn inconsistent_word_count_names_the_field() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        // The word count lives right before the words; corrupt it.
        let words = original.memory_parts().as_words().len();
        let offset = buffer.len() - words * 8 - 4;
        buffer[offset..offset + 4].copy_from_slice(&(words as u32 + 7).to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("memory word count"), "{err}");
    }

    #[test]
    fn unsupported_width_is_corrupt() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [4u32, 8, 2, 3] {
            buffer.extend_from_slice(&v.to_le_bytes()); // width bits = 3: invalid
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("width bits"), "{err}");
    }

    #[test]
    fn forged_giant_header_errors_instead_of_allocating() {
        // A hostile 21-byte header claiming n = D = u32::MAX must fail with
        // a named error (overflow or short read) — not panic on capacity
        // overflow or attempt a multi-gigabyte allocation.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [u32::MAX, u32::MAX, 3u32, 4] {
            buffer.extend_from_slice(&v.to_le_bytes());
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        // Large-but-representable counts run out of stream, naming the
        // field, after reading only the bytes that actually exist.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [1_000_000u32, 1_000_000, 3, 4] {
            buffer.extend_from_slice(&v.to_le_bytes());
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bases"), "{err}");
    }

    #[test]
    fn zero_sized_fields_are_named() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [5u32, 16, 0, 4] {
            buffer.extend_from_slice(&v.to_le_bytes()); // k = 0
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("class count k"), "{err}");
    }

    #[test]
    fn persist_error_display() {
        assert!(PersistError::BadMagic.to_string().contains("DHD1"));
        assert!(PersistError::Corrupt("x".into()).to_string().contains('x'));
        assert!(PersistError::UnsupportedVersion(b'9')
            .to_string()
            .contains('9'));
    }
}
