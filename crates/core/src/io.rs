//! Binary persistence of deployed models.
//!
//! A [`crate::DeployedModel`] is the artifact that ships to an edge device:
//! the f32 encoder (bases + phases), the per-dimension centering means and
//! the quantized class memory.  This module writes and reads a compact,
//! versioned little-endian binary format:
//!
//! ```text
//! magic  "DHD" + version   4 bytes (version is the ASCII digit '1')
//! n (features)             u32    D (dims)    u32    k (classes)   u32
//! width bits               u32    base_std    f32
//! bases                    n*D f32 (row-major)
//! phases                   D f32
//! center means             D f32
//! memory scales            k f32
//! memory word count        u32
//! memory words             count u64
//! ```
//!
//! ## Format evolution
//!
//! The fourth magic byte is the **format version** (currently `'1'`).
//! Readers accept exactly the versions they know: a stream that starts
//! with `DHD` but carries an unknown version digit fails with
//! [`PersistError::UnsupportedVersion`] — distinct from [`PersistError::BadMagic`]
//! (not a DHD stream at all) so callers can tell "newer than me" from
//! "garbage".  Future versions may only *append* fields after the version-1
//! payload; see `DESIGN.md` §6 for the full compatibility rules.  Every
//! deserialization failure names the offending field.

use crate::deploy::DeployedModel;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::RbfEncoder;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// First three magic bytes shared by every DHD format version.
const MAGIC_PREFIX: &[u8; 3] = b"DHD";
/// Pre-allocation cap (elements) while deserializing: header counts are
/// untrusted, so a forged size must not drive a giant upfront allocation —
/// the vectors grow only as real payload bytes actually arrive, and a
/// truncated stream fails with a named short-read error instead.
const MAX_PREALLOC: usize = 1 << 20;
/// Current format version, stored as an ASCII digit in the fourth byte.
const FORMAT_VERSION: u8 = b'1';

/// Errors produced while persisting or loading a deployed model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the `DHD` magic at all.
    BadMagic,
    /// The stream is a DHD model, but of a format version this reader does
    /// not understand (the byte is the raw version tag from the stream).
    UnsupportedVersion(u8),
    /// A field failed validation (corrupt or truncated stream); the message
    /// names the offending field.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a DHD1 model stream (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(
                f,
                "unsupported DHD format version {:?} (this reader understands version {:?})",
                char::from(*v),
                char::from(FORMAT_VERSION)
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt model stream: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a deployed model to `writer` (pass `&mut` for reuse).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn save_deployed<W: Write>(model: &DeployedModel, mut writer: W) -> Result<(), PersistError> {
    let encoder = model.encoder_parts();
    let (rows, cols) = model.memory_parts().shape();
    writer.write_all(MAGIC_PREFIX)?;
    writer.write_all(&[FORMAT_VERSION])?;
    write_u32(&mut writer, encoder.bases().rows() as u32)?;
    write_u32(&mut writer, cols as u32)?;
    write_u32(&mut writer, rows as u32)?;
    write_u32(&mut writer, model.width().bits() as u32)?;
    write_f32(&mut writer, encoder.base_std())?;
    write_f32_slice(&mut writer, encoder.bases().as_slice())?;
    write_f32_slice(&mut writer, encoder.phases())?;
    write_f32_slice(&mut writer, model.center_parts().means())?;
    write_f32_slice(&mut writer, model.memory_parts().scales())?;
    let words = model.memory_parts().as_words();
    write_u32(&mut writer, words.len() as u32)?;
    for &w in words {
        writer.write_all(&w.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a deployed model from `reader` (pass `&mut` for reuse).
///
/// # Errors
///
/// * [`PersistError::BadMagic`] if the stream is not a `DHD` model;
/// * [`PersistError::UnsupportedVersion`] for a DHD stream of a newer
///   (or otherwise unknown) format version;
/// * [`PersistError::Corrupt`] on inconsistent sizes or truncation, naming
///   the offending field;
/// * [`PersistError::Io`] on read failure.
pub fn load_deployed<R: Read>(mut reader: R) -> Result<DeployedModel, PersistError> {
    let mut magic = [0u8; 4];
    read_field_bytes(&mut reader, &mut magic, "magic")?;
    if &magic[..3] != MAGIC_PREFIX {
        return Err(PersistError::BadMagic);
    }
    if magic[3] != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(magic[3]));
    }
    let n = read_u32(&mut reader, "feature count n")? as usize;
    let dim = read_u32(&mut reader, "dimensionality D")? as usize;
    let k = read_u32(&mut reader, "class count k")? as usize;
    let bits = read_u32(&mut reader, "width bits")? as usize;
    let width = BitWidth::from_bits(bits)
        .ok_or_else(|| PersistError::Corrupt(format!("field `width bits`: unsupported {bits}")))?;
    let base_std = read_f32(&mut reader, "base_std")?;
    for (value, field) in [
        (n, "feature count n"),
        (dim, "dimensionality D"),
        (k, "class count k"),
    ] {
        if value == 0 {
            return Err(PersistError::Corrupt(format!("field `{field}` is zero")));
        }
    }

    let bases_len = n.checked_mul(dim).ok_or_else(|| {
        PersistError::Corrupt("field `bases`: n * D overflows the address space".into())
    })?;
    let bases = read_f32_vec(&mut reader, bases_len, "bases")?;
    let phases = read_f32_vec(&mut reader, dim, "phases")?;
    let means = read_f32_vec(&mut reader, dim, "center means")?;
    let scales = read_f32_vec(&mut reader, k, "memory scales")?;
    let word_count = read_u32(&mut reader, "memory word count")? as usize;
    let expected_words = k
        .checked_mul(dim)
        .and_then(|kd| kd.checked_mul(bits))
        .map(|b| b.div_ceil(64))
        .ok_or_else(|| {
            PersistError::Corrupt("field `memory word count`: k * D * bits overflows".into())
        })?;
    if word_count != expected_words {
        return Err(PersistError::Corrupt(format!(
            "field `memory word count`: {word_count} words for a {k}x{dim} \
             {bits}-bit memory (expected {expected_words})"
        )));
    }
    let mut words = Vec::with_capacity(word_count.min(MAX_PREALLOC));
    for _ in 0..word_count {
        let mut buf = [0u8; 8];
        read_field_bytes(&mut reader, &mut buf, "memory words")?;
        words.push(u64::from_le_bytes(buf));
    }

    let bases = Matrix::from_vec(n, dim, bases)
        .map_err(|e| PersistError::Corrupt(format!("field `bases`: {e}")))?;
    let encoder = RbfEncoder::from_parts(bases, phases, base_std)
        .map_err(|e| PersistError::Corrupt(format!("field `phases`: {e}")))?;
    let center = EncodingCenter::from_means(means);
    let memory = QuantizedMatrix::from_parts(words, scales, width, k, dim)
        .map_err(|e| PersistError::Corrupt(format!("field `memory words`: {e}")))?;
    Ok(DeployedModel::from_parts(encoder, center, memory))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32_slice<W: Write>(w: &mut W, values: &[f32]) -> std::io::Result<()> {
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// `read_exact` that converts a short read into a [`PersistError::Corrupt`]
/// naming `field`; other I/O failures stay [`PersistError::Io`].
fn read_field_bytes<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    field: &'static str,
) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt(format!("field `{field}` truncated (short read)"))
        } else {
            PersistError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, field: &'static str) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    read_field_bytes(r, &mut buf, field)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R, field: &'static str) -> Result<f32, PersistError> {
    let mut buf = [0u8; 4];
    read_field_bytes(r, &mut buf, field)?;
    Ok(f32::from_le_bytes(buf))
}

fn read_f32_vec<R: Read>(
    r: &mut R,
    count: usize,
    field: &'static str,
) -> Result<Vec<f32>, PersistError> {
    let mut out = Vec::with_capacity(count.min(MAX_PREALLOC));
    for _ in 0..count {
        out.push(read_f32(r, field)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistHd, DistHdConfig};
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    use disthd_eval::Classifier;

    fn deployed() -> (DeployedModel, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 256,
                epochs: 8,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (DeployedModel::freeze(&model, BitWidth::B4).unwrap(), data)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let restored = load_deployed(buffer.as_slice()).unwrap();
        for i in 0..data.test.len().min(50) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
        assert_eq!(original.width(), restored.width());
        assert_eq!(original.memory_bits(), restored.memory_bits());
    }

    #[test]
    fn single_class_model_round_trips() {
        // k = 1 is the degenerate deployment (an anomaly scorer): one class
        // row, one memory scale.  The format must not confuse the
        // single-element scale vector with an empty one.
        let (full, data) = deployed();
        let one_row = full.memory_parts().shape().1;
        let classes = Matrix::from_fn(1, one_row, |_, c| (c as f32 * 0.37).sin());
        let memory = QuantizedMatrix::quantize(&classes, BitWidth::B4);
        let single = DeployedModel::from_parts(
            full.encoder_parts().clone(),
            full.center_parts().clone(),
            memory,
        );
        let mut buffer = Vec::new();
        save_deployed(&single, &mut buffer).unwrap();
        let restored = load_deployed(buffer.as_slice()).unwrap();
        assert_eq!(restored.class_count(), 1);
        assert_eq!(restored.memory_bits(), single.memory_bits());
        // Every query lands in the only class.
        assert_eq!(restored.predict(data.test.sample(0)).unwrap(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_deployed(&b"NOPE............"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn newer_version_is_distinguished_from_garbage() {
        let err = load_deployed(&b"DHD2............"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::UnsupportedVersion(b'2')),
            "{err}"
        );
        assert!(err.to_string().contains('2'), "{err}");
    }

    #[test]
    fn truncated_stream_names_the_offending_field() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();

        // Cut inside the bases payload: header is magic(4) + 4 u32 + 1 f32.
        let header = 4 + 4 * 4 + 4;
        let err = load_deployed(&buffer[..header + 10]).unwrap_err();
        assert!(err.to_string().contains("bases"), "{err}");

        // Cut inside the magic itself.
        let err = load_deployed(&buffer[..2]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Cut inside the trailing memory words.
        let err = load_deployed(&buffer[..buffer.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("memory words"), "{err}");
    }

    #[test]
    fn inconsistent_word_count_names_the_field() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        // The word count lives right before the words; corrupt it.
        let words = original.memory_parts().as_words().len();
        let offset = buffer.len() - words * 8 - 4;
        buffer[offset..offset + 4].copy_from_slice(&(words as u32 + 7).to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("memory word count"), "{err}");
    }

    #[test]
    fn unsupported_width_is_corrupt() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [4u32, 8, 2, 3] {
            buffer.extend_from_slice(&v.to_le_bytes()); // width bits = 3: invalid
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("width bits"), "{err}");
    }

    #[test]
    fn forged_giant_header_errors_instead_of_allocating() {
        // A hostile 21-byte header claiming n = D = u32::MAX must fail with
        // a named error (overflow or short read) — not panic on capacity
        // overflow or attempt a multi-gigabyte allocation.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [u32::MAX, u32::MAX, 3u32, 4] {
            buffer.extend_from_slice(&v.to_le_bytes());
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        // Large-but-representable counts run out of stream, naming the
        // field, after reading only the bytes that actually exist.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [1_000_000u32, 1_000_000, 3, 4] {
            buffer.extend_from_slice(&v.to_le_bytes());
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bases"), "{err}");
    }

    #[test]
    fn zero_sized_fields_are_named() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [5u32, 16, 0, 4] {
            buffer.extend_from_slice(&v.to_le_bytes()); // k = 0
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("class count k"), "{err}");
    }

    #[test]
    fn persist_error_display() {
        assert!(PersistError::BadMagic.to_string().contains("DHD1"));
        assert!(PersistError::Corrupt("x".into()).to_string().contains('x'));
        assert!(PersistError::UnsupportedVersion(b'9')
            .to_string()
            .contains('9'));
    }
}
