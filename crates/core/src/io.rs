//! Binary persistence of deployed models.
//!
//! A [`crate::DeployedModel`] is the artifact that ships to an edge device:
//! the f32 encoder, the per-dimension centering means and the quantized
//! class memory.  This module writes and reads a compact, versioned
//! little-endian binary format.  Version `'1'` is the dense-encoder layout:
//!
//! ```text
//! magic  "DHD" + version   4 bytes (version is the ASCII digit '1')
//! n (features)             u32    D (dims)    u32    k (classes)   u32
//! width bits               u32    base_std    f32
//! bases                    n*D f32 (row-major)
//! phases                   D f32
//! center means             D f32
//! memory scales            k f32
//! memory word count        u32
//! memory words             count u64
//! ```
//!
//! Version `'2'` adds an **encoder-kind byte** right after the magic so a
//! deployment can carry either RBF backend; kind `0` (dense) is followed by
//! the version-1 payload verbatim, kind `1` (structured) replaces the base
//! matrix with the Walsh–Hadamard construction's parts:
//!
//! ```text
//! magic  "DHD" + '2'       4 bytes
//! encoder kind             u8  (0 = dense, 1 = structured)
//! n, D, k, width bits      u32 each      base_std  f32
//! -- structured kind only --
//! block dim                u32 (padded FHT length, n.next_power_of_two())
//! sign word count          u32
//! sign words               count u64 (packed ±1 diagonals, bit = +1)
//! phases                   D f32
//! overlay count m          u32
//! overlay dims             m u32
//! overlay bases            m*n f32 (row-major, one base row per dim)
//! -- shared tail --
//! center means             D f32
//! memory scales            k f32
//! memory word count        u32
//! memory words             count u64
//! ```
//!
//! Version `'3'` appends a **serving-task section** after the shared tail
//! (and always carries the encoder-kind byte, like `'2'`):
//!
//! ```text
//! magic  "DHD" + '3'       4 bytes
//! encoder kind             u8 (then the v1/v2 payload + shared tail)
//! task count               u32 (1..=2; each task kind at most once)
//! per task: kind           u8  (0 = top-k, 1 = anomaly threshold)
//!           payload        u32 k   |   f32 threshold
//! ```
//!
//! Version `'4'` is the **checksummed container** every new artifact is
//! written as: the pre-checksum stream (whichever of `'1'`/`'2'`/`'3'` the
//! model would have selected) is embedded verbatim after the magic, and a
//! trailing FNV-1a hash covers every preceding byte:
//!
//! ```text
//! magic  "DHD" + '4'       4 bytes
//! embedded version         u8 ('1' | '2' | '3' — the legacy stream's own
//!                              version byte; its body follows verbatim)
//! embedded body            exactly the v1/v2/v3 payload bytes
//! checksum                 u64 FNV-1a over ALL preceding bytes
//!                              (magic and embedded version included)
//! ```
//!
//! ## Format evolution
//!
//! The fourth magic byte is the **format version**.  Readers accept exactly
//! the versions they know: a stream that starts with `DHD` but carries an
//! unknown version digit fails with [`PersistError::UnsupportedVersion`] —
//! distinct from [`PersistError::BadMagic`] (not a DHD stream at all) so
//! callers can tell "newer than me" from "garbage".  Since the
//! fault-tolerance layer, **every** deployment is written as the
//! checksummed `'4'` container so a flipped bit in a stored blob can never
//! be served silently: a structurally-parseable stream whose trailer does
//! not match fails closed with [`PersistError::ChecksumMismatch`] before
//! any caller sees the model.  Readers still load every legacy `'1'`,
//! `'2'` and `'3'` stream (which carry no trailer — integrity there is
//! best-effort structural validation only), and the embedded body inside
//! a `'4'` container is byte-identical to the legacy stream the pre-
//! checksum writer would have produced — stripping the container (drop the
//! `'4'` magic + embedded-version prefix and the 8-byte trailer, re-prefix
//! `DHD` + embedded version) yields a stream legacy readers load
//! unchanged.  An unknown task kind fails closed ([`PersistError::
//! Corrupt`], naming the field) rather than silently serving a
//! misconfigured task.  See `DESIGN.md` §6/§8/§11/§13 for the full
//! compatibility rules.  Every deserialization failure names the offending
//! field.

use crate::deploy::DeployedModel;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{AnyRbfEncoder, Encoder, RbfEncoder, StructuredRbfEncoder};
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// First three magic bytes shared by every DHD format version.
const MAGIC_PREFIX: &[u8; 3] = b"DHD";
/// Pre-allocation cap (elements) while deserializing: header counts are
/// untrusted, so a forged size must not drive a giant upfront allocation —
/// the vectors grow only as real payload bytes actually arrive, and a
/// truncated stream fails with a named short-read error instead.
const MAX_PREALLOC: usize = 1 << 20;
/// Dense-encoder format version (the original layout, still written for
/// dense deployments).
const VERSION_DENSE: u8 = b'1';
/// Encoder-kind-dispatched format version (structured deployments).
const VERSION_KINDED: u8 = b'2';
/// Serving-task-carrying format version (written only when a
/// [`crate::ServingTasks`] is configured).
const VERSION_TASKED: u8 = b'3';
/// Checksummed-container format version: an embedded `'1'`/`'2'`/`'3'`
/// stream followed by a trailing FNV-1a hash over every preceding byte.
/// This is what every new artifact is written as.
const VERSION_CHECKSUMMED: u8 = b'4';
/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Encoder-kind byte: dense RBF encoder (version-1 payload follows).
const ENCODER_KIND_DENSE: u8 = 0;
/// Encoder-kind byte: structured Walsh–Hadamard RBF encoder.
const ENCODER_KIND_STRUCTURED: u8 = 1;
/// Task-kind byte: top-k ranking configuration (u32 `k` payload).
const TASK_KIND_TOP_K: u8 = 0;
/// Task-kind byte: one-class anomaly threshold (f32 payload).
const TASK_KIND_ANOMALY: u8 = 1;

/// Errors produced while persisting or loading a deployed model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the `DHD` magic at all.
    BadMagic,
    /// The stream is a DHD model, but of a format version this reader does
    /// not understand (the byte is the raw version tag from the stream).
    UnsupportedVersion(u8),
    /// A field failed validation (corrupt or truncated stream); the message
    /// names the offending field.
    Corrupt(String),
    /// The stream parsed structurally but its trailing FNV-1a checksum does
    /// not cover the bytes that were actually read — some bit flipped in
    /// storage or transit.  The model is never returned.
    ChecksumMismatch {
        /// The checksum the stream's trailer claims.
        stored: u64,
        /// The checksum computed over the bytes actually read.
        computed: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a DHD model stream (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(
                f,
                "unsupported DHD format version {:?} (this reader understands versions {:?}–{:?})",
                char::from(*v),
                char::from(VERSION_DENSE),
                char::from(VERSION_CHECKSUMMED)
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt model stream: {msg}"),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "model stream checksum mismatch: trailer claims {stored:#018x}, \
                 bytes hash to {computed:#018x}"
            ),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a deployed model to `writer` (pass `&mut` for reuse).
///
/// Every artifact is written as the checksummed `'4'` container: the
/// stream a pre-checksum writer would have produced (dense task-free →
/// `'1'`, structured → `'2'`, tasked → `'3'`) is embedded verbatim after
/// the `DHD4` magic, then a trailing FNV-1a hash over all preceding bytes
/// lets the loader fail closed on any bit flip instead of serving a
/// silently-corrupted model.  The embedded body stays byte-identical to
/// the legacy stream, so stripping the container recovers an artifact
/// every older reader loads unchanged.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn save_deployed<W: Write>(model: &DeployedModel, mut writer: W) -> Result<(), PersistError> {
    let legacy = serialize_legacy(model)?;
    let mut out = Vec::with_capacity(legacy.len() + 9);
    out.extend_from_slice(MAGIC_PREFIX);
    out.push(VERSION_CHECKSUMMED);
    // legacy[3] is the embedded stream's own version byte; its body
    // follows verbatim.
    out.extend_from_slice(&legacy[3..]);
    let checksum = fnv1a_update(FNV_OFFSET, &out);
    out.extend_from_slice(&checksum.to_le_bytes());
    writer.write_all(&out)?;
    writer.flush()?;
    Ok(())
}

/// Serializes `model` as the pre-checksum (`'1'`/`'2'`/`'3'`) stream that
/// gets embedded inside the `'4'` container.
fn serialize_legacy(model: &DeployedModel) -> Result<Vec<u8>, PersistError> {
    let mut writer = Vec::new();
    let (rows, cols) = model.memory_parts().shape();
    let tasks = model.tasks();
    let write_dims = |writer: &mut Vec<u8>, n: usize| -> Result<(), PersistError> {
        write_u32(writer, n as u32)?;
        write_u32(writer, cols as u32)?;
        write_u32(writer, rows as u32)?;
        write_u32(writer, model.width().bits() as u32)?;
        write_f32(writer, model.encoder_parts().base_std())?;
        Ok(())
    };
    match model.encoder_parts() {
        AnyRbfEncoder::Dense(encoder) => {
            writer.write_all(MAGIC_PREFIX)?;
            if tasks.is_empty() {
                writer.write_all(&[VERSION_DENSE])?;
            } else {
                writer.write_all(&[VERSION_TASKED, ENCODER_KIND_DENSE])?;
            }
            write_dims(&mut writer, encoder.bases().rows())?;
            write_f32_slice(&mut writer, encoder.bases().as_slice())?;
            write_f32_slice(&mut writer, encoder.phases())?;
        }
        AnyRbfEncoder::Structured(encoder) => {
            writer.write_all(MAGIC_PREFIX)?;
            let version = if tasks.is_empty() {
                VERSION_KINDED
            } else {
                VERSION_TASKED
            };
            writer.write_all(&[version])?;
            writer.write_all(&[ENCODER_KIND_STRUCTURED])?;
            write_dims(&mut writer, encoder.input_dim())?;
            write_u32(&mut writer, encoder.block_dim() as u32)?;
            let sign_words = encoder.packed_signs();
            write_u32(&mut writer, sign_words.len() as u32)?;
            for &w in &sign_words {
                writer.write_all(&w.to_le_bytes())?;
            }
            write_f32_slice(&mut writer, encoder.phases())?;
            write_u32(&mut writer, encoder.overlay_dims().len() as u32)?;
            for &d in encoder.overlay_dims() {
                write_u32(&mut writer, d as u32)?;
            }
            write_f32_slice(&mut writer, encoder.overlay_rows().as_slice())?;
        }
    }
    write_f32_slice(&mut writer, model.center_parts().means())?;
    write_f32_slice(&mut writer, model.memory_parts().scales())?;
    let words = model.memory_parts().as_words();
    write_u32(&mut writer, words.len() as u32)?;
    for &w in words {
        writer.write_all(&w.to_le_bytes())?;
    }
    if !tasks.is_empty() {
        let count = tasks.top_k.is_some() as u32 + tasks.anomaly_threshold.is_some() as u32;
        write_u32(&mut writer, count)?;
        if let Some(k) = tasks.top_k {
            writer.write_all(&[TASK_KIND_TOP_K])?;
            write_u32(&mut writer, k as u32)?;
        }
        if let Some(threshold) = tasks.anomaly_threshold {
            writer.write_all(&[TASK_KIND_ANOMALY])?;
            write_f32(&mut writer, threshold)?;
        }
    }
    Ok(writer)
}

/// Folds `bytes` into a running 64-bit FNV-1a hash.
fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A [`Read`] adapter that folds every byte it hands out into a running
/// FNV-1a hash, so the loader can verify the `'4'` container's trailer
/// without buffering the stream.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a_update(self.hash, &buf[..n]);
        Ok(n)
    }
}

/// The `n / D / k / width / base_std` header shared by every layout.
struct Header {
    n: usize,
    dim: usize,
    k: usize,
    bits: usize,
    width: BitWidth,
    base_std: f32,
}

/// Reads and validates the shared dimension header.
fn read_header<R: Read>(reader: &mut R) -> Result<Header, PersistError> {
    let n = read_u32(reader, "feature count n")? as usize;
    let dim = read_u32(reader, "dimensionality D")? as usize;
    let k = read_u32(reader, "class count k")? as usize;
    let bits = read_u32(reader, "width bits")? as usize;
    let width = BitWidth::from_bits(bits)
        .ok_or_else(|| PersistError::Corrupt(format!("field `width bits`: unsupported {bits}")))?;
    let base_std = read_f32(reader, "base_std")?;
    for (value, field) in [
        (n, "feature count n"),
        (dim, "dimensionality D"),
        (k, "class count k"),
    ] {
        if value == 0 {
            return Err(PersistError::Corrupt(format!("field `{field}` is zero")));
        }
    }
    Ok(Header {
        n,
        dim,
        k,
        bits,
        width,
        base_std,
    })
}

/// Reads a deployed model from `reader` (pass `&mut` for reuse).
///
/// # Errors
///
/// * [`PersistError::BadMagic`] if the stream is not a `DHD` model;
/// * [`PersistError::UnsupportedVersion`] for a DHD stream of a newer
///   (or otherwise unknown) format version;
/// * [`PersistError::Corrupt`] on inconsistent sizes, truncation or an
///   unknown encoder kind, naming the offending field;
/// * [`PersistError::ChecksumMismatch`] when a `'4'` container parses
///   structurally but its trailing FNV-1a hash does not match the bytes
///   read (a flipped bit in storage — the model is withheld);
/// * [`PersistError::Io`] on read failure.
pub fn load_deployed<R: Read>(mut reader: R) -> Result<DeployedModel, PersistError> {
    let mut magic = [0u8; 4];
    read_field_bytes(&mut reader, &mut magic, "magic")?;
    if &magic[..3] != MAGIC_PREFIX {
        return Err(PersistError::BadMagic);
    }
    match magic[3] {
        VERSION_DENSE | VERSION_KINDED | VERSION_TASKED => {
            load_body_for_version(magic[3], &mut reader)
        }
        VERSION_CHECKSUMMED => {
            let mut embedded = [0u8; 1];
            read_field_bytes(&mut reader, &mut embedded, "embedded version")?;
            match embedded[0] {
                VERSION_DENSE | VERSION_KINDED | VERSION_TASKED => {}
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "field `embedded version`: unknown version {:?}",
                        char::from(other)
                    )))
                }
            }
            // Hash while parsing: prime the hash with the already-consumed
            // magic + embedded-version prefix, then every body byte the
            // parsers read flows through the adapter.  Structural errors
            // fire first (they surface during the parse, with their field
            // names intact); a stream that parses cleanly but hashes wrong
            // fails closed here.
            let mut hashing = HashingReader {
                hash: fnv1a_update(fnv1a_update(FNV_OFFSET, &magic), &embedded),
                inner: &mut reader,
            };
            let model = load_body_for_version(embedded[0], &mut hashing)?;
            let computed = hashing.hash;
            let mut trailer = [0u8; 8];
            read_field_bytes(&mut reader, &mut trailer, "checksum")?;
            let stored = u64::from_le_bytes(trailer);
            if stored != computed {
                return Err(PersistError::ChecksumMismatch { stored, computed });
            }
            Ok(model)
        }
        version => Err(PersistError::UnsupportedVersion(version)),
    }
}

/// Loads the body of a validated legacy (`'1'`/`'2'`/`'3'`) stream —
/// everything after the 4-byte magic.  Callers have already matched
/// `version` against the known set.
fn load_body_for_version<R: Read>(
    version: u8,
    reader: &mut R,
) -> Result<DeployedModel, PersistError> {
    if version == VERSION_DENSE {
        return load_dense_body(reader);
    }
    let mut kind = [0u8; 1];
    read_field_bytes(reader, &mut kind, "encoder kind")?;
    let mut model = match kind[0] {
        ENCODER_KIND_DENSE => load_dense_body(reader)?,
        ENCODER_KIND_STRUCTURED => load_structured_body(reader)?,
        other => {
            return Err(PersistError::Corrupt(format!(
                "field `encoder kind`: unknown kind {other}"
            )))
        }
    };
    if version == VERSION_TASKED {
        load_task_section(reader, &mut model)?;
    }
    Ok(model)
}

/// Reads the version-3 serving-task section and installs it on `model`.
///
/// Fails **closed**: an unknown task kind, a duplicate kind, an
/// out-of-range count or an invalid payload is [`PersistError::Corrupt`]
/// naming the field — a reader must never silently drop (or guess at) a
/// task the artifact was configured to serve.
fn load_task_section<R: Read>(
    reader: &mut R,
    model: &mut DeployedModel,
) -> Result<(), PersistError> {
    let count = read_u32(reader, "task count")? as usize;
    if count == 0 || count > 2 {
        return Err(PersistError::Corrupt(format!(
            "field `task count`: {count} tasks (a v3 stream carries 1..=2)"
        )));
    }
    let mut tasks = crate::deploy::ServingTasks::default();
    for _ in 0..count {
        let mut kind = [0u8; 1];
        read_field_bytes(reader, &mut kind, "task kind")?;
        match kind[0] {
            TASK_KIND_TOP_K => {
                if tasks.top_k.is_some() {
                    return Err(PersistError::Corrupt(
                        "field `task kind`: duplicate top-k task".into(),
                    ));
                }
                tasks.top_k = Some(read_u32(reader, "top-k task")? as usize);
            }
            TASK_KIND_ANOMALY => {
                if tasks.anomaly_threshold.is_some() {
                    return Err(PersistError::Corrupt(
                        "field `task kind`: duplicate anomaly task".into(),
                    ));
                }
                let threshold = read_f32(reader, "anomaly threshold task")?;
                if !threshold.is_finite() {
                    return Err(PersistError::Corrupt(format!(
                        "field `anomaly threshold task`: {threshold} is not finite"
                    )));
                }
                tasks.anomaly_threshold = Some(threshold);
            }
            other => {
                return Err(PersistError::Corrupt(format!(
                    "field `task kind`: unknown kind {other}"
                )))
            }
        }
    }
    model
        .set_tasks(tasks)
        .map_err(|e| PersistError::Corrupt(format!("field `top-k task`: {e}")))
}

/// Reads the dense-encoder payload (everything after the magic / kind
/// dispatch) — the version-1 layout.
fn load_dense_body<R: Read>(reader: &mut R) -> Result<DeployedModel, PersistError> {
    let header = read_header(reader)?;
    let bases_len = header.n.checked_mul(header.dim).ok_or_else(|| {
        PersistError::Corrupt("field `bases`: n * D overflows the address space".into())
    })?;
    let bases = read_f32_vec(reader, bases_len, "bases")?;
    let phases = read_f32_vec(reader, header.dim, "phases")?;
    let bases = Matrix::from_vec(header.n, header.dim, bases)
        .map_err(|e| PersistError::Corrupt(format!("field `bases`: {e}")))?;
    let encoder = RbfEncoder::from_parts(bases, phases, header.base_std)
        .map_err(|e| PersistError::Corrupt(format!("field `phases`: {e}")))?;
    load_shared_tail(reader, header, AnyRbfEncoder::Dense(encoder))
}

/// Reads the structured-encoder payload (version-2, kind 1).
fn load_structured_body<R: Read>(reader: &mut R) -> Result<DeployedModel, PersistError> {
    let header = read_header(reader)?;
    let block_dim = read_u32(reader, "block dim")? as usize;
    // Both construction modes are valid on load: the padded input size
    // (full-pad) and half of it (half-block, when the shape qualifies).
    // The encoder's own plan is the single source of truth for block
    // shapes and sign budgets — ragged last blocks shrink their share.
    let expected_sign_words =
        StructuredRbfEncoder::plan_sign_count(header.n, header.dim, block_dim)
            .map(|signs| signs.div_ceil(64))
            .ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "field `block dim`: {block_dim} is not a valid block plan for {} features",
                    header.n
                ))
            })?;
    let sign_word_count = read_u32(reader, "sign word count")? as usize;
    if sign_word_count != expected_sign_words {
        return Err(PersistError::Corrupt(format!(
            "field `sign word count`: {sign_word_count} words for blocks of \
             {block_dim} (expected {expected_sign_words})"
        )));
    }
    let mut sign_words = Vec::with_capacity(sign_word_count.min(MAX_PREALLOC));
    for _ in 0..sign_word_count {
        let mut buf = [0u8; 8];
        read_field_bytes(reader, &mut buf, "sign words")?;
        sign_words.push(u64::from_le_bytes(buf));
    }
    let phases = read_f32_vec(reader, header.dim, "phases")?;
    let overlay_count = read_u32(reader, "overlay count")? as usize;
    if overlay_count > header.dim {
        return Err(PersistError::Corrupt(format!(
            "field `overlay count`: {overlay_count} overlaid dims in a D={} model",
            header.dim
        )));
    }
    let mut overlay_dims = Vec::with_capacity(overlay_count.min(MAX_PREALLOC));
    for _ in 0..overlay_count {
        overlay_dims.push(read_u32(reader, "overlay dims")? as usize);
    }
    let overlay_len = overlay_count.checked_mul(header.n).ok_or_else(|| {
        PersistError::Corrupt("field `overlay bases`: m * n overflows the address space".into())
    })?;
    let overlay_values = read_f32_vec(reader, overlay_len, "overlay bases")?;
    let overlay_rows = Matrix::from_vec(overlay_count, header.n, overlay_values)
        .map_err(|e| PersistError::Corrupt(format!("field `overlay bases`: {e}")))?;
    let encoder = StructuredRbfEncoder::from_parts(
        header.n,
        header.dim,
        header.base_std,
        block_dim,
        &sign_words,
        phases,
        overlay_dims,
        overlay_rows,
    )
    .map_err(|e| PersistError::Corrupt(format!("field `overlay dims`: {e}")))?;
    load_shared_tail(reader, header, AnyRbfEncoder::Structured(encoder))
}

/// Reads the tail every layout shares — centering means, memory scales and
/// packed class-memory words — and assembles the deployment.
fn load_shared_tail<R: Read>(
    reader: &mut R,
    header: Header,
    encoder: AnyRbfEncoder,
) -> Result<DeployedModel, PersistError> {
    let Header {
        dim,
        k,
        bits,
        width,
        ..
    } = header;
    let means = read_f32_vec(reader, dim, "center means")?;
    let scales = read_f32_vec(reader, k, "memory scales")?;
    let word_count = read_u32(reader, "memory word count")? as usize;
    let expected_words = k
        .checked_mul(dim)
        .and_then(|kd| kd.checked_mul(bits))
        .map(|b| b.div_ceil(64))
        .ok_or_else(|| {
            PersistError::Corrupt("field `memory word count`: k * D * bits overflows".into())
        })?;
    if word_count != expected_words {
        return Err(PersistError::Corrupt(format!(
            "field `memory word count`: {word_count} words for a {k}x{dim} \
             {bits}-bit memory (expected {expected_words})"
        )));
    }
    let mut words = Vec::with_capacity(word_count.min(MAX_PREALLOC));
    for _ in 0..word_count {
        let mut buf = [0u8; 8];
        read_field_bytes(reader, &mut buf, "memory words")?;
        words.push(u64::from_le_bytes(buf));
    }
    let center = EncodingCenter::from_means(means);
    let memory = QuantizedMatrix::from_parts(words, scales, width, k, dim)
        .map_err(|e| PersistError::Corrupt(format!("field `memory words`: {e}")))?;
    Ok(DeployedModel::from_parts(encoder, center, memory))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32_slice<W: Write>(w: &mut W, values: &[f32]) -> std::io::Result<()> {
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// `read_exact` that converts a short read into a [`PersistError::Corrupt`]
/// naming `field`; other I/O failures stay [`PersistError::Io`].
fn read_field_bytes<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    field: &'static str,
) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt(format!("field `{field}` truncated (short read)"))
        } else {
            PersistError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, field: &'static str) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    read_field_bytes(r, &mut buf, field)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R, field: &'static str) -> Result<f32, PersistError> {
    let mut buf = [0u8; 4];
    read_field_bytes(r, &mut buf, field)?;
    Ok(f32::from_le_bytes(buf))
}

fn read_f32_vec<R: Read>(
    r: &mut R,
    count: usize,
    field: &'static str,
) -> Result<Vec<f32>, PersistError> {
    let mut out = Vec::with_capacity(count.min(MAX_PREALLOC));
    for _ in 0..count {
        out.push(read_f32(r, field)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistHd, DistHdConfig};
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};
    use disthd_eval::Classifier;

    fn deployed() -> (DeployedModel, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 256,
                epochs: 8,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (DeployedModel::freeze(&model, BitWidth::B4).unwrap(), data)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let restored = load_deployed(buffer.as_slice()).unwrap();
        for i in 0..data.test.len().min(50) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
        assert_eq!(original.width(), restored.width());
        assert_eq!(original.memory_bits(), restored.memory_bits());
    }

    #[test]
    fn single_class_model_round_trips() {
        // k = 1 is the degenerate deployment (an anomaly scorer): one class
        // row, one memory scale.  The format must not confuse the
        // single-element scale vector with an empty one.
        let (full, data) = deployed();
        let one_row = full.memory_parts().shape().1;
        let classes = Matrix::from_fn(1, one_row, |_, c| (c as f32 * 0.37).sin());
        let memory = QuantizedMatrix::quantize(&classes, BitWidth::B4);
        let single = DeployedModel::from_parts(
            full.encoder_parts().clone(),
            full.center_parts().clone(),
            memory,
        );
        let mut buffer = Vec::new();
        save_deployed(&single, &mut buffer).unwrap();
        let restored = load_deployed(buffer.as_slice()).unwrap();
        assert_eq!(restored.class_count(), 1);
        assert_eq!(restored.memory_bits(), single.memory_bits());
        // Every query lands in the only class.
        assert_eq!(restored.predict(data.test.sample(0)).unwrap(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_deployed(&b"NOPE............"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn newer_version_is_distinguished_from_garbage() {
        let err = load_deployed(&b"DHD9............"[..]).unwrap_err();
        assert!(
            matches!(err, PersistError::UnsupportedVersion(b'9')),
            "{err}"
        );
        assert!(err.to_string().contains('9'), "{err}");
    }

    #[test]
    fn unknown_embedded_version_is_corrupt_and_named() {
        // A '4' container must embed a version this reader knows; anything
        // else is corruption, not a forward-compat case (a genuinely newer
        // format would bump the outer version byte).
        let err = load_deployed(&b"DHD4x..........."[..]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("embedded version"), "{err}");
    }

    fn structured_deployed() -> (DeployedModel, disthd_datasets::TrainTest) {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        let mut model = DistHd::new(
            DistHdConfig {
                dim: 256,
                epochs: 8,
                encoder_backend: disthd_hd::encoder::EncoderBackend::Structured,
                ..Default::default()
            },
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        (DeployedModel::freeze(&model, BitWidth::B4).unwrap(), data)
    }

    /// Strips the `'4'` container from a freshly-written stream: drops the
    /// outer magic and the 8-byte trailer and re-prefixes `DHD` onto the
    /// embedded version byte + body, reconstructing the exact stream a
    /// pre-checksum writer would have produced.
    fn strip_container(v4: &[u8]) -> Vec<u8> {
        assert_eq!(&v4[..4], b"DHD4");
        let mut legacy = Vec::with_capacity(v4.len() - 9);
        legacy.extend_from_slice(MAGIC_PREFIX);
        legacy.extend_from_slice(&v4[4..v4.len() - 8]);
        legacy
    }

    #[test]
    fn dense_deployments_embed_version_one() {
        // Pre-structured readers only understand 'DHD1'; a dense model's
        // embedded body must reconstruct to exactly that stream, and this
        // reader must still load the reconstruction identically.
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        assert_eq!(&buffer[..5], b"DHD41");
        let legacy = strip_container(&buffer);
        assert_eq!(&legacy[..4], b"DHD1");
        let restored = load_deployed(legacy.as_slice()).unwrap();
        for i in 0..data.test.len().min(20) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
    }

    #[test]
    fn checksum_detects_parseable_bit_flips() {
        // Flip one bit in the middle of the bases payload: every count and
        // size still parses, but the trailer no longer covers the bytes —
        // the loader must fail closed instead of serving a corrupted model.
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let mid = buffer.len() / 2;
        buffer[mid] ^= 0x10;
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_checksum_trailer_is_named() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let err = load_deployed(&buffer[..buffer.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn structured_encoder_kind_round_trips() {
        // A regenerated structured model carries signs, phases and a
        // non-empty overlay; the v2 stream must reproduce its predictions
        // exactly.
        let (original, data) = structured_deployed();
        assert!(
            original
                .encoder_parts()
                .as_structured()
                .map(|e| e.overlay_len() > 0)
                .unwrap_or(false),
            "fit should have evicted dims into the overlay"
        );
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        assert_eq!(&buffer[..6], b"DHD42\x01");
        let restored = load_deployed(buffer.as_slice()).unwrap();
        assert!(restored.encoder_parts().as_structured().is_some());
        for i in 0..data.test.len().min(50) {
            assert_eq!(
                original.predict(data.test.sample(i)).unwrap(),
                restored.predict(data.test.sample(i)).unwrap(),
                "sample {i}"
            );
        }
        assert_eq!(original.width(), restored.width());
        assert_eq!(original.memory_bits(), restored.memory_bits());
    }

    #[test]
    fn version_two_dense_kind_loads_like_version_one() {
        // The kind byte exists so future dense streams may use v2 as well:
        // splicing a dense-kind byte into a v1 stream must load the same
        // model.
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        let legacy = strip_container(&buffer);
        let mut v2 = Vec::with_capacity(legacy.len() + 1);
        v2.extend_from_slice(b"DHD2\x00");
        v2.extend_from_slice(&legacy[4..]);
        let restored = load_deployed(v2.as_slice()).unwrap();
        assert_eq!(
            original.predict(data.test.sample(0)).unwrap(),
            restored.predict(data.test.sample(0)).unwrap()
        );
    }

    #[test]
    fn unknown_encoder_kind_is_corrupt_and_named() {
        let err = load_deployed(&b"DHD2\x07..........."[..]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("encoder kind"), "{err}");
    }

    #[test]
    fn truncated_structured_stream_names_the_offending_field() {
        let (original, _) = structured_deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();

        // Cut right after the magic + embedded version + kind bytes: header
        // dims are first.
        let err = load_deployed(&buffer[..8]).unwrap_err();
        assert!(err.to_string().contains("feature count n"), "{err}");

        // Cut inside the sign words: header is magic(4) + embedded ver(1) +
        // kind(1) + 4 u32 + f32 + block_dim u32 + sign word count u32.
        let header = 6 + 4 * 4 + 4 + 4 + 4;
        let err = load_deployed(&buffer[..header + 10]).unwrap_err();
        assert!(err.to_string().contains("sign words"), "{err}");

        // Cut inside the trailing memory words (before the 8-byte trailer).
        let err = load_deployed(&buffer[..buffer.len() - 8 - 3]).unwrap_err();
        assert!(err.to_string().contains("memory words"), "{err}");
    }

    #[test]
    fn structured_block_dim_mismatch_is_corrupt() {
        let (original, _) = structured_deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        // block dim lives right after the 6-byte magic + embedded version +
        // kind prefix and the 4 u32 + f32 header.
        let offset = 6 + 4 * 4 + 4;
        buffer[offset..offset + 4].copy_from_slice(&3u32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("block dim"), "{err}");
    }

    #[test]
    fn truncated_stream_names_the_offending_field() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();

        // Cut inside the bases payload: prefix is magic(4) + embedded
        // version(1), then 4 u32 + 1 f32 of header.
        let header = 5 + 4 * 4 + 4;
        let err = load_deployed(&buffer[..header + 10]).unwrap_err();
        assert!(err.to_string().contains("bases"), "{err}");

        // Cut inside the magic itself.
        let err = load_deployed(&buffer[..2]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Cut inside the trailing memory words (before the 8-byte trailer).
        let err = load_deployed(&buffer[..buffer.len() - 8 - 3]).unwrap_err();
        assert!(err.to_string().contains("memory words"), "{err}");
    }

    #[test]
    fn inconsistent_word_count_names_the_field() {
        let (original, _) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        // The word count lives right before the words (which sit ahead of
        // the 8-byte checksum trailer); corrupt it.  The structural check
        // fires during the parse, before the checksum is even read.
        let words = original.memory_parts().as_words().len();
        let offset = buffer.len() - 8 - words * 8 - 4;
        buffer[offset..offset + 4].copy_from_slice(&(words as u32 + 7).to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("memory word count"), "{err}");
    }

    #[test]
    fn unsupported_width_is_corrupt() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [4u32, 8, 2, 3] {
            buffer.extend_from_slice(&v.to_le_bytes()); // width bits = 3: invalid
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("width bits"), "{err}");
    }

    #[test]
    fn forged_giant_header_errors_instead_of_allocating() {
        // A hostile 21-byte header claiming n = D = u32::MAX must fail with
        // a named error (overflow or short read) — not panic on capacity
        // overflow or attempt a multi-gigabyte allocation.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [u32::MAX, u32::MAX, 3u32, 4] {
            buffer.extend_from_slice(&v.to_le_bytes());
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        // Large-but-representable counts run out of stream, naming the
        // field, after reading only the bytes that actually exist.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [1_000_000u32, 1_000_000, 3, 4] {
            buffer.extend_from_slice(&v.to_le_bytes());
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bases"), "{err}");
    }

    #[test]
    fn zero_sized_fields_are_named() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(b"DHD1");
        for v in [5u32, 16, 0, 4] {
            buffer.extend_from_slice(&v.to_le_bytes()); // k = 0
        }
        buffer.extend_from_slice(&1.0f32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("class count k"), "{err}");
    }

    use crate::ServingTasks;

    /// A deployment with both serving tasks configured.
    fn tasked(original: &DeployedModel) -> DeployedModel {
        let mut model = original.clone();
        model
            .set_tasks(ServingTasks {
                top_k: Some(2),
                anomaly_threshold: Some(0.375),
            })
            .unwrap();
        model
    }

    #[test]
    fn task_free_streams_stay_byte_identical_and_tasks_round_trip() {
        // The compatibility contract of version '3': a deployment with no
        // tasks must serialize to the exact pre-task bytes (v1 dense, v2
        // structured), and a tasked deployment must round-trip both its
        // predictions and its task configuration through the v3 stream.
        for structured in [false, true] {
            let (original, data) = if structured {
                structured_deployed()
            } else {
                deployed()
            };
            let mut task_free = Vec::new();
            save_deployed(&original, &mut task_free).unwrap();
            let expected_magic: &[u8] = if structured { b"DHD42\x01" } else { b"DHD41" };
            assert_eq!(&task_free[..expected_magic.len()], expected_magic);
            // Stripping the container reconstructs the exact pre-checksum
            // stream, so pre-task readers keep loading task-free artifacts.
            let legacy_magic: &[u8] = if structured { b"DHD2\x01" } else { b"DHD1" };
            let legacy = strip_container(&task_free);
            assert_eq!(&legacy[..legacy_magic.len()], legacy_magic);

            let with_tasks = tasked(&original);
            let mut buffer = Vec::new();
            save_deployed(&with_tasks, &mut buffer).unwrap();
            let v3_magic: &[u8] = if structured {
                b"DHD43\x01"
            } else {
                b"DHD43\x00"
            };
            assert_eq!(&buffer[..v3_magic.len()], v3_magic);
            let restored = load_deployed(buffer.as_slice()).unwrap();
            assert_eq!(restored.tasks(), with_tasks.tasks());
            for i in 0..data.test.len().min(20) {
                assert_eq!(
                    with_tasks.predict(data.test.sample(i)).unwrap(),
                    restored.predict(data.test.sample(i)).unwrap(),
                    "structured={structured}, sample {i}"
                );
            }

            // Dropping the tasks again reproduces the pre-task bytes
            // exactly.
            let mut cleared = with_tasks.clone();
            cleared.set_tasks(ServingTasks::default()).unwrap();
            let mut second = Vec::new();
            save_deployed(&cleared, &mut second).unwrap();
            assert_eq!(second, task_free, "structured={structured}");
        }
    }

    #[test]
    fn single_task_streams_round_trip() {
        let (original, _) = deployed();
        for tasks in [
            ServingTasks {
                top_k: Some(3),
                anomaly_threshold: None,
            },
            ServingTasks {
                top_k: None,
                anomaly_threshold: Some(-0.125),
            },
        ] {
            let mut model = original.clone();
            model.set_tasks(tasks).unwrap();
            let mut buffer = Vec::new();
            save_deployed(&model, &mut buffer).unwrap();
            let restored = load_deployed(buffer.as_slice()).unwrap();
            assert_eq!(restored.tasks(), tasks);
        }
    }

    /// Serializes a top-k-only tasked deployment; its task section is the
    /// 9 bytes (count u32, kind u8, k u32) right before the 8-byte
    /// checksum trailer.
    fn top_k_only_stream() -> Vec<u8> {
        let (original, _) = deployed();
        let mut model = original;
        model
            .set_tasks(ServingTasks {
                top_k: Some(2),
                anomaly_threshold: None,
            })
            .unwrap();
        let mut buffer = Vec::new();
        save_deployed(&model, &mut buffer).unwrap();
        buffer
    }

    #[test]
    fn unknown_task_kind_fails_closed_and_names_the_field() {
        let mut buffer = top_k_only_stream();
        let kind_at = buffer.len() - 8 - 5;
        buffer[kind_at] = 7;
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("task kind"), "{err}");
    }

    #[test]
    fn truncated_task_section_names_the_offending_field() {
        let buffer = top_k_only_stream();
        // All cuts land before the 8-byte checksum trailer.
        // Cut inside the k payload.
        let err = load_deployed(&buffer[..buffer.len() - 8 - 2]).unwrap_err();
        assert!(err.to_string().contains("top-k task"), "{err}");
        // Cut right after the count: the kind byte itself is missing.
        let err = load_deployed(&buffer[..buffer.len() - 8 - 5]).unwrap_err();
        assert!(err.to_string().contains("task kind"), "{err}");
        // Cut inside the count.
        let err = load_deployed(&buffer[..buffer.len() - 8 - 7]).unwrap_err();
        assert!(err.to_string().contains("task count"), "{err}");
    }

    #[test]
    fn task_count_out_of_range_is_corrupt() {
        for forged in [0u32, 3] {
            let mut buffer = top_k_only_stream();
            let count_at = buffer.len() - 8 - 9;
            buffer[count_at..count_at + 4].copy_from_slice(&forged.to_le_bytes());
            let err = load_deployed(buffer.as_slice()).unwrap_err();
            assert!(err.to_string().contains("task count"), "{forged}: {err}");
        }
    }

    #[test]
    fn duplicate_task_kinds_are_corrupt() {
        let (original, _) = deployed();
        let with_both = tasked(&original);
        let mut buffer = Vec::new();
        save_deployed(&with_both, &mut buffer).unwrap();
        // Section layout: count(4) kind(1) k(4) kind(1) threshold(4), then
        // the 8-byte trailer; turn the anomaly kind into a second top-k
        // kind.
        let second_kind_at = buffer.len() - 8 - 5;
        buffer[second_kind_at] = 0;
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate top-k"), "{err}");
    }

    #[test]
    fn invalid_task_payloads_are_corrupt_and_named() {
        // k = 0 is structurally readable but semantically invalid; the
        // loader must reject it like `set_tasks` would.
        let mut buffer = top_k_only_stream();
        let k_at = buffer.len() - 8 - 4;
        buffer[k_at..k_at + 4].copy_from_slice(&0u32.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("top-k task"), "{err}");

        // A NaN anomaly threshold can never flag anything coherently.
        let (original, _) = deployed();
        let mut model = original;
        model
            .set_tasks(ServingTasks {
                top_k: None,
                anomaly_threshold: Some(0.5),
            })
            .unwrap();
        let mut buffer = Vec::new();
        save_deployed(&model, &mut buffer).unwrap();
        let t_at = buffer.len() - 8 - 4;
        buffer[t_at..t_at + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = load_deployed(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("anomaly threshold task"), "{err}");
    }

    #[test]
    fn persist_error_display() {
        assert!(PersistError::BadMagic.to_string().contains("DHD"));
        assert!(PersistError::Corrupt("x".into()).to_string().contains('x'));
        assert!(PersistError::UnsupportedVersion(b'9')
            .to_string()
            .contains('9'));
        let mismatch = PersistError::ChecksumMismatch {
            stored: 0xdead,
            computed: 0xbeef,
        };
        let text = mismatch.to_string();
        assert!(text.contains("0x000000000000dead"), "{text}");
        assert!(text.contains("0x000000000000beef"), "{text}");
    }

    #[test]
    fn concatenated_streams_load_sequentially() {
        // The v4 loader reads exactly its body + trailer and no further, so
        // back-to-back containers in one stream load one after the other.
        let (original, data) = deployed();
        let mut buffer = Vec::new();
        save_deployed(&original, &mut buffer).unwrap();
        save_deployed(&original, &mut buffer).unwrap();
        let mut cursor = buffer.as_slice();
        let first = load_deployed(&mut cursor).unwrap();
        let second = load_deployed(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(
            first.predict(data.test.sample(0)).unwrap(),
            second.predict(data.test.sample(0)).unwrap()
        );
    }
}
