//! # disthd
//!
//! Reproduction of **DistHD: A Learner-Aware Dynamic Encoding Method for
//! Hyperdimensional Classification** (Wang, Huang, Imani — DAC 2023).
//!
//! DistHD trains a hyperdimensional classifier whose *encoder changes as it
//! learns*.  Each retraining iteration:
//!
//! 1. **Adaptive learning** (Algorithm 1) — similarity-weighted updates of
//!    the class hypervectors over the encoded batch;
//! 2. **Top-2 classification** (§III-B) — every sample is scored against
//!    all classes and categorized *correct* / *partially correct* (true
//!    label ranked 2nd) / *incorrect*;
//! 3. **Undesired-dimension identification** (Algorithm 2) — distance
//!    matrices `M` (partial) and `N` (incorrect) score each dimension by
//!    how strongly it pulls samples toward wrong classes and away from true
//!    ones; the dimensions ranking in the top `R%` of **both** reductions
//!    are selected;
//! 4. **Dimension regeneration** (§III-C) — selected dimensions get fresh
//!    random base vectors, their model entries are zeroed, and only those
//!    columns of the encoded batch are recomputed.
//!
//! ## Quickstart
//!
//! ```
//! use disthd::{DistHd, DistHdConfig};
//! use disthd_datasets::suite::{PaperDataset, SuiteConfig};
//! use disthd_eval::Classifier;
//!
//! let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
//! let config = DistHdConfig {
//!     dim: 256,
//!     epochs: 8,
//!     ..DistHdConfig::default()
//! };
//! let mut model = DistHd::new(config, data.train.feature_dim(), data.train.class_count());
//! model.fit(&data.train, None)?;
//! let accuracy = model.accuracy(&data.test)?;
//! assert!(accuracy > 1.0 / 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Beyond offline training, the crate covers the full model lifecycle:
//! [`stream`] adds online learning over streaming mini-batches
//! ([`DistHd::partial_fit`]), [`DeployedModel`] freezes a trained model at
//! low precision for the edge, and [`io`] persists deployments in the
//! versioned `DHD1` binary format that the `disthd_serve` crate loads and
//! serves.

#![deny(missing_docs)]

mod config;
mod deploy;
mod distance;
pub mod io;
pub mod merge;
pub mod stream;
mod top2;
mod trainer;

pub use config::{DistHdConfig, WeightParams};
pub use deploy::{DeployedModel, ServingTasks};
pub use distance::{select_undesired_dims, DimensionScores};
pub use disthd_hd::encoder::EncoderBackend;
pub use merge::MergeStats;
pub use stream::{ErrorFeedbackQuantizer, StreamConfig, StreamStats};
pub use top2::{categorize, categorize_batch, Top2Outcome};
pub use trainer::{DistHd, FitReport};
