//! Exact distributed training: shard-local bundling + associative merge.
//!
//! Algorithm 1's adaptive refinement is inherently *sequential* — each
//! update depends on the model produced by the previous sample — so it
//! cannot be distributed with exact equality.  The **bundling** half of
//! DistHD training (the one-pass class-hypervector accumulation that
//! `bundle_init` performs, and that classic HDC uses as its entire
//! training rule) is a sum over samples, and sums *are* associative and
//! commutative — but not in `f32`, where `(a + b) + c ≠ a + (b + c)`.
//!
//! This module therefore accumulates in **fixed-point integers**: every
//! encoded component is rounded once, deterministically, to a 2⁻³²-scaled
//! `i128`, and everything downstream of that rounding is exact integer
//! arithmetic.  The result (see `DESIGN.md` §11):
//!
//! * [`DistHd::fit_shard`] — absorb a labelled batch into the
//!   accumulator, in any order, on any shard;
//! * [`DistHd::merge`] — combine two shard-trained models by integer
//!   addition, plus their mistake statistics and scored windows;
//! * any partition of the data over any number of shards, merged in any
//!   order or tree shape, yields **bit-identical** class memory and
//!   predictions to a single node absorbing the concatenated stream.
//!
//! Shard mode never regenerates dimensions (every shard must keep the
//! identical seeded encoder for encoded rows to be commensurable), and it
//! is mutually exclusive with both [`Classifier::fit`] and
//! [`DistHd::partial_fit`] on the same model instance: those paths mutate
//! the encoder and the model in order-dependent ways that would silently
//! break merge exactness, so mixing them fails closed.  After merging,
//! [`DistHd::refine_merged`] can run Algorithm 1 epochs over the combined
//! scored window — an optional, explicitly *non-mergeable* refinement.
//!
//! [`Classifier::fit`]: disthd_eval::Classifier::fit

use crate::trainer::DistHd;
use disthd_datasets::Dataset;
use disthd_eval::ModelError;
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::Encoder;
use disthd_hd::learn::adaptive_epoch;
use disthd_hd::ClassModel;
use disthd_linalg::Matrix;
use std::collections::VecDeque;

/// Fixed-point scale: encoded `f32` components are rounded to multiples
/// of 2⁻³².  One rounding per (sample, dimension); exact integer
/// arithmetic afterwards.
const FIXED_SCALE: f64 = 4_294_967_296.0;

/// Most recent samples retained per shard for post-merge refinement.
const SHARD_WINDOW: usize = 1024;

/// Rounds one encoded component to the shared fixed-point grid.
///
/// `f32 → f64` is exact and `* 2³²` is a power-of-two scaling, so the
/// only rounding is the final `.round()` — identical on every shard.
fn to_fixed(v: f32) -> i128 {
    (v as f64 * FIXED_SCALE).round() as i128
}

/// Integer accumulator state of shard-mode training.
///
/// The class memory and encoding center are *derived* from this state
/// (see [`DistHd::fit_shard`]); the state itself is the mergeable value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardState {
    /// Per-class, per-dimension fixed-point sums of encoded samples
    /// (`class_count × dim`, row-major).
    class_sums: Vec<i128>,
    /// Samples absorbed per class.
    class_counts: Vec<u64>,
    /// Per-dimension fixed-point sums over *all* absorbed samples
    /// (numerator of the deferred encoding center).
    dim_sums: Vec<i128>,
    /// Total samples absorbed.
    total: u64,
    /// Prequential mistakes across all absorbed batches.
    mistakes: u64,
    /// Most recent raw feature rows (for post-merge refinement).
    window_features: VecDeque<Vec<f32>>,
    /// Labels aligned with `window_features`.
    window_labels: VecDeque<usize>,
}

impl ShardState {
    fn new(class_count: usize, dim: usize) -> Self {
        Self {
            class_sums: vec![0; class_count * dim],
            class_counts: vec![0; class_count],
            dim_sums: vec![0; dim],
            total: 0,
            mistakes: 0,
            window_features: VecDeque::new(),
            window_labels: VecDeque::new(),
        }
    }
}

/// Combined statistics of a shard-mode model (see [`DistHd::shard_report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Samples absorbed across all shards merged into this model.
    pub samples: u64,
    /// Prequential mistakes accumulated across all merged shards (each
    /// batch scored by its shard's model as it stood before absorbing it).
    pub mistakes: u64,
    /// Samples currently held in the combined scored window.
    pub window_len: usize,
}

impl MergeStats {
    /// Prequential accuracy over all merged shards (`0.0` before any
    /// sample).
    pub fn accuracy(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        1.0 - self.mistakes as f64 / self.samples as f64
    }
}

impl DistHd {
    /// Absorbs one labelled batch into this model's shard accumulator and
    /// refreshes the derived class memory + encoding center.
    ///
    /// The class memory after any sequence of `fit_shard` /
    /// [`DistHd::merge`] calls is a pure function of the *multiset* of
    /// absorbed samples — order, batching and sharding cannot change a
    /// bit of it.  Prequential mistake counts (each batch scored before
    /// being absorbed) are shard-local diagnostics and do not feed back
    /// into the model.
    ///
    /// # Errors
    ///
    /// [`ModelError::Incompatible`] when the batch shape disagrees with
    /// the model, or when this model has already been trained through the
    /// non-mergeable [`fit`](disthd_eval::Classifier::fit) /
    /// [`DistHd::partial_fit`] paths.
    pub fn fit_shard(&mut self, batch: &Dataset) -> Result<MergeStats, ModelError> {
        if batch.feature_dim() != self.encoder.input_dim() {
            return Err(ModelError::Incompatible(format!(
                "expected {} features, shard batch has {}",
                self.encoder.input_dim(),
                batch.feature_dim()
            )));
        }
        if batch.class_count() != self.class_count {
            return Err(ModelError::Incompatible(format!(
                "expected {} classes, shard batch has {}",
                self.class_count,
                batch.class_count()
            )));
        }
        if self.stream.is_some() {
            return Err(ModelError::Incompatible(
                "model has partial_fit stream state; shard training would break \
                 merge exactness"
                    .into(),
            ));
        }
        if self.model.is_some() && self.shard.is_none() {
            return Err(ModelError::Incompatible(
                "model was trained with the non-mergeable fit path; shard \
                 training cannot extend it"
                    .into(),
            ));
        }

        let dim = self.config.dim;
        let mut state = self
            .shard
            .take()
            .unwrap_or_else(|| ShardState::new(self.class_count, dim));

        if !batch.is_empty() {
            let encoded = self.encoder.encode_batch(batch.features())?;

            // Prequential scoring against the model derived from previous
            // absorptions (no model yet on the very first batch: those
            // samples are scored as unscorable, not as mistakes).
            if state.total > 0 {
                let center = self.center.as_ref().expect("derived with the model");
                let model = self.model.as_mut().expect("total > 0 implies a model");
                let mut centered = encoded.clone();
                center.apply_batch(&mut centered);
                let predictions = model.predict_batch(&centered)?;
                state.mistakes += predictions
                    .iter()
                    .zip(batch.labels())
                    .filter(|(p, l)| p != l)
                    .count() as u64;
            }

            // Exact accumulation: one deterministic rounding per value,
            // integer sums afterwards.
            for i in 0..batch.len() {
                let class = batch.label(i);
                let row = encoded.row(i);
                let sums = &mut state.class_sums[class * dim..(class + 1) * dim];
                for (d, &v) in row.iter().enumerate() {
                    let q = to_fixed(v);
                    sums[d] += q;
                    state.dim_sums[d] += q;
                }
                state.class_counts[class] += 1;

                state.window_features.push_back(batch.sample(i).to_vec());
                state.window_labels.push_back(class);
            }
            while state.window_features.len() > SHARD_WINDOW {
                state.window_features.pop_front();
                state.window_labels.pop_front();
            }
            state.total += batch.len() as u64;
        }

        let stats = MergeStats {
            samples: state.total,
            mistakes: state.mistakes,
            window_len: state.window_features.len(),
        };
        self.shard = Some(state);
        self.rebuild_from_shard();
        Ok(stats)
    }

    /// Merges another shard-trained model into this one.
    ///
    /// Class memories are combined by exact integer addition of the
    /// fixed-point accumulators; mistake statistics add; the scored
    /// windows are concatenated (other's samples treated as newer) and
    /// re-bounded.  Merging is associative and commutative in the derived
    /// class memory and predictions — see the property tests.
    ///
    /// # Errors
    ///
    /// [`ModelError::Incompatible`] when either side lacks shard state
    /// (trained through `fit`/`partial_fit`, or untouched and unfitted is
    /// fine — an empty accumulator is the identity) or the configurations
    /// differ (dimensionality, seed, encoder backend, learning knobs).
    pub fn merge(&mut self, other: &DistHd) -> Result<MergeStats, ModelError> {
        if self.config != other.config {
            return Err(ModelError::Incompatible(
                "cannot merge shards trained under different configurations".into(),
            ));
        }
        if self.class_count != other.class_count
            || self.encoder.input_dim() != other.encoder.input_dim()
        {
            return Err(ModelError::Incompatible(
                "cannot merge shards with different model shapes".into(),
            ));
        }
        if self.stream.is_some() || other.stream.is_some() {
            return Err(ModelError::Incompatible(
                "cannot merge models carrying partial_fit stream state".into(),
            ));
        }
        if (self.model.is_some() && self.shard.is_none())
            || (other.model.is_some() && other.shard.is_none())
        {
            return Err(ModelError::Incompatible(
                "cannot merge a model trained with the non-mergeable fit path".into(),
            ));
        }

        let dim = self.config.dim;
        let mut state = self
            .shard
            .take()
            .unwrap_or_else(|| ShardState::new(self.class_count, dim));
        if let Some(other_state) = other.shard.as_ref() {
            for (acc, &v) in state.class_sums.iter_mut().zip(&other_state.class_sums) {
                *acc += v;
            }
            for (acc, &v) in state.class_counts.iter_mut().zip(&other_state.class_counts) {
                *acc += v;
            }
            for (acc, &v) in state.dim_sums.iter_mut().zip(&other_state.dim_sums) {
                *acc += v;
            }
            state.total += other_state.total;
            state.mistakes += other_state.mistakes;
            state
                .window_features
                .extend(other_state.window_features.iter().cloned());
            state
                .window_labels
                .extend(other_state.window_labels.iter().copied());
            while state.window_features.len() > SHARD_WINDOW {
                state.window_features.pop_front();
                state.window_labels.pop_front();
            }
        }

        let stats = MergeStats {
            samples: state.total,
            mistakes: state.mistakes,
            window_len: state.window_features.len(),
        };
        self.shard = Some(state);
        self.rebuild_from_shard();
        Ok(stats)
    }

    /// Combined statistics of the shard accumulator, if this model is in
    /// shard mode.
    pub fn shard_report(&self) -> Option<MergeStats> {
        self.shard.as_ref().map(|s| MergeStats {
            samples: s.total,
            mistakes: s.mistakes,
            window_len: s.window_features.len(),
        })
    }

    /// Runs `epochs` Algorithm 1 adaptive passes over the merged scored
    /// window and returns the final pass's training accuracy.
    ///
    /// This is the optional *non-mergeable* refinement step after a
    /// shard merge: it leaves the exact-merge regime (the refined model
    /// depends on window order), so the accumulator is dropped and
    /// further [`DistHd::fit_shard`] / [`DistHd::merge`] calls fail
    /// closed.
    ///
    /// # Errors
    ///
    /// [`ModelError::NotFitted`] when the model has no shard state or an
    /// empty window.
    pub fn refine_merged(&mut self, epochs: usize) -> Result<f64, ModelError> {
        let state = self.shard.take().ok_or(ModelError::NotFitted)?;
        if state.window_features.is_empty() {
            self.shard = Some(state);
            return Err(ModelError::NotFitted);
        }
        let refs: Vec<&[f32]> = state.window_features.iter().map(Vec::as_slice).collect();
        let window = Matrix::from_row_slices(self.encoder.input_dim(), &refs)?;
        let labels: Vec<usize> = state.window_labels.iter().copied().collect();

        let mut encoded = self.encoder.encode_batch(&window)?;
        let center = self.center.as_ref().expect("shard state implies a center");
        center.apply_batch(&mut encoded);
        let model = self.model.as_mut().expect("shard state implies a model");

        let mut accuracy = 0.0;
        for _ in 0..epochs {
            let stats = adaptive_epoch(model, &encoded, &labels, self.config.learning_rate)?;
            accuracy = stats.accuracy();
        }
        Ok(accuracy)
    }

    /// Derives the encoding center and class memory from the integer
    /// accumulators — a pure function of the merged state, evaluated in
    /// `f64` with one final rounding to `f32` per value.
    fn rebuild_from_shard(&mut self) {
        let state = self.shard.as_ref().expect("caller just stored the state");
        if state.total == 0 {
            return;
        }
        let dim = self.config.dim;
        let total = state.total as f64;
        let means_f64: Vec<f64> = state
            .dim_sums
            .iter()
            .map(|&s| (s as f64 / FIXED_SCALE) / total)
            .collect();
        let classes = Matrix::from_fn(self.class_count, dim, |c, d| {
            let sum = state.class_sums[c * dim + d] as f64 / FIXED_SCALE;
            (sum - state.class_counts[c] as f64 * means_f64[d]) as f32
        });
        self.center = Some(EncodingCenter::from_means(
            means_f64.iter().map(|&m| m as f32).collect(),
        ));
        self.model = Some(ClassModel::from_matrix(classes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistHdConfig;
    use disthd_eval::Classifier;
    use disthd_hd::encoder::EncoderBackend;

    fn small_data() -> disthd_datasets::TrainTest {
        disthd_datasets::suite::PaperDataset::Diabetes
            .generate(&disthd_datasets::suite::SuiteConfig::at_scale(0.001))
            .unwrap()
    }

    fn config(backend: EncoderBackend) -> DistHdConfig {
        DistHdConfig {
            dim: 256,
            encoder_backend: backend,
            ..Default::default()
        }
    }

    fn chunks(data: &Dataset, shards: usize) -> Vec<Dataset> {
        let per = data.len().div_ceil(shards);
        (0..shards)
            .map(|s| {
                let lo = (s * per).min(data.len());
                let hi = ((s + 1) * per).min(data.len());
                data.select(&(lo..hi).collect::<Vec<_>>())
            })
            .collect()
    }

    /// FNV-1a over a prediction vector — the hash the CI merge gate
    /// compares across shard counts.
    fn fnv1a(predictions: &[usize]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &p in predictions {
            for byte in (p as u64).to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// DISTHD_THREADS pins the sweep to one thread count (the CI scenario
    /// job runs the gate once per setting); unset, both are covered.
    fn thread_counts() -> Vec<usize> {
        match std::env::var("DISTHD_THREADS") {
            Ok(v) => vec![v.parse().expect("DISTHD_THREADS must be an integer")],
            Err(_) => vec![1, 4],
        }
    }

    fn train_sharded(data: &Dataset, backend: EncoderBackend, shards: usize) -> DistHd {
        let parts = chunks(data, shards);
        let mut trained: Vec<DistHd> = parts
            .iter()
            .map(|part| {
                let mut shard =
                    DistHd::new(config(backend), data.feature_dim(), data.class_count());
                shard.fit_shard(part).unwrap();
                shard
            })
            .collect();
        let mut merged = trained.remove(0);
        for other in &trained {
            merged.merge(other).unwrap();
        }
        merged
    }

    #[test]
    fn shard_train_then_merge_is_bit_identical_to_single_node() {
        // The acceptance gate: shard counts 1/2/4/8 × both encoder
        // backends × both thread counts must produce identical class
        // memory bits and identical prediction hashes.
        let data = small_data();
        for backend in [EncoderBackend::Dense, EncoderBackend::Structured] {
            for threads in thread_counts() {
                disthd_linalg::parallel::with_thread_count(threads, || {
                    let mut single = train_sharded(&data.train, backend, 1);
                    let single_classes =
                        single.class_model().unwrap().classes().as_slice().to_vec();
                    let single_hash = fnv1a(&single.predict(&data.test).unwrap());
                    for shards in [2usize, 4, 8] {
                        let mut merged = train_sharded(&data.train, backend, shards);
                        assert_eq!(
                            merged.class_model().unwrap().classes().as_slice(),
                            single_classes.as_slice(),
                            "{backend:?}: class memory diverged at {shards} shards, \
                             {threads} threads"
                        );
                        let hash = fnv1a(&merged.predict(&data.test).unwrap());
                        assert_eq!(
                            hash, single_hash,
                            "{backend:?}: prediction hash diverged at {shards} shards, \
                             {threads} threads"
                        );
                        let report = merged.shard_report().unwrap();
                        assert_eq!(report.samples as usize, data.train.len());
                    }
                });
            }
        }
    }

    #[test]
    fn merge_order_does_not_change_the_model() {
        let data = small_data();
        let parts = chunks(&data.train, 4);
        let shard = |part: &Dataset| {
            let mut m = DistHd::new(
                config(EncoderBackend::Dense),
                data.train.feature_dim(),
                data.train.class_count(),
            );
            m.fit_shard(part).unwrap();
            m
        };
        let trained: Vec<DistHd> = parts.iter().map(shard).collect();

        // Left fold: ((0 + 1) + 2) + 3.
        let mut forward = trained[0].clone();
        for other in &trained[1..] {
            forward.merge(other).unwrap();
        }
        // Reverse fold: ((3 + 2) + 1) + 0.
        let mut backward = trained[3].clone();
        for other in trained[..3].iter().rev() {
            backward.merge(other).unwrap();
        }
        // Balanced tree: (0 + 1) + (2 + 3).
        let mut left = trained[0].clone();
        left.merge(&trained[1]).unwrap();
        let mut right = trained[2].clone();
        right.merge(&trained[3]).unwrap();
        left.merge(&right).unwrap();

        let reference = forward.class_model().unwrap().classes().as_slice();
        assert_eq!(
            backward.class_model().unwrap().classes().as_slice(),
            reference
        );
        assert_eq!(left.class_model().unwrap().classes().as_slice(), reference);
    }

    #[test]
    fn merged_bundling_model_beats_chance() {
        let data = small_data();
        let mut merged = train_sharded(&data.train, EncoderBackend::Dense, 4);
        let accuracy = merged.accuracy(&data.test).unwrap();
        assert!(accuracy > 0.4, "merged bundling accuracy {accuracy}");
        let report = merged.shard_report().unwrap();
        assert!(report.accuracy() > 0.0);
        assert!(report.window_len > 0);
    }

    #[test]
    fn refine_merged_runs_adaptive_epochs_and_leaves_shard_mode() {
        let data = small_data();
        let mut merged = train_sharded(&data.train, EncoderBackend::Dense, 2);
        let before = merged.accuracy(&data.test).unwrap();
        let train_acc = merged.refine_merged(4).unwrap();
        assert!(train_acc > 0.0);
        let after = merged.accuracy(&data.test).unwrap();
        assert!(
            after >= before - 0.05,
            "refinement degraded accuracy {before} -> {after}"
        );
        // Refinement leaves the exact-merge regime.
        assert!(merged.shard_report().is_none());
        assert!(merged.fit_shard(&data.train).is_err());
    }

    #[test]
    fn shard_mode_is_mutually_exclusive_with_fit_and_partial_fit() {
        let data = small_data();
        let fresh = || {
            DistHd::new(
                config(EncoderBackend::Dense),
                data.train.feature_dim(),
                data.train.class_count(),
            )
        };

        // fit → fit_shard fails closed.
        let mut fitted = fresh();
        fitted.fit(&data.train, None).unwrap();
        assert!(fitted.fit_shard(&data.train).is_err());

        // partial_fit → fit_shard fails closed.
        let mut streamed = fresh();
        streamed.partial_fit(&data.train).unwrap();
        assert!(streamed.fit_shard(&data.train).is_err());

        // fit_shard → partial_fit fails closed.
        let mut sharded = fresh();
        sharded.fit_shard(&data.train).unwrap();
        assert!(sharded.partial_fit(&data.train).is_err());

        // Merging a fit-trained or stream-trained model fails closed.
        let mut target = fresh();
        target.fit_shard(&data.train).unwrap();
        assert!(target.merge(&fitted).is_err());
        assert!(target.merge(&streamed).is_err());

        // fit clears shard state (full batch retrain supersedes it).
        let mut retrained = fresh();
        retrained.fit_shard(&data.train).unwrap();
        assert!(retrained.shard_report().is_some());
        retrained.fit(&data.train, None).unwrap();
        assert!(retrained.shard_report().is_none());
    }

    #[test]
    fn merge_validates_compatibility() {
        let data = small_data();
        let mut a = DistHd::new(
            config(EncoderBackend::Dense),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        a.fit_shard(&data.train).unwrap();

        // Different dimensionality.
        let mut cfg = config(EncoderBackend::Dense);
        cfg.dim = 128;
        let b = DistHd::new(cfg, data.train.feature_dim(), data.train.class_count());
        assert!(a.merge(&b).is_err());

        // Different backend.
        let c = DistHd::new(
            config(EncoderBackend::Structured),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        assert!(a.merge(&c).is_err());

        // An untouched same-config model is the merge identity.
        let identity = DistHd::new(
            config(EncoderBackend::Dense),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        let before = a.class_model().unwrap().classes().as_slice().to_vec();
        a.merge(&identity).unwrap();
        assert_eq!(
            a.class_model().unwrap().classes().as_slice(),
            before.as_slice()
        );

        // Shape mismatch (different feature arity, same config).
        let mut d = DistHd::new(config(EncoderBackend::Dense), 7, data.train.class_count());
        assert!(d.merge(&a).is_err());
    }

    #[test]
    fn fit_shard_validates_input_and_tolerates_empty_batches() {
        let data = small_data();
        let mut model = DistHd::new(
            config(EncoderBackend::Dense),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        let wrong = DistHd::new(config(EncoderBackend::Dense), 7, 3);
        let mut wrong = wrong;
        assert!(wrong.fit_shard(&data.train).is_err());

        let empty = data.train.select(&[]);
        let stats = model.fit_shard(&empty).unwrap();
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.accuracy(), 0.0);
        // Empty absorption leaves no derived model.
        assert!(model.class_model().is_none());

        model.fit_shard(&data.train).unwrap();
        let stats = model.fit_shard(&data.train).unwrap();
        assert_eq!(stats.samples as usize, 2 * data.train.len());
        // The second pass was scored prequentially against the first.
        assert!(stats.accuracy() > 0.0);
    }
}
