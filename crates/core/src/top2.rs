//! Top-2 outcome categorization (§III-B / §III-C).

use disthd_hd::ClassModel;
use disthd_linalg::{Matrix, ShapeError};

/// How a sample fared under top-2 classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Top2Outcome {
    /// True label is the most similar class — contributes nothing to
    /// dimension selection.
    Correct,
    /// True label is the *second* most similar class; the most similar
    /// (wrong) class is recorded.
    Partial {
        /// The top-1 (wrong) class.
        predicted: usize,
    },
    /// True label is in neither of the top two.
    Incorrect {
        /// The top-1 (wrong) class.
        first: usize,
        /// The top-2 (also wrong) class.
        second: usize,
    },
}

impl Top2Outcome {
    /// Whether this outcome feeds Algorithm 2 (i.e. is not `Correct`).
    pub fn is_mistake(&self) -> bool {
        !matches!(self, Top2Outcome::Correct)
    }
}

/// Categorizes every row of `encoded` against the partially trained model.
///
/// Returns one [`Top2Outcome`] per sample, in order.
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != model.dim()`.
///
/// # Panics
///
/// Panics if `labels.len() != encoded.rows()` or the model has fewer than
/// two classes.
pub fn categorize(
    model: &mut ClassModel,
    encoded: &Matrix,
    labels: &[usize],
) -> Result<Vec<Top2Outcome>, ShapeError> {
    assert_eq!(labels.len(), encoded.rows(), "labels/sample count mismatch");
    assert!(model.class_count() >= 2, "top-2 needs at least two classes");
    let mut outcomes = Vec::with_capacity(labels.len());
    for (i, &label) in labels.iter().enumerate() {
        let top = model.top2(encoded.row(i))?;
        let outcome = if top.first.class == label {
            Top2Outcome::Correct
        } else if top.second.class == label {
            Top2Outcome::Partial {
                predicted: top.first.class,
            }
        } else {
            Top2Outcome::Incorrect {
                first: top.first.class,
                second: top.second.class,
            }
        };
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model with three orthogonal class prototypes.
    fn model() -> ClassModel {
        let mut m = ClassModel::new(3, 3);
        m.bundle_into(0, &[1.0, 0.0, 0.0]);
        m.bundle_into(1, &[0.0, 1.0, 0.0]);
        m.bundle_into(2, &[0.0, 0.0, 1.0]);
        m
    }

    #[test]
    fn categorizes_all_three_outcomes() {
        let mut m = model();
        // Sample 0: closest to class 0, label 0 -> Correct.
        // Sample 1: closest to 0, second 1, label 1 -> Partial.
        // Sample 2: closest to 0, second 1, label 2 -> Incorrect.
        let encoded = Matrix::from_rows(&[
            vec![1.0, 0.1, 0.0],
            vec![1.0, 0.6, 0.0],
            vec![1.0, 0.6, 0.1],
        ])
        .unwrap();
        let outcomes = categorize(&mut m, &encoded, &[0, 1, 2]).unwrap();
        assert_eq!(outcomes[0], Top2Outcome::Correct);
        assert_eq!(outcomes[1], Top2Outcome::Partial { predicted: 0 });
        assert_eq!(
            outcomes[2],
            Top2Outcome::Incorrect {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn is_mistake_flags_non_correct() {
        assert!(!Top2Outcome::Correct.is_mistake());
        assert!(Top2Outcome::Partial { predicted: 1 }.is_mistake());
        assert!(Top2Outcome::Incorrect {
            first: 0,
            second: 1
        }
        .is_mistake());
    }

    #[test]
    fn shape_mismatch_is_error() {
        let mut m = model();
        let encoded = Matrix::zeros(1, 5);
        assert!(categorize(&mut m, &encoded, &[0]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_model_panics() {
        let mut m = ClassModel::new(1, 2);
        let encoded = Matrix::zeros(1, 2);
        categorize(&mut m, &encoded, &[0]).unwrap();
    }

    #[test]
    fn exact_tie_resolves_to_lowest_class_index() {
        // The sample is equidistant from classes 0 and 1; top-1 must
        // deterministically be the lower index, so the taxonomy depends on
        // which side of the tie the true label sits.
        let mut m = model();
        let encoded = Matrix::from_rows(&[vec![0.5, 0.5, 0.0]]).unwrap();
        // Label 0: the tie winner is class 0 -> Correct.
        let outcomes = categorize(&mut m, &encoded, &[0]).unwrap();
        assert_eq!(outcomes[0], Top2Outcome::Correct);
        // Label 1: class 0 wins the tie, the true label ranks second ->
        // Partial, with the tie winner recorded as the prediction.
        let outcomes = categorize(&mut m, &encoded, &[1]).unwrap();
        assert_eq!(outcomes[0], Top2Outcome::Partial { predicted: 0 });
    }

    #[test]
    fn three_way_tie_pushes_highest_index_label_out_of_top2() {
        // All three classes tie; top-2 keeps indices 0 and 1, so label 2 is
        // Incorrect even though its similarity equals the winners'.
        let mut m = model();
        let third = 1.0 / 3.0f32.sqrt();
        let encoded = Matrix::from_rows(&[vec![third, third, third]]).unwrap();
        let outcomes = categorize(&mut m, &encoded, &[2]).unwrap();
        assert_eq!(
            outcomes[0],
            Top2Outcome::Incorrect {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn two_class_model_never_produces_incorrect() {
        // With exactly two classes the top-2 set covers every class, so the
        // true label is always ranked first or second: the taxonomy
        // degenerates to Correct/Partial and Incorrect is unreachable.
        let mut m = ClassModel::new(2, 2);
        m.bundle_into(0, &[1.0, 0.0]);
        m.bundle_into(1, &[0.0, 1.0]);
        let encoded = Matrix::from_rows(&[
            vec![1.0, 0.2],
            vec![0.2, 1.0],
            vec![0.5, 0.5],
            vec![-1.0, -1.0],
        ])
        .unwrap();
        for label in 0..2 {
            let outcomes = categorize(&mut m, &encoded, &[label; 4]).unwrap();
            assert!(outcomes
                .iter()
                .all(|o| !matches!(o, Top2Outcome::Incorrect { .. })));
        }
    }

    #[test]
    fn tied_partial_still_records_the_tie_winner() {
        // Regression guard for the Algorithm 2 inputs: the Partial outcome
        // must carry the class that actually outranked the label, not the
        // label itself, even under a tie.
        let mut m = model();
        let encoded = Matrix::from_rows(&[vec![0.0, 0.7, 0.7]]).unwrap();
        let outcomes = categorize(&mut m, &encoded, &[2]).unwrap();
        match outcomes[0] {
            Top2Outcome::Partial { predicted } => assert_eq!(predicted, 1),
            other => panic!("expected Partial, got {other:?}"),
        }
    }
}
