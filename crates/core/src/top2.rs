//! Top-2 outcome categorization (§III-B / §III-C).

use disthd_hd::{ClassModel, TopK};
use disthd_linalg::{Matrix, ShapeError};

/// How a sample fared under top-2 classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Top2Outcome {
    /// True label is the most similar class — contributes nothing to
    /// dimension selection.
    Correct,
    /// True label is the *second* most similar class; the most similar
    /// (wrong) class is recorded.
    Partial {
        /// The top-1 (wrong) class.
        predicted: usize,
    },
    /// True label is in neither of the top two.
    Incorrect {
        /// The top-1 (wrong) class.
        first: usize,
        /// The top-2 (also wrong) class.
        second: usize,
    },
}

impl Top2Outcome {
    /// Whether this outcome feeds Algorithm 2 (i.e. is not `Correct`).
    pub fn is_mistake(&self) -> bool {
        !matches!(self, Top2Outcome::Correct)
    }
}

/// Categorizes every row of `encoded` against the partially trained model,
/// one sample at a time.
///
/// Returns one [`Top2Outcome`] per sample, in order.  This is the scalar
/// reference path — the trainer uses [`categorize_batch`], which computes
/// the same taxonomy from one batched GEMM.  The two paths sum the same
/// products in different orders (per-sample dots are 4-way unrolled, the
/// GEMM is a single ascending chain), so scores can differ in their final
/// ulps and a sample whose top-2 gap is below that noise could in
/// principle be categorized differently; on real score distributions the
/// taxonomies agree (asserted by a parity test and re-checked at runtime
/// by the `throughput` binary).
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != model.dim()`.
///
/// # Panics
///
/// Panics if `labels.len() != encoded.rows()` or the model has fewer than
/// two classes.
pub fn categorize(
    model: &mut ClassModel,
    encoded: &Matrix,
    labels: &[usize],
) -> Result<Vec<Top2Outcome>, ShapeError> {
    assert_eq!(labels.len(), encoded.rows(), "labels/sample count mismatch");
    assert!(model.class_count() >= 2, "top-2 needs at least two classes");
    let mut outcomes = Vec::with_capacity(labels.len());
    for (i, &label) in labels.iter().enumerate() {
        let top = model.top2(encoded.row(i))?;
        outcomes.push(outcome_of(top, label));
    }
    Ok(outcomes)
}

/// Batched top-2 categorization: one `encoded · Nᵀ` GEMM over the whole
/// batch followed by a row-wise top-2 scan.
///
/// Replaces the per-sample matvec loop of [`categorize`] on the training
/// hot path — the cache-blocked parallel product streams the class matrix
/// once per column tile instead of once per sample, and the scan is a
/// single pass over the `samples × classes` score matrix.  The tie-break
/// *rule* (lower class index wins on equal scores) is identical to the
/// per-sample path, though the two paths' scores may differ in their last
/// ulps (see [`categorize`]); because the backend is deterministic the
/// outcomes of this function are bit-identical at any thread count.
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != model.dim()`.
///
/// # Panics
///
/// Panics if `labels.len() != encoded.rows()` or the model has fewer than
/// two classes.
pub fn categorize_batch(
    model: &mut ClassModel,
    encoded: &Matrix,
    labels: &[usize],
) -> Result<Vec<Top2Outcome>, ShapeError> {
    assert_eq!(labels.len(), encoded.rows(), "labels/sample count mismatch");
    assert!(model.class_count() >= 2, "top-2 needs at least two classes");
    let scores = model.similarity_matrix(encoded)?;
    Ok(scores
        .iter_rows()
        .zip(labels)
        .map(|(row, &label)| outcome_of(TopK::from_scores(row), label))
        .collect())
}

/// Maps a top-2 query result and the true label onto the §III-B taxonomy.
fn outcome_of(top: TopK, label: usize) -> Top2Outcome {
    if top.first.class == label {
        Top2Outcome::Correct
    } else if top.second.class == label {
        Top2Outcome::Partial {
            predicted: top.first.class,
        }
    } else {
        Top2Outcome::Incorrect {
            first: top.first.class,
            second: top.second.class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model with three orthogonal class prototypes.
    fn model() -> ClassModel {
        let mut m = ClassModel::new(3, 3);
        m.bundle_into(0, &[1.0, 0.0, 0.0]);
        m.bundle_into(1, &[0.0, 1.0, 0.0]);
        m.bundle_into(2, &[0.0, 0.0, 1.0]);
        m
    }

    #[test]
    fn categorizes_all_three_outcomes() {
        let mut m = model();
        // Sample 0: closest to class 0, label 0 -> Correct.
        // Sample 1: closest to 0, second 1, label 1 -> Partial.
        // Sample 2: closest to 0, second 1, label 2 -> Incorrect.
        let encoded = Matrix::from_rows(&[
            vec![1.0, 0.1, 0.0],
            vec![1.0, 0.6, 0.0],
            vec![1.0, 0.6, 0.1],
        ])
        .unwrap();
        let outcomes = categorize(&mut m, &encoded, &[0, 1, 2]).unwrap();
        assert_eq!(outcomes[0], Top2Outcome::Correct);
        assert_eq!(outcomes[1], Top2Outcome::Partial { predicted: 0 });
        assert_eq!(
            outcomes[2],
            Top2Outcome::Incorrect {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn batch_categorization_matches_per_sample_path() {
        let mut m = model();
        // A spread of clear wins, partials, incorrects and exact ties.
        let encoded = Matrix::from_rows(&[
            vec![1.0, 0.1, 0.0],
            vec![1.0, 0.6, 0.0],
            vec![1.0, 0.6, 0.1],
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.7, 0.7],
            vec![-0.2, 0.3, 0.9],
        ])
        .unwrap();
        let labels = [0usize, 1, 2, 1, 2, 0];
        let per_sample = categorize(&mut m, &encoded, &labels).unwrap();
        let batched = categorize_batch(&mut m, &encoded, &labels).unwrap();
        assert_eq!(per_sample, batched);
    }

    #[test]
    fn batch_matches_per_sample_beyond_the_dot_unroll_width() {
        // dim >= 4 engages the 4-way-unrolled accumulation in the
        // per-sample dot product, whose summation order differs from the
        // GEMM's single ascending chain — the taxonomies must still agree
        // on realistic (non-sub-ulp-tied) scores.
        let mut m = ClassModel::new(4, 24);
        for c in 0..4 {
            let proto: Vec<f32> = (0..24)
                .map(|d| ((c * 24 + d) as f32 * 0.61).sin())
                .collect();
            m.bundle_into(c, &proto);
        }
        let encoded = Matrix::from_fn(41, 24, |r, d| ((r * 24 + d) as f32 * 0.23).cos());
        let labels: Vec<usize> = (0..41).map(|i| i % 4).collect();
        let per_sample = categorize(&mut m, &encoded, &labels).unwrap();
        let batched = categorize_batch(&mut m, &encoded, &labels).unwrap();
        assert_eq!(per_sample, batched);
    }

    #[test]
    fn batch_categorization_is_identical_across_thread_counts() {
        let mut m = model();
        let encoded = Matrix::from_fn(37, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let labels: Vec<usize> = (0..37).map(|i| i % 3).collect();
        let serial = disthd_linalg::parallel::with_thread_count(1, || {
            categorize_batch(&mut m, &encoded, &labels).unwrap()
        });
        for threads in [2usize, 8] {
            let parallel = disthd_linalg::parallel::with_thread_count(threads, || {
                categorize_batch(&mut m, &encoded, &labels).unwrap()
            });
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn batch_ties_resolve_to_lowest_class_index() {
        // Mirror of the per-sample tie taxonomy: the batch path must break
        // exact ties identically (lower class index first).
        let mut m = model();
        let encoded = Matrix::from_rows(&[vec![0.5, 0.5, 0.0]]).unwrap();
        assert_eq!(
            categorize_batch(&mut m, &encoded, &[0]).unwrap(),
            vec![Top2Outcome::Correct]
        );
        assert_eq!(
            categorize_batch(&mut m, &encoded, &[1]).unwrap(),
            vec![Top2Outcome::Partial { predicted: 0 }]
        );
    }

    #[test]
    fn batch_shape_mismatch_is_error() {
        let mut m = model();
        let encoded = Matrix::zeros(1, 5);
        assert!(categorize_batch(&mut m, &encoded, &[0]).is_err());
    }

    #[test]
    fn is_mistake_flags_non_correct() {
        assert!(!Top2Outcome::Correct.is_mistake());
        assert!(Top2Outcome::Partial { predicted: 1 }.is_mistake());
        assert!(Top2Outcome::Incorrect {
            first: 0,
            second: 1
        }
        .is_mistake());
    }

    #[test]
    fn shape_mismatch_is_error() {
        let mut m = model();
        let encoded = Matrix::zeros(1, 5);
        assert!(categorize(&mut m, &encoded, &[0]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_model_panics() {
        let mut m = ClassModel::new(1, 2);
        let encoded = Matrix::zeros(1, 2);
        categorize(&mut m, &encoded, &[0]).unwrap();
    }

    #[test]
    fn exact_tie_resolves_to_lowest_class_index() {
        // The sample is equidistant from classes 0 and 1; top-1 must
        // deterministically be the lower index, so the taxonomy depends on
        // which side of the tie the true label sits.
        let mut m = model();
        let encoded = Matrix::from_rows(&[vec![0.5, 0.5, 0.0]]).unwrap();
        // Label 0: the tie winner is class 0 -> Correct.
        let outcomes = categorize(&mut m, &encoded, &[0]).unwrap();
        assert_eq!(outcomes[0], Top2Outcome::Correct);
        // Label 1: class 0 wins the tie, the true label ranks second ->
        // Partial, with the tie winner recorded as the prediction.
        let outcomes = categorize(&mut m, &encoded, &[1]).unwrap();
        assert_eq!(outcomes[0], Top2Outcome::Partial { predicted: 0 });
    }

    #[test]
    fn three_way_tie_pushes_highest_index_label_out_of_top2() {
        // All three classes tie; top-2 keeps indices 0 and 1, so label 2 is
        // Incorrect even though its similarity equals the winners'.
        let mut m = model();
        let third = 1.0 / 3.0f32.sqrt();
        let encoded = Matrix::from_rows(&[vec![third, third, third]]).unwrap();
        let outcomes = categorize(&mut m, &encoded, &[2]).unwrap();
        assert_eq!(
            outcomes[0],
            Top2Outcome::Incorrect {
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn two_class_model_never_produces_incorrect() {
        // With exactly two classes the top-2 set covers every class, so the
        // true label is always ranked first or second: the taxonomy
        // degenerates to Correct/Partial and Incorrect is unreachable.
        let mut m = ClassModel::new(2, 2);
        m.bundle_into(0, &[1.0, 0.0]);
        m.bundle_into(1, &[0.0, 1.0]);
        let encoded = Matrix::from_rows(&[
            vec![1.0, 0.2],
            vec![0.2, 1.0],
            vec![0.5, 0.5],
            vec![-1.0, -1.0],
        ])
        .unwrap();
        for label in 0..2 {
            let outcomes = categorize(&mut m, &encoded, &[label; 4]).unwrap();
            assert!(outcomes
                .iter()
                .all(|o| !matches!(o, Top2Outcome::Incorrect { .. })));
        }
    }

    #[test]
    fn tied_partial_still_records_the_tie_winner() {
        // Regression guard for the Algorithm 2 inputs: the Partial outcome
        // must carry the class that actually outranked the label, not the
        // label itself, even under a tie.
        let mut m = model();
        let encoded = Matrix::from_rows(&[vec![0.0, 0.7, 0.7]]).unwrap();
        let outcomes = categorize(&mut m, &encoded, &[2]).unwrap();
        match outcomes[0] {
            Top2Outcome::Partial { predicted } => assert_eq!(predicted, 1),
            other => panic!("expected Partial, got {other:?}"),
        }
    }
}
