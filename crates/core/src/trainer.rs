use crate::config::DistHdConfig;
use crate::distance::select_undesired_dims;
use crate::top2::categorize_batch;
use disthd_datasets::Dataset;
use disthd_eval::{Classifier, EpochRecord, ModelError, TrainingHistory};
use disthd_hd::center::EncodingCenter;
use disthd_hd::encoder::{AnyRbfEncoder, Encoder, RegenerativeEncoder};
use disthd_hd::learn::{adaptive_epoch, bundle_init};
use disthd_hd::ClassModel;
use disthd_linalg::SeededRng;
use std::time::Instant;

/// Summary of a completed [`DistHd::fit`] run.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Per-epoch accuracy/time trace.
    pub history: TrainingHistory,
    /// Number of regeneration steps that actually dropped dimensions.
    pub regen_events: usize,
    /// Total dimensions regenerated across the run.
    pub regenerated_dims: u64,
    /// Effective dimensionality `D* = D + Σ regenerated` (§IV-B) — what a
    /// static encoder would have needed to see as many distinct
    /// projections.
    pub effective_dim: f64,
}

/// The DistHD classifier: adaptive learning + top-2 classification +
/// learner-aware dimension regeneration.
///
/// See the [crate docs](crate) for the algorithm walk-through and
/// `DESIGN.md` for fidelity notes.
///
/// # Example
///
/// ```
/// use disthd::{DistHd, DistHdConfig};
/// use disthd_datasets::suite::{PaperDataset, SuiteConfig};
/// use disthd_eval::Classifier;
///
/// let data = PaperDataset::Diabetes.generate(&SuiteConfig::at_scale(0.001))?;
/// let mut model = DistHd::new(
///     DistHdConfig { dim: 256, epochs: 6, ..Default::default() },
///     data.train.feature_dim(),
///     data.train.class_count(),
/// );
/// model.fit(&data.train, None)?;
/// let report = model.last_report().expect("fitted");
/// assert!(report.effective_dim >= 256.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistHd {
    pub(crate) config: DistHdConfig,
    pub(crate) encoder: AnyRbfEncoder,
    pub(crate) model: Option<ClassModel>,
    pub(crate) center: Option<EncodingCenter>,
    pub(crate) class_count: usize,
    pub(crate) last_report: Option<FitReport>,
    /// Sliding-window state of the online [`DistHd::partial_fit`] path
    /// (see [`crate::stream`]); `None` until the first streamed batch.
    pub(crate) stream: Option<crate::stream::StreamState>,
    /// Fixed-point accumulator of the exact shard-merge path (see
    /// [`crate::merge`]); `None` unless trained via [`DistHd::fit_shard`].
    pub(crate) shard: Option<crate::merge::ShardState>,
}

impl DistHd {
    /// Creates an untrained DistHD model for `feature_dim` inputs and
    /// `class_count` classes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DistHdConfig::validate`]).
    pub fn new(config: DistHdConfig, feature_dim: usize, class_count: usize) -> Self {
        config.validate();
        let mut encoder =
            AnyRbfEncoder::new(config.encoder_backend, feature_dim, config.dim, config.seed);
        // Schedule choice changes FHT rounding, never DHD bytes — applied
        // to the live encoder only, a no-op on the dense backend.
        encoder.set_fht_schedule(config.fht_schedule);
        Self {
            config,
            encoder,
            model: None,
            center: None,
            class_count,
            last_report: None,
            stream: None,
            shard: None,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DistHdConfig {
        &self.config
    }

    /// Borrows the (regenerative) encoder.
    pub fn encoder(&self) -> &AnyRbfEncoder {
        &self.encoder
    }

    /// Borrows the trained class model, if fitted.
    pub fn class_model(&self) -> Option<&ClassModel> {
        self.model.as_ref()
    }

    /// Mutably borrows the trained class model, if fitted (robustness
    /// harness access).
    pub fn class_model_mut(&mut self) -> Option<&mut ClassModel> {
        self.model.as_mut()
    }

    /// Replaces the class model (e.g. with a dequantized faulted copy).
    pub fn set_class_model(&mut self, model: ClassModel) {
        self.model = Some(model);
    }

    /// Report of the most recent `fit`, if any.
    pub fn last_report(&self) -> Option<&FitReport> {
        self.last_report.as_ref()
    }

    /// Borrows the encoding center fitted during training, if fitted.
    pub fn center(&self) -> Option<&EncodingCenter> {
        self.center.as_ref()
    }

    /// Per-class similarity scores for one input — the ranking scores used
    /// for ROC analysis (Fig. 6) and top-k accuracy (Fig. 2(b)).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] before `fit`, or a shape error for
    /// a wrong-length input.
    pub fn decision_scores(&mut self, features: &[f32]) -> Result<Vec<f32>, ModelError> {
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode(features)?;
        center.apply(&mut encoded);
        Ok(model.similarities(&encoded)?)
    }

    /// Encodes and centers a whole dataset with the trained encoder —
    /// used by the Fig. 8 robustness harness to pre-encode the test set
    /// once and then evaluate many faulted copies of the class model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] before `fit`, or a shape error for
    /// mismatched features.
    pub fn encode_dataset(&self, data: &Dataset) -> Result<disthd_linalg::Matrix, ModelError> {
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode_batch(data.features())?;
        center.apply_batch(&mut encoded);
        Ok(encoded)
    }

    fn eval_accuracy(
        &self,
        model: &mut ClassModel,
        center: &EncodingCenter,
        data: &Dataset,
    ) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut encoded = self.encoder.encode_batch(data.features())?;
        center.apply_batch(&mut encoded);
        let predictions = model.predict_batch(&encoded)?;
        let correct = predictions
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p == data.label(i))
            .count();
        Ok(correct as f64 / data.len() as f64)
    }
}

impl Classifier for DistHd {
    fn fit(
        &mut self,
        train: &Dataset,
        eval: Option<&Dataset>,
    ) -> Result<TrainingHistory, ModelError> {
        if train.feature_dim() != self.encoder.input_dim() {
            return Err(ModelError::Incompatible(format!(
                "expected {} features, dataset has {}",
                self.encoder.input_dim(),
                train.feature_dim()
            )));
        }
        if train.class_count() != self.class_count {
            return Err(ModelError::Incompatible(format!(
                "expected {} classes, dataset has {}",
                self.class_count,
                train.class_count()
            )));
        }
        if self.class_count < 2 {
            return Err(ModelError::Incompatible(
                "DistHD top-2 classification needs at least two classes".into(),
            ));
        }

        let mut regen_rng = SeededRng::derive_stream(self.config.seed, 0xD157);
        let mut encoded = self.encoder.encode_batch(train.features())?;
        let mut center = EncodingCenter::fit_and_apply(&mut encoded);
        let mut model = ClassModel::new(self.class_count, self.config.dim);
        bundle_init(&mut model, &encoded, train.labels())?;

        let mut history = TrainingHistory::new();
        let mut regen_events = 0usize;
        let regen_baseline = self.encoder.regenerated_count();
        let mut best = 0.0f64;
        let mut stall = 0usize;

        for epoch in 0..self.config.epochs {
            let start = Instant::now();

            // (B/H) Adaptive learning over the encoded batch.
            let stats = adaptive_epoch(
                &mut model,
                &encoded,
                train.labels(),
                self.config.learning_rate,
            )?;

            // (I..Q) Top-2 classification + dimension regeneration.
            let is_regen_epoch = self.config.regen_interval > 0
                && (epoch + 1) % self.config.regen_interval == 0
                && epoch + 1 < self.config.epochs;
            if is_regen_epoch {
                let outcomes = categorize_batch(&mut model, &encoded, train.labels())?;
                let scores = select_undesired_dims(
                    &encoded,
                    train.labels(),
                    &outcomes,
                    model.classes(),
                    &self.config.weights,
                    self.config.regen_rate,
                );
                if !scores.undesired.is_empty() {
                    self.encoder.regenerate(&scores.undesired, &mut regen_rng);
                    model.reset_dimensions(&scores.undesired);
                    // Partial re-encode: only the regenerated columns
                    // change, and only they need re-centering and a fresh
                    // one-pass bundle (the warm start the rest of the model
                    // got from `bundle_init`; without it the new dimensions
                    // would stay near zero and regeneration would only
                    // shrink the model).
                    self.encoder.reencode_dims(
                        train.features(),
                        &mut encoded,
                        &scores.undesired,
                    )?;
                    center.refit_dims(&mut encoded, &scores.undesired);
                    model.bundle_dimensions(&encoded, train.labels(), &scores.undesired);
                    regen_events += 1;
                }
            }

            let eval_accuracy = match eval {
                Some(data) => Some(self.eval_accuracy(&mut model, &center, data)?),
                None => None,
            };
            history.push(EpochRecord {
                epoch,
                train_accuracy: stats.accuracy(),
                eval_accuracy,
                elapsed: start.elapsed(),
            });

            if let Some(patience) = self.config.patience {
                if stats.accuracy() > best + 1e-6 {
                    best = stats.accuracy();
                    stall = 0;
                } else {
                    stall += 1;
                    if stall >= patience {
                        break;
                    }
                }
            }
        }

        let regenerated_dims = self.encoder.regenerated_count() - regen_baseline;
        self.last_report = Some(FitReport {
            history: history.clone(),
            regen_events,
            regenerated_dims,
            effective_dim: self.config.dim as f64 + regenerated_dims as f64,
        });
        self.model = Some(model);
        self.center = Some(center);
        // A full batch fit supersedes any in-progress stream or shard
        // accumulator: both would reference the pre-fit encoder and must
        // not leak into later partial_fit / fit_shard calls.
        self.stream = None;
        self.shard = None;
        Ok(history)
    }

    fn predict_one(&mut self, features: &[f32]) -> Result<usize, ModelError> {
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        let center = self.center.as_ref().ok_or(ModelError::NotFitted)?;
        let mut encoded = self.encoder.encode(features)?;
        center.apply(&mut encoded);
        Ok(model.predict(&encoded))
    }

    fn predict(&mut self, data: &Dataset) -> Result<Vec<usize>, ModelError> {
        if data.is_empty() {
            return Ok(Vec::new());
        }
        // Whole-test-set inference is one fused encode GEMM plus one
        // batched similarity GEMM — the path Fig. 5's latency panel times —
        // instead of per-sample encode/matvec round trips.
        let encoded = self.encode_dataset(data)?;
        let model = self.model.as_mut().ok_or(ModelError::NotFitted)?;
        Ok(model.predict_batch(&encoded)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_datasets::suite::{PaperDataset, SuiteConfig};

    fn small_data() -> disthd_datasets::TrainTest {
        PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap()
    }

    fn config() -> DistHdConfig {
        DistHdConfig {
            dim: 256,
            epochs: 8,
            ..Default::default()
        }
    }

    #[test]
    fn fit_beats_chance_and_regenerates() {
        let data = small_data();
        let mut model = DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train, None).unwrap();
        let report = model.last_report().unwrap();
        assert!(report.regen_events >= 1, "regeneration should trigger");
        assert!(report.effective_dim > 256.0);
        let acc = model.accuracy(&data.test).unwrap();
        assert!(acc > 0.4, "accuracy {acc}");
    }

    #[test]
    fn regenerates_fewer_dims_than_the_full_budget() {
        // DistHD's intersection rule selects at most R%·D and usually far
        // fewer — this is its efficiency edge over NeuralHD.
        let data = small_data();
        let mut cfg = config();
        cfg.patience = None;
        cfg.epochs = 6;
        let mut model = DistHd::new(
            cfg.clone(),
            data.train.feature_dim(),
            data.train.class_count(),
        );
        model.fit(&data.train, None).unwrap();
        let report = model.last_report().unwrap();
        // Regeneration can fire at epochs where (e+1) % interval == 0 and
        // e+1 < epochs; each event selects at most R%·D dimensions.
        let regen_epochs = (1..cfg.epochs)
            .filter(|e| e % cfg.regen_interval == 0)
            .count() as u64;
        let full_budget = (cfg.dim as f64 * cfg.regen_rate).round() as u64 * regen_epochs;
        assert!(
            report.regenerated_dims <= full_budget,
            "regenerated {} should be <= budget {full_budget}",
            report.regenerated_dims
        );
        // The intersection rule should select strictly fewer than the full
        // per-event budget overall (its efficiency edge over NeuralHD).
        assert!(
            report.regenerated_dims < full_budget || full_budget == 0,
            "intersection rule never undershot the full budget"
        );
    }

    #[test]
    fn zero_interval_disables_regeneration() {
        let data = small_data();
        let mut cfg = config();
        cfg.regen_interval = 0;
        let mut model = DistHd::new(cfg, data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train, None).unwrap();
        assert_eq!(model.last_report().unwrap().regen_events, 0);
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = DistHd::new(config(), 49, 3);
        assert!(matches!(
            model.predict_one(&[0.0; 49]),
            Err(ModelError::NotFitted)
        ));
        assert!(matches!(
            model.decision_scores(&[0.0; 49]),
            Err(ModelError::NotFitted)
        ));
    }

    #[test]
    fn decision_scores_rank_the_predicted_class_first() {
        let data = small_data();
        let mut model = DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
        model.fit(&data.train, None).unwrap();
        let x = data.test.sample(0);
        let predicted = model.predict_one(x).unwrap();
        let scores = model.decision_scores(x).unwrap();
        let argmax = disthd_linalg::argsort_descending(&scores)[0];
        assert_eq!(predicted, argmax);
    }

    #[test]
    fn incompatible_dataset_rejected() {
        let data = small_data();
        let mut model = DistHd::new(config(), 7, 3);
        assert!(model.fit(&data.train, None).is_err());
        let mut one_class = DistHd::new(config(), 49, 1);
        assert!(one_class.fit(&data.train, None).is_err());
    }

    #[test]
    fn history_records_eval_when_requested() {
        let data = small_data();
        let mut model = DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
        let history = model.fit(&data.train, Some(&data.test)).unwrap();
        assert!(history.records().iter().all(|r| r.eval_accuracy.is_some()));
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        // The whole training pipeline — encode GEMM, batched top-2,
        // Algorithm 2, regeneration — must produce the same model whether
        // the backend runs on 1, 2 or 8 threads.
        let data = small_data();
        let fit_with = |threads: usize| {
            disthd_linalg::parallel::with_thread_count(threads, || {
                let mut model =
                    DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
                model.fit(&data.train, None).unwrap();
                let classes = model.class_model().unwrap().classes().clone();
                let predictions = model.predict(&data.test).unwrap();
                (classes, predictions)
            })
        };
        let (serial_classes, serial_predictions) = fit_with(1);
        for threads in [2usize, 8] {
            let (classes, predictions) = fit_with(threads);
            assert_eq!(
                serial_classes.as_slice(),
                classes.as_slice(),
                "class memory diverged at {threads} threads"
            );
            assert_eq!(
                serial_predictions, predictions,
                "predictions diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn fit_is_bit_identical_under_concurrent_pool_use() {
        // Two OS threads drive full fit + predict pipelines through the
        // shared worker pool *at the same time*, at every thread count.
        // Concurrent jobs interleave in the pool's queue, but chunk
        // partitions are fixed by shapes alone, so both submitters must
        // reproduce the serial model bit for bit.
        let data = small_data();
        let run = || {
            let mut model =
                DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
            model.fit(&data.train, None).unwrap();
            let classes = model.class_model().unwrap().classes().clone();
            let predictions = model.predict(&data.test).unwrap();
            (classes, predictions)
        };
        let (serial_classes, serial_predictions) =
            disthd_linalg::parallel::with_thread_count(1, run);
        for threads in [2usize, 8] {
            disthd_linalg::parallel::with_thread_count(threads, || {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..2).map(|_| scope.spawn(run)).collect();
                    for handle in handles {
                        let (classes, predictions) = handle.join().expect("fit thread");
                        assert_eq!(
                            serial_classes.as_slice(),
                            classes.as_slice(),
                            "class memory diverged at {threads} threads under concurrency"
                        );
                        assert_eq!(
                            serial_predictions, predictions,
                            "predictions diverged at {threads} threads under concurrency"
                        );
                    }
                });
            });
        }
    }

    #[test]
    fn fit_is_reproducible_for_same_seed() {
        let data = small_data();
        let mut a = DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
        let mut b = DistHd::new(config(), data.train.feature_dim(), data.train.class_count());
        a.fit(&data.train, None).unwrap();
        b.fit(&data.train, None).unwrap();
        let pa = a.predict(&data.test).unwrap();
        let pb = b.predict(&data.test).unwrap();
        assert_eq!(pa, pb);
    }
}
