//! Drift-recovery regression: the first direct test of Algorithm 2's
//! reason for existing.
//!
//! A streaming DistHD model rides an abrupt concept drift (the generating
//! manifold is swapped under it).  With sliding-window regeneration
//! enabled, Algorithm 2 discards dimensions that mislead on the
//! post-drift window — clearing stale pre-drift memory along with them —
//! and the prequential windowed accuracy recovers.  With regeneration
//! disabled, the same adaptive learner must unlearn through
//! similarity-weighted updates alone and recovers measurably slower.
//!
//! The scenario is deterministic end to end (seeded drift stream, seeded
//! model), so the bounds below are exact regression pins, not statistical
//! expectations.

use disthd::stream::StreamConfig;
use disthd::{DistHd, DistHdConfig};
use disthd_datasets::drift::{DriftConfig, DriftStream};
use disthd_datasets::suite::PaperDataset;
use disthd_eval::stream::PrequentialTrace;
use disthd_eval::Classifier;

const BATCH: usize = 16;
const PRE_DRIFT_BATCHES: usize = 60;
const POST_DRIFT_BATCHES: usize = 60;
const TRACE_WINDOW: usize = 64;

/// Streams an abrupt-drift scenario through `partial_fit` and returns the
/// prequential trace (recorded from the second batch on, so every sample
/// is scored by a fitted model) plus the drift index within the trace.
fn run_scenario(regen_every: usize) -> (PrequentialTrace, usize) {
    let drift_at_sample = PRE_DRIFT_BATCHES * BATCH;
    let mut stream =
        DriftStream::new(DriftConfig::abrupt(PaperDataset::Diabetes, drift_at_sample)).unwrap();

    let mut model = DistHd::new(
        DistHdConfig {
            dim: 256,
            ..Default::default()
        },
        stream.feature_dim(),
        stream.class_count(),
    );
    let cfg = StreamConfig {
        window: 128,
        regen_every,
        warmup: 64,
    };

    let mut trace = PrequentialTrace::new(TRACE_WINDOW);
    for batch_index in 0..PRE_DRIFT_BATCHES + POST_DRIFT_BATCHES {
        let batch = stream.next_batch(BATCH).unwrap();
        // Test-then-train: score the batch with the model as it stands
        // (identical to partial_fit's internal prequential predictions),
        // then let it train.  The very first batch has no model yet and
        // is not recorded.
        if batch_index > 0 {
            let predictions = model.predict(&batch).unwrap();
            for (p, &l) in predictions.iter().zip(batch.labels()) {
                trace.record(*p, l);
            }
        }
        model.partial_fit_with(&batch, &cfg).unwrap();
    }
    // One batch was consumed before recording started.
    (trace, drift_at_sample - BATCH)
}

#[test]
fn regeneration_recovers_from_abrupt_drift_faster_than_the_baseline() {
    let (regen, drift_at) = run_scenario(2);
    let (frozen, _) = run_scenario(0);

    // Both runs were healthy and got hurt: windowed accuracy above 0.90
    // before the drift, and a real post-drift dip.
    let pre_regen = regen.trace()[drift_at - 1];
    let pre_frozen = frozen.trace()[drift_at - 1];
    assert!(pre_regen >= 0.90, "regen pre-drift accuracy {pre_regen}");
    assert!(pre_frozen >= 0.90, "frozen pre-drift accuracy {pre_frozen}");
    assert!(
        regen.forgetting(drift_at) >= 0.25,
        "drift too mild to measure recovery (regen forgetting {})",
        regen.forgetting(drift_at)
    );
    assert!(
        frozen.forgetting(drift_at) >= 0.25,
        "drift too mild to measure recovery (frozen forgetting {})",
        frozen.forgetting(drift_at)
    );

    // The headline regression pins.  The dip floor is the windowed
    // accuracy at the trough; recovery is "windowed accuracy back at
    // 0.85" measured from the drift sample.  Regeneration must get there
    // within 500 samples; the regeneration-disabled baseline must not.
    let target = 0.85;
    let regen_recovery = regen
        .recovery_time(drift_at + TRACE_WINDOW, target)
        .map(|t| t + TRACE_WINDOW);
    let frozen_recovery = frozen
        .recovery_time(drift_at + TRACE_WINDOW, target)
        .map(|t| t + TRACE_WINDOW);
    eprintln!(
        "regen: pre {pre_regen:.3} forget {:.3} recovery {regen_recovery:?}; \
         frozen: pre {pre_frozen:.3} forget {:.3} recovery {frozen_recovery:?}",
        regen.forgetting(drift_at),
        frozen.forgetting(drift_at),
    );
    match regen_recovery {
        Some(t) => assert!(
            t <= 500,
            "regeneration took {t} samples to recover (bound: 500)"
        ),
        None => panic!("regeneration-enabled run never recovered to {target}"),
    }
    // Never recovering is the expected baseline outcome.
    if let Some(t) = frozen_recovery {
        assert!(
            t > regen_recovery.unwrap(),
            "baseline recovered in {t} samples, \
             not slower than regeneration ({regen_recovery:?})"
        );
    }

    // Post-recovery quality: at the end of the horizon the regenerating
    // model must be at least as accurate in the window as the baseline.
    let end_regen = *regen.trace().last().unwrap();
    let end_frozen = *frozen.trace().last().unwrap();
    assert!(
        end_regen >= end_frozen,
        "end-of-horizon windowed accuracy: regen {end_regen} < frozen {end_frozen}"
    );
}
