//! The zero-dequantize serving contract.
//!
//! This integration test lives alone in its own binary (its own process) on
//! purpose: it asserts on the process-wide
//! [`disthd_hd::quantize::dequantize_calls`] counter, and sharing a test
//! binary with any test that legitimately dequantizes (robustness studies,
//! round-trip tests) would race the counter.

use disthd::{DeployedModel, DistHd, DistHdConfig, ErrorFeedbackQuantizer, StreamConfig};
use disthd_datasets::suite::{PaperDataset, SuiteConfig};
use disthd_eval::Classifier;
use disthd_hd::quantize::{dequantize_calls, BitWidth, QuantizedMatrix};
use disthd_linalg::{Matrix, RngSeed, SeededRng};

/// Construct, hot-swap, fault injection, single predict, batched predict,
/// fully-integer batched predict, decision scores, quantization-aware
/// streaming, persistence round-trip: none of it may reconstruct an `f32`
/// class matrix, at any storage width.
#[test]
fn serving_path_performs_zero_dequantize_calls() {
    let data = PaperDataset::Diabetes
        .generate(&SuiteConfig::at_scale(0.002))
        .expect("dataset");
    let mut model = DistHd::new(
        DistHdConfig {
            dim: 256,
            epochs: 6,
            ..Default::default()
        },
        data.train.feature_dim(),
        data.train.class_count(),
    );
    model.fit(&data.train, None).expect("fit");

    let before = dequantize_calls();
    for width in BitWidth::all() {
        let mut deployed = DeployedModel::freeze(&model, width).expect("freeze");

        // Predict: single, batched, and raw scores.
        for i in 0..data.test.len().min(20) {
            deployed.predict(data.test.sample(i)).expect("predict");
            deployed
                .decision_scores(data.test.sample(i))
                .expect("scores");
        }
        let rows: Vec<usize> = (0..data.test.len().min(20)).collect();
        let query_batch = data.test.features().select_rows(&rows);
        deployed.predict_batch(&query_batch).expect("predict_batch");

        // The end-to-end integer path: fused quantized encode straight
        // into XOR/popcount (1-bit) or widening integer dots.
        deployed
            .predict_quantized_batch(&query_batch)
            .expect("predict_quantized_batch");

        // Hot-swap a requantized memory (the online-learning refresh path).
        let requantized =
            QuantizedMatrix::quantize(model.class_model().expect("fitted").classes(), width);
        deployed.swap_class_memory(requantized).expect("swap");
        deployed.predict(data.test.sample(0)).expect("post-swap");

        // Quantization-aware streaming: partial_fit with error feedback
        // re-emits packed snapshots that hot-swap into the deployment,
        // and the residual bookkeeping decodes straight off the packed
        // words — never through dequantize().
        let mut learner = model.clone();
        let mut feedback = ErrorFeedbackQuantizer::new(width);
        let stream_cfg = StreamConfig {
            window: 64,
            regen_every: 0,
            warmup: 0,
        };
        for start in (0..data.train.len().min(48)).step_by(16) {
            let idx: Vec<usize> = (start..(start + 16).min(data.train.len())).collect();
            let batch = data.train.select(&idx);
            let (_, snapshot) = learner
                .partial_fit_quantized(&batch, &stream_cfg, &mut feedback)
                .expect("partial_fit_quantized");
            deployed.swap_class_memory(snapshot).expect("stream swap");
            deployed
                .predict_quantized_batch(&query_batch)
                .expect("post-stream-swap predict");
        }

        // Fault injection reads/writes the packed words in place.
        let mut rng = SeededRng::new(RngSeed(3));
        deployed.inject_faults(0.01, &mut rng);
        deployed.predict(data.test.sample(0)).expect("post-fault");

        // Persistence round-trip rebuilds a deployment from parts.
        let mut bytes = Vec::new();
        disthd::io::save_deployed(&deployed, &mut bytes).expect("save");
        let restored = disthd::io::load_deployed(bytes.as_slice()).expect("load");
        restored.predict(data.test.sample(0)).expect("restored");

        // Width checks don't dequantize either.
        assert_eq!(deployed.width(), width);
        let _ = deployed.memory_bits();
    }
    assert_eq!(
        dequantize_calls(),
        before,
        "the serving path must never call QuantizedMatrix::dequantize"
    );

    // Sanity: the counter is live in this process (so the assertion above
    // is not vacuous).
    let _ = QuantizedMatrix::quantize(
        &Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap(),
        BitWidth::B8,
    )
    .dequantize();
    assert_eq!(dequantize_calls(), before + 1);
}
