//! Plain-text CSV persistence for datasets.
//!
//! Format: one sample per line, features separated by commas, label last.
//! No header.  This is deliberately minimal — enough to export synthetic
//! datasets for inspection or to re-import a user's own data.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use disthd_linalg::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `data` as CSV to `writer` (features..., label per line).
///
/// Generic writers can be passed by `&mut` reference.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on write failure.
pub fn write_csv<W: Write>(data: &Dataset, writer: W) -> Result<(), DatasetError> {
    let mut w = BufWriter::new(writer);
    for i in 0..data.len() {
        let mut line = String::with_capacity(data.feature_dim() * 8);
        for &v in data.sample(i) {
            line.push_str(&format!("{v}"));
            line.push(',');
        }
        line.push_str(&data.label(i).to_string());
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `data` as CSV to a file path.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on I/O failure.
pub fn save_csv<P: AsRef<Path>>(data: &Dataset, path: P) -> Result<(), DatasetError> {
    let file = std::fs::File::create(path)?;
    write_csv(data, file)
}

/// Reads a dataset from CSV (`class_count` must be supplied — CSV does not
/// store it; pass `0` to infer `max label + 1`).
///
/// Generic readers can be passed by `&mut` reference.
///
/// # Errors
///
/// * [`DatasetError::Parse`] for malformed lines;
/// * [`DatasetError::Io`] on read failure;
/// * validation errors from [`Dataset::new`].
pub fn read_csv<R: Read>(reader: R, class_count: usize) -> Result<Dataset, DatasetError> {
    let buf = BufReader::new(reader);
    let mut features = Matrix::default();
    let mut labels: Vec<usize> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut cells: Vec<&str> = line.split(',').collect();
        let label_cell = cells
            .pop()
            .ok_or_else(|| DatasetError::Parse(format!("line {}: empty", lineno + 1)))?;
        let label: usize = label_cell.trim().parse().map_err(|_| {
            DatasetError::Parse(format!("line {}: bad label {label_cell:?}", lineno + 1))
        })?;
        let mut row = Vec::with_capacity(cells.len());
        for cell in cells {
            let v: f32 = cell.trim().parse().map_err(|_| {
                DatasetError::Parse(format!("line {}: bad feature {cell:?}", lineno + 1))
            })?;
            row.push(v);
        }
        features
            .push_row(&row)
            .map_err(|_| DatasetError::Parse(format!("line {}: ragged row", lineno + 1)))?;
        labels.push(label);
    }
    let k = if class_count > 0 {
        class_count
    } else {
        labels.iter().copied().max().map_or(0, |m| m + 1)
    };
    Dataset::new(features, labels, k)
}

/// Reads a dataset from a CSV file path.
///
/// # Errors
///
/// Same as [`read_csv`].
pub fn load_csv<P: AsRef<Path>>(path: P, class_count: usize) -> Result<Dataset, DatasetError> {
    let file = std::fs::File::open(path)?;
    read_csv(file, class_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let features = Matrix::from_rows(&[vec![0.5, 1.5], vec![-1.0, 2.0]]).unwrap();
        Dataset::new(features, vec![1, 0], 2).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let data = sample();
        let mut buf = Vec::new();
        write_csv(&data, &mut buf).unwrap();
        let restored = read_csv(buf.as_slice(), 2).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.labels(), data.labels());
        assert_eq!(restored.features().as_slice(), data.features().as_slice());
    }

    #[test]
    fn class_count_can_be_inferred() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let restored = read_csv(buf.as_slice(), 0).unwrap();
        assert_eq!(restored.class_count(), 2);
    }

    #[test]
    fn malformed_feature_is_reported_with_line() {
        let text = "1.0,2.0,0\nnot_a_number,2.0,1\n";
        let err = read_csv(text.as_bytes(), 2).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let text = "1.0,2.0,0\n1.0,1\n";
        let err = read_csv(text.as_bytes(), 2).unwrap_err();
        assert!(matches!(err, DatasetError::Parse(_)));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let text = "1.0,0\n\n2.0,1\n";
        let data = read_csv(text.as_bytes(), 2).unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("disthd_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        save_csv(&sample(), &path).unwrap();
        let restored = load_csv(&path, 2).unwrap();
        assert_eq!(restored.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
