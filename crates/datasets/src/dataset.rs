use crate::error::DatasetError;
use disthd_linalg::{Matrix, SeededRng};

/// Metadata describing a classification dataset (a row of Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatasetSpec {
    /// Short identifier (e.g. `"UCIHAR"`).
    pub name: String,
    /// Number of input features `n`.
    pub feature_dim: usize,
    /// Number of classes `k`.
    pub class_count: usize,
    /// Paper's training-set size.
    pub train_size: usize,
    /// Paper's test-set size.
    pub test_size: usize,
    /// One-line description.
    pub description: String,
}

/// A labelled classification dataset: one feature row per sample.
///
/// # Example
///
/// ```
/// use disthd_datasets::Dataset;
/// use disthd_linalg::Matrix;
///
/// let features = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]])?;
/// let data = Dataset::new(features, vec![0, 1], 2)?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.label(1), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    class_count: usize,
}

impl Dataset {
    /// Builds a dataset, validating label range and length agreement.
    ///
    /// # Errors
    ///
    /// * [`DatasetError::LengthMismatch`] if rows ≠ labels;
    /// * [`DatasetError::LabelOutOfRange`] if any label ≥ `class_count`.
    pub fn new(
        features: Matrix,
        labels: Vec<usize>,
        class_count: usize,
    ) -> Result<Self, DatasetError> {
        if features.rows() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                features: features.rows(),
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= class_count) {
            return Err(DatasetError::LabelOutOfRange {
                label: bad,
                class_count,
            });
        }
        Ok(Self {
            features,
            labels,
            class_count,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of input features per sample.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Borrows the feature matrix (one sample per row).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutably borrows the feature matrix (for in-place normalization).
    pub fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Borrows the label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Number of samples per class.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_count];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Returns a new dataset with rows permuted by a seeded shuffle.
    pub fn shuffled(&self, rng: &mut SeededRng) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        self.select(&order)
    }

    /// Returns a new dataset containing the given sample indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            class_count: self.class_count,
        }
    }

    /// First `n` samples as a new dataset (`n` clamped to `len()`).
    pub fn take(&self, n: usize) -> Dataset {
        let indices: Vec<usize> = (0..n.min(self.len())).collect();
        self.select(&indices)
    }

    /// Splits into contiguous mini-batches of at most `batch_size` samples,
    /// returning index ranges.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_ranges(&self, batch_size: usize) -> Vec<std::ops::Range<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            out.push(start..end);
            start = end;
        }
        out
    }
}

/// A paired train/test split with its spec.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
    /// The spec both partitions conform to.
    pub spec: DatasetSpec,
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::RngSeed;

    fn sample_dataset() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 0.1],
            vec![1.0, 1.1],
            vec![2.0, 2.1],
            vec![3.0, 3.1],
        ])
        .unwrap();
        Dataset::new(features, vec![0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let features = Matrix::zeros(3, 2);
        let err = Dataset::new(features, vec![0, 1], 2).unwrap_err();
        assert!(matches!(err, DatasetError::LengthMismatch { .. }));
    }

    #[test]
    fn new_validates_label_range() {
        let features = Matrix::zeros(2, 2);
        let err = Dataset::new(features, vec![0, 5], 2).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::LabelOutOfRange { label: 5, .. }
        ));
    }

    #[test]
    fn histogram_counts_labels() {
        assert_eq!(sample_dataset().class_histogram(), vec![2, 2]);
    }

    #[test]
    fn select_reorders_samples() {
        let d = sample_dataset().select(&[3, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(0), 1);
        assert_eq!(d.sample(1), &[0.0, 0.1]);
    }

    #[test]
    fn shuffled_is_permutation() {
        let d = sample_dataset();
        let mut rng = SeededRng::new(RngSeed(1));
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        let mut h = s.class_histogram();
        h.sort_unstable();
        assert_eq!(h, vec![2, 2]);
    }

    #[test]
    fn take_clamps() {
        assert_eq!(sample_dataset().take(100).len(), 4);
        assert_eq!(sample_dataset().take(2).len(), 2);
    }

    #[test]
    fn batch_ranges_cover_everything() {
        let d = sample_dataset();
        let ranges = d.batch_ranges(3);
        assert_eq!(ranges, vec![0..3, 3..4]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        sample_dataset().batch_ranges(0);
    }
}
