//! Concept-drift stream generators over the synthetic suite.
//!
//! Every suite dataset is a *stationary* draw from a seeded class-conditional
//! manifold ([`ManifoldGenerator`]).  A drift stream instead interpolates
//! between **two** manifolds with the same spec (feature count, class count)
//! but different structure seeds — two genuinely different worlds that agree
//! on the label alphabet.  Three schedules cover the standard drift taxonomy:
//!
//! * [`DriftKind::Abrupt`] — concept A until the drift point, concept B after;
//! * [`DriftKind::Gradual`] — the probability of drawing from B ramps
//!   linearly from 0 to 1 over `width` samples after the drift point;
//! * [`DriftKind::Recurring`] — after the drift point the stream alternates
//!   between B and A in blocks of `period` samples.
//!
//! Streams are fully deterministic given their [`DriftConfig`]: the same
//! config replayed twice produces bit-identical batches, and the pre-drift
//! prefix is bit-identical to a never-drifting stream over concept A (see
//! the tests).  Feature normalization mirrors a deployed system: a
//! min–max normalizer is **frozen on a concept-A calibration draw** at
//! stream construction and applied to everything the stream ever emits —
//! post-drift samples pass through the stale normalizer (clamped to
//! `[0, 1]`), exactly the distribution shift a live model would see.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::normalize::ColumnStats;
use crate::suite::PaperDataset;
use crate::synth::ManifoldGenerator;
use disthd_linalg::{Matrix, RngSeed, SeededRng};

/// Samples drawn from concept A to freeze the stream's normalizer.
const CALIBRATION_SAMPLES: usize = 512;

/// The drift schedule: when and how the stream moves from concept A to B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Hard switch at the drift point.
    Abrupt,
    /// Linear ramp: `width` samples after the drift point the stream is
    /// pure concept B.
    Gradual {
        /// Ramp length in samples (must be non-zero).
        width: usize,
    },
    /// Alternating blocks of B and A, each `period` samples long,
    /// starting with B at the drift point.
    Recurring {
        /// Block length in samples (must be non-zero).
        period: usize,
    },
}

/// Full specification of a drift stream.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Which Table I dataset shape to emulate (feature/class counts).
    pub dataset: PaperDataset,
    /// The drift schedule.
    pub kind: DriftKind,
    /// Index of the first sample affected by the drift.
    pub drift_at: usize,
    /// Structure seeds of concept A (pre-drift) and concept B (post-drift).
    pub concept_seeds: (RngSeed, RngSeed),
    /// Seed for the per-sample draws.
    pub sample_seed: RngSeed,
}

impl DriftConfig {
    /// An abrupt drift on `dataset` at sample `drift_at` with default seeds.
    pub fn abrupt(dataset: PaperDataset, drift_at: usize) -> Self {
        Self {
            dataset,
            kind: DriftKind::Abrupt,
            drift_at,
            concept_seeds: (RngSeed(0x00D1_574D), RngSeed(0x00D1_F7ED)),
            sample_seed: RngSeed(0x0005_A117),
        }
    }
}

/// A deterministic, endless sample stream whose generating concept changes
/// at a configured drift point.
#[derive(Debug, Clone)]
pub struct DriftStream {
    concepts: [ManifoldGenerator; 2],
    kind: DriftKind,
    drift_at: usize,
    draw_rng: SeededRng,
    mix_rng: SeededRng,
    emitted: usize,
    stats: ColumnStats,
}

impl DriftStream {
    /// Builds the stream, constructing both concept generators.
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] when a gradual `width` or recurring
    /// `period` is zero; otherwise propagates generator construction errors.
    pub fn new(config: DriftConfig) -> Result<Self, DatasetError> {
        match config.kind {
            DriftKind::Gradual { width: 0 } => {
                return Err(DatasetError::InvalidConfig(
                    "gradual drift width must be non-zero".into(),
                ));
            }
            DriftKind::Recurring { period: 0 } => {
                return Err(DatasetError::InvalidConfig(
                    "recurring drift period must be non-zero".into(),
                ));
            }
            _ => {}
        }
        let concept_a = config.dataset.generator(config.concept_seeds.0)?;
        let concept_b = config.dataset.generator(config.concept_seeds.1)?;
        // Freeze the deployment-time normalizer on a concept-A draw that
        // is disjoint from the stream's own rng streams.
        let calibration = concept_a.generate(
            CALIBRATION_SAMPLES,
            RngSeed(config.sample_seed.0 ^ 0xCA_11B),
        )?;
        let stats = ColumnStats::fit(calibration.features());
        Ok(Self {
            concepts: [concept_a, concept_b],
            kind: config.kind,
            drift_at: config.drift_at,
            draw_rng: SeededRng::derive_stream(config.sample_seed, 0xD21F7),
            mix_rng: SeededRng::derive_stream(config.sample_seed, 0xB1E2D),
            emitted: 0,
            stats,
        })
    }

    /// Feature dimensionality of every emitted sample.
    pub fn feature_dim(&self) -> usize {
        self.concepts[0].config().feature_dim
    }

    /// Number of label classes (shared by both concepts).
    pub fn class_count(&self) -> usize {
        self.concepts[0].config().class_count
    }

    /// Samples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Expected share of concept B at sample `index` (0.0 = pure A,
    /// 1.0 = pure B).
    ///
    /// For [`DriftKind::Gradual`] this is the blend probability; for the
    /// other kinds it is exactly 0.0 or 1.0.
    pub fn concept_share(&self, index: usize) -> f64 {
        if index < self.drift_at {
            return 0.0;
        }
        match self.kind {
            DriftKind::Abrupt => 1.0,
            DriftKind::Gradual { width } => {
                (((index - self.drift_at) as f64 + 1.0) / width as f64).min(1.0)
            }
            DriftKind::Recurring { period } => {
                if ((index - self.drift_at) / period) % 2 == 0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Emits the next `n` samples as a dataset batch (labels round-robin
    /// over the classes, so every batch of at least `class_count` samples
    /// covers the alphabet).
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] when `n == 0`.
    pub fn next_batch(&mut self, n: usize) -> Result<Dataset, DatasetError> {
        if n == 0 {
            return Err(DatasetError::InvalidConfig(
                "cannot emit a 0-sample batch".into(),
            ));
        }
        let k = self.class_count();
        let mut features = Matrix::zeros(n, self.feature_dim());
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let index = self.emitted + i;
            let class = index % k;
            let share = self.concept_share(index);
            // The gradual schedule is the only stochastic one; it draws its
            // coin from a dedicated rng stream so the sample-draw stream
            // stays aligned across schedules.
            let concept = if share == 0.0 {
                0
            } else if share == 1.0 {
                1
            } else {
                usize::from(self.mix_rng.next_bool(share))
            };
            let sample = self.concepts[concept].sample(class, &mut self.draw_rng);
            features.row_mut(i).copy_from_slice(&sample);
            labels.push(class);
        }
        self.stats.apply_min_max(&mut features);
        self.emitted += n;
        Dataset::new(features, labels, k)
    }

    /// A held-out evaluation set drawn purely from one concept (0 = A,
    /// 1 = B), independent of the stream position — used to measure
    /// forgetting of the old concept after adapting to the new one.
    /// Features pass through the stream's frozen concept-A normalizer,
    /// like everything else the stream emits.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (e.g. `n == 0`).
    pub fn holdout(
        &self,
        concept: usize,
        n: usize,
        seed: RngSeed,
    ) -> Result<Dataset, DatasetError> {
        assert!(concept < 2, "concept must be 0 (A) or 1 (B)");
        let mut data = self.concepts[concept].generate(n, seed)?;
        self.stats.apply_min_max(data.features_mut());
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(kind: DriftKind, drift_at: usize) -> DriftConfig {
        DriftConfig {
            kind,
            drift_at,
            ..DriftConfig::abrupt(PaperDataset::Diabetes, drift_at)
        }
    }

    #[test]
    fn streams_are_reproducible() {
        for kind in [
            DriftKind::Abrupt,
            DriftKind::Gradual { width: 16 },
            DriftKind::Recurring { period: 8 },
        ] {
            let mut a = DriftStream::new(config(kind, 20)).unwrap();
            let mut b = DriftStream::new(config(kind, 20)).unwrap();
            for _ in 0..4 {
                let x = a.next_batch(16).unwrap();
                let y = b.next_batch(16).unwrap();
                assert_eq!(x.features().as_slice(), y.features().as_slice());
                assert_eq!(x.labels(), y.labels());
            }
            assert_eq!(a.emitted(), 64);
        }
    }

    #[test]
    fn pre_drift_prefix_matches_a_stationary_stream() {
        let mut drifting = DriftStream::new(config(DriftKind::Abrupt, 32)).unwrap();
        let mut stationary = DriftStream::new(config(DriftKind::Abrupt, usize::MAX)).unwrap();
        let x = drifting.next_batch(32).unwrap();
        let y = stationary.next_batch(32).unwrap();
        assert_eq!(x.features().as_slice(), y.features().as_slice());
        // After the drift point the worlds diverge.
        let x = drifting.next_batch(32).unwrap();
        let y = stationary.next_batch(32).unwrap();
        assert_ne!(x.features().as_slice(), y.features().as_slice());
        assert_eq!(x.labels(), y.labels(), "labels stay aligned across drift");
    }

    #[test]
    fn abrupt_share_is_a_step_function() {
        let stream = DriftStream::new(config(DriftKind::Abrupt, 10)).unwrap();
        assert_eq!(stream.concept_share(0), 0.0);
        assert_eq!(stream.concept_share(9), 0.0);
        assert_eq!(stream.concept_share(10), 1.0);
        assert_eq!(stream.concept_share(1000), 1.0);
    }

    #[test]
    fn gradual_share_ramps_linearly() {
        let stream = DriftStream::new(config(DriftKind::Gradual { width: 4 }, 10)).unwrap();
        assert_eq!(stream.concept_share(9), 0.0);
        assert!((stream.concept_share(10) - 0.25).abs() < 1e-12);
        assert!((stream.concept_share(11) - 0.5).abs() < 1e-12);
        assert_eq!(stream.concept_share(13), 1.0);
        assert_eq!(stream.concept_share(14), 1.0);
    }

    #[test]
    fn recurring_share_alternates_in_blocks() {
        let stream = DriftStream::new(config(DriftKind::Recurring { period: 3 }, 6)).unwrap();
        let shares: Vec<f64> = (0..15).map(|i| stream.concept_share(i)).collect();
        assert_eq!(
            shares,
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        );
    }

    #[test]
    fn zero_width_and_zero_period_are_rejected() {
        assert!(DriftStream::new(config(DriftKind::Gradual { width: 0 }, 5)).is_err());
        assert!(DriftStream::new(config(DriftKind::Recurring { period: 0 }, 5)).is_err());
        let mut ok = DriftStream::new(config(DriftKind::Abrupt, 5)).unwrap();
        assert!(ok.next_batch(0).is_err());
    }

    #[test]
    fn holdout_sets_are_concept_pure_and_seeded() {
        let stream = DriftStream::new(config(DriftKind::Abrupt, 8)).unwrap();
        let a0 = stream.holdout(0, 30, RngSeed(1)).unwrap();
        let a1 = stream.holdout(0, 30, RngSeed(1)).unwrap();
        let b = stream.holdout(1, 30, RngSeed(1)).unwrap();
        assert_eq!(a0.features().as_slice(), a1.features().as_slice());
        assert_ne!(a0.features().as_slice(), b.features().as_slice());
        assert_eq!(a0.class_count(), 3);
        assert_eq!(a0.len(), 30);
    }

    #[test]
    fn batches_cover_the_label_alphabet() {
        let mut stream = DriftStream::new(config(DriftKind::Abrupt, 4)).unwrap();
        let batch = stream.next_batch(9).unwrap();
        assert_eq!(batch.class_histogram(), vec![3, 3, 3]);
        assert_eq!(batch.feature_dim(), 49);
    }
}
