use std::error::Error;
use std::fmt;

/// Errors produced while building, splitting or persisting datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// Feature matrix and label vector disagree on sample count.
    LengthMismatch {
        /// Rows in the feature matrix.
        features: usize,
        /// Entries in the label vector.
        labels: usize,
    },
    /// A label was out of range for the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Declared number of classes.
        class_count: usize,
    },
    /// A configuration value was invalid (empty class, zero features, ...).
    InvalidConfig(String),
    /// Underlying shape error from the linear-algebra layer.
    Shape(disthd_linalg::ShapeError),
    /// I/O failure during CSV persistence.
    Io(std::io::Error),
    /// CSV content could not be parsed.
    Parse(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { features, labels } => write!(
                f,
                "feature rows ({features}) and label count ({labels}) differ"
            ),
            DatasetError::LabelOutOfRange { label, class_count } => {
                write!(f, "label {label} out of range for {class_count} classes")
            }
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            DatasetError::Shape(e) => write!(f, "shape error: {e}"),
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Shape(e) => Some(e),
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<disthd_linalg::ShapeError> for DatasetError {
    fn from(e: disthd_linalg::ShapeError) -> Self {
        DatasetError::Shape(e)
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DatasetError::LengthMismatch {
            features: 3,
            labels: 2,
        };
        assert!(e.to_string().contains('3'));
        let e = DatasetError::LabelOutOfRange {
            label: 9,
            class_count: 5,
        };
        assert!(e.to_string().contains('9'));
        let e = DatasetError::InvalidConfig("zero features".into());
        assert!(e.to_string().contains("zero features"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }

    #[test]
    fn shape_error_converts() {
        let shape = disthd_linalg::ShapeError::new("x", (1, 1), (2, 2));
        let e: DatasetError = shape.into();
        assert!(matches!(e, DatasetError::Shape(_)));
    }
}
