//! # disthd-datasets
//!
//! Dataset substrate for the DistHD reproduction.
//!
//! The paper evaluates on five public datasets (Table I).  This crate builds
//! *synthetic equivalents* with the same feature count, class count and
//! (scalable) split sizes, generated from seeded class-conditional nonlinear
//! manifolds — see `DESIGN.md` §2 for why this substitution preserves the
//! behaviour DistHD's mechanisms depend on.
//!
//! * [`Dataset`] / [`DatasetSpec`] — container and metadata;
//! * [`synth`] — the manifold generator and the five domain-flavoured
//!   generators (digits, HAR, ISOLET, PAMAP2, DIABETES);
//! * [`suite`] — one-call access to the paper's Table I roster;
//! * [`drift`] — abrupt/gradual/recurring concept-drift streams over the
//!   suite manifolds;
//! * [`normalize`] — per-column min–max / z-score preprocessing;
//! * [`split`] — stratified train/test splitting;
//! * [`csv`] — plain-text persistence.
//!
//! ## Example
//!
//! ```
//! use disthd_datasets::suite::{PaperDataset, SuiteConfig};
//!
//! // A 1% scale UCIHAR-like dataset: 561 features, 12 classes.
//! let data = PaperDataset::Ucihar.generate(&SuiteConfig::at_scale(0.01))?;
//! assert_eq!(data.train.feature_dim(), 561);
//! assert_eq!(data.train.class_count(), 12);
//! # Ok::<(), disthd_datasets::DatasetError>(())
//! ```

#![deny(missing_docs)]

pub mod csv;
mod dataset;
pub mod drift;
mod error;
pub mod normalize;
pub mod split;
pub mod suite;
pub mod synth;

pub use dataset::{Dataset, DatasetSpec, TrainTest};
pub use error::DatasetError;
