//! Feature preprocessing.
//!
//! HDC encoders assume features in a bounded range; the suite normalizes
//! per column with statistics *fit on the training split only* and applied
//! to both splits (no test leakage).

use disthd_linalg::Matrix;

/// Per-column normalization statistics fit on a training matrix.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ColumnStats {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl ColumnStats {
    /// Fits statistics on `train` (one sample per row).
    pub fn fit(train: &Matrix) -> Self {
        let cols = train.cols();
        let mut mins = vec![f32::INFINITY; cols];
        let mut maxs = vec![f32::NEG_INFINITY; cols];
        let mut means = vec![0.0f32; cols];
        for row in train.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
                means[c] += v;
            }
        }
        let n = train.rows().max(1) as f32;
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0f32; cols];
        for row in train.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                let d = v - means[c];
                stds[c] += d * d;
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        if train.rows() == 0 {
            mins.iter_mut().for_each(|v| *v = 0.0);
            maxs.iter_mut().for_each(|v| *v = 0.0);
        }
        Self {
            mins,
            maxs,
            means,
            stds,
        }
    }

    /// Maps each column to `[0, 1]` using the fitted min/max (constant
    /// columns map to 0).
    ///
    /// # Panics
    ///
    /// Panics if `m.cols()` differs from the fitted width.
    pub fn apply_min_max(&self, m: &mut Matrix) {
        assert_eq!(m.cols(), self.mins.len(), "column count mismatch");
        for r in 0..m.rows() {
            let row = m.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                let span = self.maxs[c] - self.mins[c];
                *v = if span > 0.0 {
                    ((*v - self.mins[c]) / span).clamp(0.0, 1.0)
                } else {
                    0.0
                };
            }
        }
    }

    /// Standardizes each column to zero mean / unit variance (constant
    /// columns map to 0).
    ///
    /// # Panics
    ///
    /// Panics if `m.cols()` differs from the fitted width.
    pub fn apply_z_score(&self, m: &mut Matrix) {
        assert_eq!(m.cols(), self.means.len(), "column count mismatch");
        for r in 0..m.rows() {
            let row = m.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = if self.stds[c] > 0.0 {
                    (*v - self.means[c]) / self.stds[c]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Fits min–max stats on `train` and applies them to both splits.
pub fn min_max_fit_apply(train: &mut Matrix, test: &mut Matrix) -> ColumnStats {
    let stats = ColumnStats::fit(train);
    stats.apply_min_max(train);
    stats.apply_min_max(test);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_maps_train_to_unit_interval() {
        let mut train = Matrix::from_rows(&[vec![0.0, 10.0], vec![4.0, 20.0]]).unwrap();
        let mut test = Matrix::from_rows(&[vec![2.0, 15.0]]).unwrap();
        min_max_fit_apply(&mut train, &mut test);
        assert_eq!(train.row(0), &[0.0, 0.0]);
        assert_eq!(train.row(1), &[1.0, 1.0]);
        assert_eq!(test.row(0), &[0.5, 0.5]);
    }

    #[test]
    fn min_max_clamps_out_of_range_test_values() {
        let mut train = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut test = Matrix::from_rows(&[vec![-5.0], vec![9.0]]).unwrap();
        min_max_fit_apply(&mut train, &mut test);
        assert_eq!(test.row(0), &[0.0]);
        assert_eq!(test.row(1), &[1.0]);
    }

    #[test]
    fn constant_columns_map_to_zero() {
        let mut train = Matrix::from_rows(&[vec![7.0], vec![7.0]]).unwrap();
        let stats = ColumnStats::fit(&train);
        stats.apply_min_max(&mut train);
        assert_eq!(train.row(0), &[0.0]);
        let mut z = Matrix::from_rows(&[vec![7.0]]).unwrap();
        stats.apply_z_score(&mut z);
        assert_eq!(z.row(0), &[0.0]);
    }

    #[test]
    fn z_score_standardizes() {
        let train = Matrix::from_rows(&[vec![1.0], vec![3.0]]).unwrap();
        let stats = ColumnStats::fit(&train);
        let mut m = train.clone();
        stats.apply_z_score(&mut m);
        assert!((m.get(0, 0) + 1.0).abs() < 1e-6);
        assert!((m.get(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_on_empty_matrix_does_not_produce_infinities() {
        let stats = ColumnStats::fit(&Matrix::zeros(0, 3));
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        stats.apply_min_max(&mut m);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
    }
}
