//! Stratified train/test splitting.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use disthd_linalg::SeededRng;

/// Splits `data` into train/test with approximately `test_fraction` of each
/// class in the test set (stratified), after a seeded shuffle.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] if `test_fraction` is outside
/// `(0, 1)` or the dataset is empty.
///
/// # Example
///
/// ```
/// use disthd_datasets::{split::stratified_split, Dataset};
/// use disthd_linalg::{Matrix, RngSeed, SeededRng};
///
/// let features = Matrix::from_fn(10, 2, |r, _| r as f32);
/// let labels = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
/// let data = Dataset::new(features, labels, 2)?;
/// let mut rng = SeededRng::new(RngSeed(1));
/// let (train, test) = stratified_split(&data, 0.2, &mut rng)?;
/// assert_eq!(test.len(), 2);
/// assert_eq!(test.class_histogram(), vec![1, 1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn stratified_split(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut SeededRng,
) -> Result<(Dataset, Dataset), DatasetError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(DatasetError::InvalidConfig(format!(
            "test_fraction must be in (0, 1), got {test_fraction}"
        )));
    }
    if data.is_empty() {
        return Err(DatasetError::InvalidConfig(
            "cannot split empty dataset".into(),
        ));
    }

    // Bucket indices per class, shuffle each bucket, then cut.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); data.class_count()];
    for i in 0..data.len() {
        buckets[data.label(i)].push(i);
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for bucket in &mut buckets {
        rng.shuffle(bucket);
        let cut = ((bucket.len() as f64) * test_fraction).round() as usize;
        let cut = cut.min(bucket.len());
        test_idx.extend_from_slice(&bucket[..cut]);
        train_idx.extend_from_slice(&bucket[cut..]);
    }
    rng.shuffle(&mut train_idx);
    rng.shuffle(&mut test_idx);
    Ok((data.select(&train_idx), data.select(&test_idx)))
}

/// K-fold cross-validation index sets: returns `k` (train, validation)
/// pairs of datasets.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] if `k < 2` or `k > data.len()`.
pub fn k_fold(
    data: &Dataset,
    k: usize,
    rng: &mut SeededRng,
) -> Result<Vec<(Dataset, Dataset)>, DatasetError> {
    if k < 2 || k > data.len() {
        return Err(DatasetError::InvalidConfig(format!(
            "k must be in [2, {}], got {k}",
            data.len()
        )));
    }
    let mut order: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut order);
    let fold_size = data.len() / k;
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let start = f * fold_size;
        let end = if f == k - 1 {
            data.len()
        } else {
            start + fold_size
        };
        let val_idx: Vec<usize> = order[start..end].to_vec();
        let train_idx: Vec<usize> = order[..start]
            .iter()
            .chain(order[end..].iter())
            .copied()
            .collect();
        folds.push((data.select(&train_idx), data.select(&val_idx)));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::{Matrix, RngSeed};

    fn dataset(n: usize) -> Dataset {
        let features = Matrix::from_fn(n, 3, |r, c| (r * 3 + c) as f32);
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        Dataset::new(features, labels, 4).unwrap()
    }

    #[test]
    fn split_is_stratified() {
        let data = dataset(100);
        let mut rng = SeededRng::new(RngSeed(2));
        let (train, test) = stratified_split(&data, 0.2, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.class_histogram(), vec![5, 5, 5, 5]);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let data = dataset(10);
        let mut rng = SeededRng::new(RngSeed(3));
        assert!(stratified_split(&data, 0.0, &mut rng).is_err());
        assert!(stratified_split(&data, 1.0, &mut rng).is_err());
        assert!(stratified_split(&data, -0.5, &mut rng).is_err());
    }

    #[test]
    fn split_partitions_without_overlap() {
        let data = dataset(40);
        let mut rng = SeededRng::new(RngSeed(4));
        let (train, test) = stratified_split(&data, 0.25, &mut rng).unwrap();
        // Feature rows are unique by construction; check disjointness via
        // the first feature value.
        let train_firsts: std::collections::HashSet<u32> =
            train.features().iter_rows().map(|r| r[0] as u32).collect();
        for row in test.features().iter_rows() {
            assert!(!train_firsts.contains(&(row[0] as u32)));
        }
    }

    #[test]
    fn k_fold_covers_all_samples() {
        let data = dataset(20);
        let mut rng = SeededRng::new(RngSeed(5));
        let folds = k_fold(&data, 4, &mut rng).unwrap();
        assert_eq!(folds.len(), 4);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, 20);
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 20);
        }
    }

    #[test]
    fn k_fold_rejects_degenerate_k() {
        let data = dataset(10);
        let mut rng = SeededRng::new(RngSeed(6));
        assert!(k_fold(&data, 1, &mut rng).is_err());
        assert!(k_fold(&data, 11, &mut rng).is_err());
    }
}
