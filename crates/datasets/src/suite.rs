//! One-call access to the paper's Table I dataset roster.
//!
//! Every experiment binary and bench pulls its workloads from here, so that
//! the same scaled, normalized, seeded datasets feed every model.

use crate::dataset::{DatasetSpec, TrainTest};
use crate::error::DatasetError;
use crate::normalize::min_max_fit_apply;
use crate::synth::{self, ManifoldGenerator};
use disthd_linalg::RngSeed;

/// The five evaluation datasets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Handwritten digits (784 × 10).
    Mnist,
    /// Smartphone activity recognition (561 × 12).
    Ucihar,
    /// Spoken letters (617 × 26).
    Isolet,
    /// IMU activity monitoring (54 × 5).
    Pamap2,
    /// Diabetic-patient outcomes (49 × 3).
    Diabetes,
}

impl PaperDataset {
    /// All five datasets, in the paper's presentation order.
    pub fn all() -> [PaperDataset; 5] {
        [
            PaperDataset::Mnist,
            PaperDataset::Isolet,
            PaperDataset::Ucihar,
            PaperDataset::Pamap2,
            PaperDataset::Diabetes,
        ]
    }

    /// Table I row for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            PaperDataset::Mnist => synth::digits::spec(),
            PaperDataset::Ucihar => synth::har::spec(),
            PaperDataset::Isolet => synth::isolet::spec(),
            PaperDataset::Pamap2 => synth::pamap::spec(),
            PaperDataset::Diabetes => synth::diabetes::spec(),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Mnist => "MNIST",
            PaperDataset::Ucihar => "UCIHAR",
            PaperDataset::Isolet => "ISOLET",
            PaperDataset::Pamap2 => "PAMAP2",
            PaperDataset::Diabetes => "DIABETES",
        }
    }

    /// Builds the domain generator for this dataset.
    ///
    /// # Errors
    ///
    /// Propagates generator construction errors.
    pub fn generator(self, structure_seed: RngSeed) -> Result<ManifoldGenerator, DatasetError> {
        match self {
            PaperDataset::Mnist => synth::digits::generator(structure_seed),
            PaperDataset::Ucihar => synth::har::generator(structure_seed),
            PaperDataset::Isolet => synth::isolet::generator(structure_seed),
            PaperDataset::Pamap2 => synth::pamap::generator(structure_seed),
            PaperDataset::Diabetes => synth::diabetes::generator(structure_seed),
        }
    }

    /// Generates normalized train/test splits per `config`.
    ///
    /// Sizes are the Table I sizes multiplied by `config.scale` (floored at
    /// 10 samples per class).  Features are min–max normalized with
    /// statistics fit on the training split.
    ///
    /// # Errors
    ///
    /// Propagates generator and validation errors.
    pub fn generate(self, config: &SuiteConfig) -> Result<TrainTest, DatasetError> {
        let spec = self.spec();
        let generator = self.generator(config.structure_seed)?;
        let floor = spec.class_count * 10;
        let train_size = scaled_size(spec.train_size, config.scale, floor);
        let test_size = scaled_size(spec.test_size, config.scale, floor);
        let mut train = generator.generate(train_size, RngSeed(config.sample_seed.0 ^ 0x7_7A1A))?;
        let mut test = generator.generate(test_size, RngSeed(config.sample_seed.0 ^ 0xF_E57A))?;
        min_max_fit_apply(train.features_mut(), test.features_mut());
        Ok(TrainTest { train, test, spec })
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scaling/seeding knobs for suite generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteConfig {
    /// Multiplier on Table I sizes (1.0 = full paper sizes).
    pub scale: f64,
    /// Seed for the fixed manifold structure (shared by train and test).
    pub structure_seed: RngSeed,
    /// Seed for the sample draws.
    pub sample_seed: RngSeed,
}

impl SuiteConfig {
    /// Config at the given scale with default seeds.
    pub fn at_scale(scale: f64) -> Self {
        Self {
            scale,
            ..Self::default()
        }
    }

    /// Returns a copy with a different sample seed (fresh draws from the
    /// same manifold — used for repeated trials).
    pub fn with_sample_seed(&self, seed: RngSeed) -> Self {
        Self {
            sample_seed: seed,
            ..self.clone()
        }
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            scale: 0.05,
            structure_seed: RngSeed(0x00D1_574D),
            sample_seed: RngSeed(0x0005_A117),
        }
    }
}

/// Table-size scaling with a per-dataset floor.
fn scaled_size(paper_size: usize, scale: f64, floor: usize) -> usize {
    (((paper_size as f64) * scale).round() as usize).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_match_table_one() {
        let expected = [
            ("MNIST", 784, 10),
            ("ISOLET", 617, 26),
            ("UCIHAR", 561, 12),
            ("PAMAP2", 54, 5),
            ("DIABETES", 49, 3),
        ];
        for (ds, (name, n, k)) in PaperDataset::all().iter().zip(expected) {
            let spec = ds.spec();
            assert_eq!(spec.name, name);
            assert_eq!(spec.feature_dim, n);
            assert_eq!(spec.class_count, k);
        }
    }

    #[test]
    fn generate_scales_sizes() {
        let data = PaperDataset::Pamap2
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap();
        // 233_687 * 0.001 ≈ 234 train, 115 test.
        assert_eq!(data.train.len(), 234);
        assert_eq!(data.test.len(), 115);
    }

    #[test]
    fn floor_keeps_tiny_scales_usable() {
        let data = PaperDataset::Isolet
            .generate(&SuiteConfig::at_scale(0.0001))
            .unwrap();
        // Floor = 26 classes * 10.
        assert!(data.train.len() >= 260);
        assert!(data.test.len() >= 260);
    }

    #[test]
    fn features_are_normalized_to_unit_interval() {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.002))
            .unwrap();
        for &v in data.train.features().as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
        for &v in data.test.features().as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn train_and_test_share_the_manifold_but_not_samples() {
        let data = PaperDataset::Diabetes
            .generate(&SuiteConfig::at_scale(0.001))
            .unwrap();
        assert_ne!(
            data.train.features().row(0),
            data.test.features().row(0),
            "train and test should be distinct draws"
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = SuiteConfig::at_scale(0.001);
        let a = PaperDataset::Ucihar.generate(&cfg).unwrap();
        let b = PaperDataset::Ucihar.generate(&cfg).unwrap();
        assert_eq!(a.train.features().as_slice(), b.train.features().as_slice());
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn display_names() {
        assert_eq!(PaperDataset::Mnist.to_string(), "MNIST");
    }
}
