//! DIABETES-flavoured generator: 49 clinical features, 3 classes
//! (hospital-readmission outcomes of diabetic patients \[26\]).
//!
//! The Strack et al. dataset is tabular: demographics, diagnoses,
//! medication counts — a mix of one-hot categorical indicators and a few
//! numeric columns, with weakly separated outcome classes (no readmission /
//! < 30 days / ≥ 30 days).  The synthetic equivalent uses the smallest
//! separation of the suite and a linear feature map (tabular data has no
//! spatial/spectral structure to fold).

use super::manifold::{ManifoldConfig, ManifoldGenerator, Nonlinearity, PostTransform};
use crate::dataset::DatasetSpec;
use crate::error::DatasetError;
use disthd_linalg::RngSeed;

/// Table I row for DIABETES.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "DIABETES".into(),
        feature_dim: 49,
        class_count: 3,
        train_size: 66_000,
        test_size: 34_000,
        description: "Outcomes of Diabetic Patients [26]".into(),
    }
}

/// Manifold configuration mirroring the DIABETES table geometry.
pub fn config() -> ManifoldConfig {
    ManifoldConfig {
        feature_dim: 49,
        class_count: 3,
        latent_dim: 10,
        clusters_per_class: 3,
        class_separation: 1.6,
        cluster_spread: 1.05,
        noise_std: 0.12,
        nonlinearity: Nonlinearity::None,
        post: PostTransform::Identity,
    }
}

/// Builds the DIABETES-like generator.
///
/// # Errors
///
/// Propagates [`DatasetError::InvalidConfig`] (unreachable for the fixed
/// config; kept for API uniformity).
pub fn generator(structure_seed: RngSeed) -> Result<ManifoldGenerator, DatasetError> {
    ManifoldGenerator::new(config(), structure_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table_one() {
        let s = spec();
        assert_eq!((s.feature_dim, s.class_count), (49, 3));
        assert_eq!((s.train_size, s.test_size), (66_000, 34_000));
    }

    #[test]
    fn three_classes_generated() {
        let data = generator(RngSeed(12))
            .unwrap()
            .generate(30, RngSeed(13))
            .unwrap();
        assert_eq!(data.class_count(), 3);
        assert_eq!(data.feature_dim(), 49);
        assert!(data.class_histogram().iter().all(|&c| c == 10));
    }
}
