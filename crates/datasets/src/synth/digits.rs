//! MNIST-flavoured generator: 784 sparse non-negative "pixel" features,
//! 10 classes (handwritten-digit recognition \[22\]).
//!
//! Real MNIST rows are mostly-zero intensity images in `[0, 1]` where each
//! digit class occupies a low-dimensional stroke manifold with substantial
//! intra-class style variation.  The synthetic equivalent uses a 24-dim
//! latent stroke space, 3 style clusters per digit, and the sparse
//! non-negative post-transform to match the zero-heavy intensity histogram.

use super::manifold::{ManifoldConfig, ManifoldGenerator, Nonlinearity, PostTransform};
use crate::dataset::DatasetSpec;
use crate::error::DatasetError;
use disthd_linalg::RngSeed;

/// Table I row for MNIST.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "MNIST".into(),
        feature_dim: 784,
        class_count: 10,
        train_size: 60_000,
        test_size: 10_000,
        description: "Handwritten Recognition [22]".into(),
    }
}

/// Manifold configuration mirroring MNIST geometry.
pub fn config() -> ManifoldConfig {
    ManifoldConfig {
        feature_dim: 784,
        class_count: 10,
        latent_dim: 24,
        clusters_per_class: 3,
        class_separation: 2.0,
        cluster_spread: 0.95,
        noise_std: 0.05,
        nonlinearity: Nonlinearity::Tanh,
        post: PostTransform::SparseNonNegative { threshold: 0.55 },
    }
}

/// Builds the MNIST-like generator.
///
/// # Errors
///
/// Propagates [`DatasetError::InvalidConfig`] (unreachable for the fixed
/// config; kept for API uniformity).
pub fn generator(structure_seed: RngSeed) -> Result<ManifoldGenerator, DatasetError> {
    ManifoldGenerator::new(config(), structure_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table_one() {
        let s = spec();
        assert_eq!((s.feature_dim, s.class_count), (784, 10));
        assert_eq!((s.train_size, s.test_size), (60_000, 10_000));
    }

    #[test]
    fn samples_look_like_pixel_data() {
        let gen = generator(RngSeed(1)).unwrap();
        let data = gen.generate(50, RngSeed(2)).unwrap();
        let values = data.features().as_slice();
        assert!(values.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let zero_fraction =
            values.iter().filter(|&&v| v == 0.0).count() as f32 / values.len() as f32;
        assert!(
            zero_fraction > 0.3,
            "MNIST-like data should be sparse: {zero_fraction}"
        );
    }

    #[test]
    fn ten_balanced_classes() {
        let data = generator(RngSeed(1))
            .unwrap()
            .generate(100, RngSeed(3))
            .unwrap();
        assert_eq!(data.class_count(), 10);
        assert!(data.class_histogram().iter().all(|&c| c == 10));
    }
}
