//! UCIHAR-flavoured generator: 561 smartphone-IMU statistical features,
//! 12 classes (mobile activity recognition \[23\]).
//!
//! UCIHAR features are window statistics (means, deviations, band energies)
//! of body-worn accelerometer/gyroscope signals.  Activities form smooth,
//! partially overlapping manifolds (sitting vs standing are famously close)
//! with per-subject sensor bias.  The synthetic equivalent uses a moderate
//! latent dimension, two posture clusters per activity and the
//! `SubjectBias` post-transform.

use super::manifold::{ManifoldConfig, ManifoldGenerator, Nonlinearity, PostTransform};
use crate::dataset::DatasetSpec;
use crate::error::DatasetError;
use disthd_linalg::RngSeed;

/// Table I row for UCIHAR.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "UCIHAR".into(),
        feature_dim: 561,
        class_count: 12,
        train_size: 6_213,
        test_size: 1_554,
        description: "Mobile Activity Recognition [23]".into(),
    }
}

/// Manifold configuration mirroring UCIHAR geometry.
pub fn config() -> ManifoldConfig {
    ManifoldConfig {
        feature_dim: 561,
        class_count: 12,
        latent_dim: 20,
        clusters_per_class: 3,
        class_separation: 1.5,
        cluster_spread: 1.05,
        noise_std: 0.12,
        nonlinearity: Nonlinearity::Tanh,
        post: PostTransform::SubjectBias { std_dev: 0.05 },
    }
}

/// Builds the UCIHAR-like generator.
///
/// # Errors
///
/// Propagates [`DatasetError::InvalidConfig`] (unreachable for the fixed
/// config; kept for API uniformity).
pub fn generator(structure_seed: RngSeed) -> Result<ManifoldGenerator, DatasetError> {
    ManifoldGenerator::new(config(), structure_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table_one() {
        let s = spec();
        assert_eq!((s.feature_dim, s.class_count), (561, 12));
        assert_eq!((s.train_size, s.test_size), (6_213, 1_554));
    }

    #[test]
    fn twelve_classes_generated() {
        let data = generator(RngSeed(4))
            .unwrap()
            .generate(120, RngSeed(5))
            .unwrap();
        assert_eq!(data.class_count(), 12);
        assert_eq!(data.feature_dim(), 561);
        assert!(data.class_histogram().iter().all(|&c| c == 10));
    }

    #[test]
    fn subject_bias_shifts_whole_rows() {
        // With SubjectBias the per-row mean varies more than per-feature
        // noise alone would allow.
        let data = generator(RngSeed(4))
            .unwrap()
            .generate(60, RngSeed(6))
            .unwrap();
        let row_means: Vec<f32> = data
            .features()
            .iter_rows()
            .map(|r| r.iter().sum::<f32>() / r.len() as f32)
            .collect();
        let spread = disthd_linalg::standard_deviation(&row_means);
        assert!(spread > 0.0, "row means should vary");
    }
}
