//! ISOLET-flavoured generator: 617 spoken-letter spectral features,
//! 26 classes (voice recognition \[24\]).
//!
//! ISOLET features are spectral coefficients of isolated spoken letters;
//! adjacent coefficients are strongly correlated (smooth spectra) and the
//! confusable letter groups (the E-set: B/C/D/E/G/P/T/V/Z) produce heavy
//! class overlap.  The synthetic equivalent uses many classes with modest
//! separation, a `Sin` nonlinearity for formant-like folding, and the
//! `Smooth` post-transform for band-to-band correlation.

use super::manifold::{ManifoldConfig, ManifoldGenerator, Nonlinearity, PostTransform};
use crate::dataset::DatasetSpec;
use crate::error::DatasetError;
use disthd_linalg::RngSeed;

/// Table I row for ISOLET.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "ISOLET".into(),
        feature_dim: 617,
        class_count: 26,
        train_size: 6_238,
        test_size: 1_559,
        description: "Voice Recognition [24]".into(),
    }
}

/// Manifold configuration mirroring ISOLET geometry.
pub fn config() -> ManifoldConfig {
    ManifoldConfig {
        feature_dim: 617,
        class_count: 26,
        latent_dim: 22,
        clusters_per_class: 2,
        class_separation: 1.7,
        cluster_spread: 0.95,
        noise_std: 0.06,
        nonlinearity: Nonlinearity::Sin,
        post: PostTransform::Smooth,
    }
}

/// Builds the ISOLET-like generator.
///
/// # Errors
///
/// Propagates [`DatasetError::InvalidConfig`] (unreachable for the fixed
/// config; kept for API uniformity).
pub fn generator(structure_seed: RngSeed) -> Result<ManifoldGenerator, DatasetError> {
    ManifoldGenerator::new(config(), structure_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table_one() {
        let s = spec();
        assert_eq!((s.feature_dim, s.class_count), (617, 26));
        assert_eq!((s.train_size, s.test_size), (6_238, 1_559));
    }

    #[test]
    fn twenty_six_classes_generated() {
        let data = generator(RngSeed(7))
            .unwrap()
            .generate(130, RngSeed(8))
            .unwrap();
        assert_eq!(data.class_count(), 26);
        assert_eq!(data.feature_dim(), 617);
        assert!(data.class_histogram().iter().all(|&c| c == 5));
    }

    #[test]
    fn adjacent_features_are_correlated() {
        // The Smooth post-transform should make |f[i+1] - f[i]| small
        // relative to overall feature spread.
        let data = generator(RngSeed(7))
            .unwrap()
            .generate(40, RngSeed(9))
            .unwrap();
        let mut adjacent_delta = 0.0f32;
        let mut random_delta = 0.0f32;
        let mut count = 0.0f32;
        for row in data.features().iter_rows() {
            for i in 0..row.len() - 1 {
                adjacent_delta += (row[i + 1] - row[i]).abs();
                let j = (i * 7919) % row.len(); // pseudo-random far index
                random_delta += (row[j] - row[i]).abs();
                count += 1.0;
            }
        }
        assert!(
            adjacent_delta / count < random_delta / count,
            "spectral smoothness: adjacent {adjacent_delta} vs random {random_delta}"
        );
    }
}
