use crate::dataset::Dataset;
use crate::error::DatasetError;
use disthd_linalg::{Gaussian, Matrix, RngSeed, SeededRng, Uniform};

/// Element-wise nonlinearity applied after the latent-to-feature projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nonlinearity {
    /// Identity (linearly separable manifolds).
    None,
    /// `tanh` squashing (smooth bounded manifolds).
    Tanh,
    /// `sin` folding (periodic, strongly non-linear class boundaries).
    Sin,
}

impl Nonlinearity {
    fn apply(self, x: f32) -> f32 {
        match self {
            Nonlinearity::None => x,
            Nonlinearity::Tanh => x.tanh(),
            Nonlinearity::Sin => x.sin(),
        }
    }
}

/// Domain-flavoured post-processing applied to each finished feature row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PostTransform {
    /// Leave features as produced by the manifold.
    Identity,
    /// Shift/scale into `[0, 1]` and zero everything below `threshold` —
    /// produces sparse non-negative "pixel intensity" rows (digits).
    SparseNonNegative {
        /// Values (after mapping to `[0,1]`) below this become exactly zero.
        threshold: f32,
    },
    /// Smooth each row with a 3-tap moving average — produces the band-to-
    /// band correlation of spectral features (ISOLET).
    Smooth,
    /// Mix in a per-row offset drawn once per sample — models per-subject
    /// sensor bias (HAR/PAMAP IMU data).
    SubjectBias {
        /// Standard deviation of the per-sample offset.
        std_dev: f32,
    },
}

/// Configuration of a class-conditional manifold-mixture generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifoldConfig {
    /// Output feature dimensionality `n`.
    pub feature_dim: usize,
    /// Number of classes `k`.
    pub class_count: usize,
    /// Latent-space dimensionality (intrinsic manifold dimension).
    pub latent_dim: usize,
    /// Gaussian clusters per class (intra-class multimodality).
    pub clusters_per_class: usize,
    /// Distance scale between class prototypes in latent space.  Larger is
    /// easier; the suite tunes this so model ordering matches the paper.
    pub class_separation: f32,
    /// Standard deviation of latent points around their cluster centre.
    pub cluster_spread: f32,
    /// Observation noise added per feature.
    pub noise_std: f32,
    /// Nonlinearity of the latent-to-feature map.
    pub nonlinearity: Nonlinearity,
    /// Domain post-processing.
    pub post: PostTransform,
}

impl ManifoldConfig {
    /// A reasonable mid-difficulty default for `feature_dim` features and
    /// `class_count` classes.
    pub fn new(feature_dim: usize, class_count: usize) -> Self {
        Self {
            feature_dim,
            class_count,
            latent_dim: 16,
            clusters_per_class: 2,
            class_separation: 3.0,
            cluster_spread: 0.9,
            noise_std: 0.08,
            nonlinearity: Nonlinearity::Tanh,
            post: PostTransform::Identity,
        }
    }

    fn validate(&self) -> Result<(), DatasetError> {
        if self.feature_dim == 0 {
            return Err(DatasetError::InvalidConfig(
                "feature_dim must be > 0".into(),
            ));
        }
        if self.class_count == 0 {
            return Err(DatasetError::InvalidConfig(
                "class_count must be > 0".into(),
            ));
        }
        if self.latent_dim == 0 {
            return Err(DatasetError::InvalidConfig("latent_dim must be > 0".into()));
        }
        if self.clusters_per_class == 0 {
            return Err(DatasetError::InvalidConfig(
                "clusters_per_class must be > 0".into(),
            ));
        }
        Ok(())
    }
}

/// Seeded class-conditional nonlinear manifold-mixture generator.
///
/// Each class `c` owns `clusters_per_class` latent cluster centres placed at
/// `class_separation`-scaled random directions; a sample draws a latent point
/// near one centre, maps it through a fixed random projection plus
/// [`Nonlinearity`], adds observation noise and applies the domain
/// [`PostTransform`].
///
/// # Example
///
/// ```
/// use disthd_datasets::synth::{ManifoldConfig, ManifoldGenerator};
/// use disthd_linalg::RngSeed;
///
/// let gen = ManifoldGenerator::new(ManifoldConfig::new(32, 4), RngSeed(1))?;
/// let data = gen.generate(200, RngSeed(2))?;
/// assert_eq!(data.len(), 200);
/// assert_eq!(data.feature_dim(), 32);
/// // Balanced classes:
/// assert!(data.class_histogram().iter().all(|&c| c == 50));
/// # Ok::<(), disthd_datasets::DatasetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ManifoldGenerator {
    config: ManifoldConfig,
    /// `latent_dim x feature_dim` projection, shared by all classes.
    projection: Matrix,
    /// Per-feature bias.
    bias: Vec<f32>,
    /// `class_count * clusters_per_class` latent centres, row-major.
    centres: Matrix,
}

impl ManifoldGenerator {
    /// Builds the generator's fixed structure (projection, centres) from a
    /// structure seed.  Sampling uses a *separate* seed (see
    /// [`Self::generate`]) so train/test draws share the same manifold.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for degenerate configs.
    pub fn new(config: ManifoldConfig, structure_seed: RngSeed) -> Result<Self, DatasetError> {
        config.validate()?;
        let mut rng = SeededRng::derive_stream(structure_seed, 0x5EED);
        let gaussian = Gaussian::standard();
        let projection = Matrix::from_fn(config.latent_dim, config.feature_dim, |_, _| {
            gaussian.sample(&mut rng) / (config.latent_dim as f32).sqrt()
        });
        let bias = Uniform::new(-0.5, 0.5).sample_vec(&mut rng, config.feature_dim);
        let centre_count = config.class_count * config.clusters_per_class;
        let centres = Matrix::from_fn(centre_count, config.latent_dim, |_, _| {
            gaussian.sample(&mut rng) * config.class_separation
        });
        Ok(Self {
            config,
            projection,
            bias,
            centres,
        })
    }

    /// Borrows the config.
    pub fn config(&self) -> &ManifoldConfig {
        &self.config
    }

    /// Draws one sample of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= class_count`.
    pub fn sample(&self, class: usize, rng: &mut SeededRng) -> Vec<f32> {
        assert!(class < self.config.class_count, "class out of range");
        let cluster = rng.next_index(self.config.clusters_per_class);
        let centre = self
            .centres
            .row(class * self.config.clusters_per_class + cluster);

        // Latent point near the chosen centre.
        let spread = Gaussian::new(0.0, self.config.cluster_spread);
        let latent: Vec<f32> = centre.iter().map(|&c| c + spread.sample(rng)).collect();

        // Project, squash, add observation noise.
        let noise = Gaussian::new(0.0, self.config.noise_std);
        let mut features = vec![0.0f32; self.config.feature_dim];
        for (k, &z) in latent.iter().enumerate() {
            disthd_linalg::axpy(z, self.projection.row(k), &mut features);
        }
        for (f, &b) in features.iter_mut().zip(self.bias.iter()) {
            *f = self.config.nonlinearity.apply(*f + b) + noise.sample(rng);
        }
        self.apply_post(&mut features, rng);
        features
    }

    fn apply_post(&self, features: &mut [f32], rng: &mut SeededRng) {
        match self.config.post {
            PostTransform::Identity => {}
            PostTransform::SparseNonNegative { threshold } => {
                for f in features.iter_mut() {
                    // Map [-1, 1]-ish values into [0, 1] and cut the floor.
                    let v = (*f + 1.0) / 2.0;
                    *f = if v < threshold { 0.0 } else { v.min(1.0) };
                }
            }
            PostTransform::Smooth => {
                let src = features.to_vec();
                let n = src.len();
                for i in 0..n {
                    let prev = src[i.saturating_sub(1)];
                    let next = src[(i + 1).min(n - 1)];
                    features[i] = (prev + src[i] + next) / 3.0;
                }
            }
            PostTransform::SubjectBias { std_dev } => {
                let bias = Gaussian::new(0.0, std_dev).sample(rng);
                for f in features.iter_mut() {
                    *f += bias;
                }
            }
        }
    }

    /// Generates a balanced dataset of `total` samples (the remainder after
    /// division by `class_count` goes to the lowest-index classes).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `total == 0`.
    pub fn generate(&self, total: usize, sample_seed: RngSeed) -> Result<Dataset, DatasetError> {
        if total == 0 {
            return Err(DatasetError::InvalidConfig(
                "cannot generate 0 samples".into(),
            ));
        }
        let k = self.config.class_count;
        let mut rng = SeededRng::derive_stream(sample_seed, 0xDA7A);
        let mut features = Matrix::zeros(total, self.config.feature_dim);
        let mut labels = Vec::with_capacity(total);
        for i in 0..total {
            let class = i % k;
            let row = self.sample(class, &mut rng);
            features.row_mut(i).copy_from_slice(&row);
            labels.push(class);
        }
        let mut data = Dataset::new(features, labels, k)?;
        // Shuffle so mini-batches are class-mixed.
        let mut shuffle_rng = SeededRng::derive_stream(sample_seed, 0x5AFF);
        data = data.shuffled(&mut shuffle_rng);
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::cosine_similarity;

    fn generator() -> ManifoldGenerator {
        ManifoldGenerator::new(ManifoldConfig::new(64, 3), RngSeed(77)).unwrap()
    }

    #[test]
    fn validates_config() {
        let mut cfg = ManifoldConfig::new(0, 3);
        assert!(ManifoldGenerator::new(cfg.clone(), RngSeed(1)).is_err());
        cfg.feature_dim = 8;
        cfg.class_count = 0;
        assert!(ManifoldGenerator::new(cfg.clone(), RngSeed(1)).is_err());
        cfg.class_count = 2;
        cfg.clusters_per_class = 0;
        assert!(ManifoldGenerator::new(cfg, RngSeed(1)).is_err());
    }

    #[test]
    fn generate_produces_balanced_classes() {
        let data = generator().generate(90, RngSeed(1)).unwrap();
        assert_eq!(data.class_histogram(), vec![30, 30, 30]);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = generator().generate(30, RngSeed(5)).unwrap();
        let b = generator().generate(30, RngSeed(5)).unwrap();
        assert_eq!(a.features().as_slice(), b.features().as_slice());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_sample_seeds_differ_on_same_manifold() {
        let gen = generator();
        let a = gen.generate(30, RngSeed(5)).unwrap();
        let b = gen.generate(30, RngSeed(6)).unwrap();
        assert_ne!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn same_class_samples_are_more_similar_than_cross_class() {
        let gen = generator();
        let mut rng = SeededRng::new(RngSeed(9));
        let mut within = 0.0;
        let mut across = 0.0;
        let trials = 50;
        for _ in 0..trials {
            let a = gen.sample(0, &mut rng);
            let b = gen.sample(0, &mut rng);
            let c = gen.sample(1, &mut rng);
            within += cosine_similarity(&a, &b);
            across += cosine_similarity(&a, &c);
        }
        assert!(
            within / trials as f32 > across / trials as f32 + 0.1,
            "within {within} vs across {across}"
        );
    }

    #[test]
    fn sparse_post_transform_produces_zeros_and_unit_range() {
        let mut cfg = ManifoldConfig::new(128, 2);
        cfg.post = PostTransform::SparseNonNegative { threshold: 0.45 };
        let gen = ManifoldGenerator::new(cfg, RngSeed(3)).unwrap();
        let data = gen.generate(20, RngSeed(4)).unwrap();
        let values = data.features().as_slice();
        let zeros = values.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros > values.len() / 10,
            "expected sparsity, zeros={zeros}"
        );
        assert!(values.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn smooth_post_transform_reduces_roughness() {
        let mut cfg = ManifoldConfig::new(64, 2);
        cfg.noise_std = 0.5;
        let base = ManifoldGenerator::new(cfg.clone(), RngSeed(3)).unwrap();
        cfg.post = PostTransform::Smooth;
        let smooth = ManifoldGenerator::new(cfg, RngSeed(3)).unwrap();
        let roughness = |d: &Dataset| {
            d.features()
                .iter_rows()
                .map(|r| r.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>())
                .sum::<f32>()
        };
        let a = roughness(&base.generate(20, RngSeed(5)).unwrap());
        let b = roughness(&smooth.generate(20, RngSeed(5)).unwrap());
        assert!(b < a, "smoothed roughness {b} should be < raw {a}");
    }

    #[test]
    fn zero_total_is_rejected() {
        assert!(generator().generate(0, RngSeed(1)).is_err());
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn sample_rejects_bad_class() {
        let gen = generator();
        let mut rng = SeededRng::new(RngSeed(1));
        gen.sample(99, &mut rng);
    }
}
