//! Synthetic dataset generators.
//!
//! The workhorse is [`ManifoldGenerator`]: a seeded class-conditional
//! nonlinear manifold-mixture generator that controls exactly the geometry
//! HDC learning depends on (class separation, intra-class multimodality,
//! observation noise, nonlinearity).  The five domain modules configure it
//! with Table I shapes and add domain-flavoured post-processing:
//!
//! * [`digits`] — MNIST-like sparse non-negative "pixel" data (784 × 10);
//! * [`har`] — UCIHAR-like smartphone activity features (561 × 12);
//! * [`isolet`] — ISOLET-like spoken-letter spectral features (617 × 26);
//! * [`pamap`] — PAMAP2-like IMU activity features (54 × 5);
//! * [`diabetes`] — DIABETES-like clinical/tabular features (49 × 3).

pub mod diabetes;
pub mod digits;
pub mod har;
pub mod isolet;
pub mod pamap;

mod manifold;

pub use manifold::{ManifoldConfig, ManifoldGenerator, Nonlinearity, PostTransform};
