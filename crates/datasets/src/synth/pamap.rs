//! PAMAP2-flavoured generator: 54 IMU features, 5 classes
//! (physical-activity monitoring \[25\]).
//!
//! PAMAP2 rows are heart-rate plus three IMU units (hand/chest/ankle);
//! compared to UCIHAR the feature count is small, the dataset is very large
//! and activities are coarse (lying/sitting/walking/running/cycling), so
//! classes separate relatively well in few dimensions.  The synthetic
//! equivalent therefore uses a compact latent space with wider separation,
//! plus per-sample sensor bias.

use super::manifold::{ManifoldConfig, ManifoldGenerator, Nonlinearity, PostTransform};
use crate::dataset::DatasetSpec;
use crate::error::DatasetError;
use disthd_linalg::RngSeed;

/// Table I row for PAMAP2.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "PAMAP2".into(),
        feature_dim: 54,
        class_count: 5,
        train_size: 233_687,
        test_size: 115_101,
        description: "Activity Recognition (IMU) [25]".into(),
    }
}

/// Manifold configuration mirroring PAMAP2 geometry.
pub fn config() -> ManifoldConfig {
    ManifoldConfig {
        feature_dim: 54,
        class_count: 5,
        latent_dim: 12,
        clusters_per_class: 2,
        class_separation: 1.8,
        cluster_spread: 1.0,
        noise_std: 0.10,
        nonlinearity: Nonlinearity::Tanh,
        post: PostTransform::SubjectBias { std_dev: 0.06 },
    }
}

/// Builds the PAMAP2-like generator.
///
/// # Errors
///
/// Propagates [`DatasetError::InvalidConfig`] (unreachable for the fixed
/// config; kept for API uniformity).
pub fn generator(structure_seed: RngSeed) -> Result<ManifoldGenerator, DatasetError> {
    ManifoldGenerator::new(config(), structure_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table_one() {
        let s = spec();
        assert_eq!((s.feature_dim, s.class_count), (54, 5));
        assert_eq!((s.train_size, s.test_size), (233_687, 115_101));
    }

    #[test]
    fn five_classes_generated() {
        let data = generator(RngSeed(10))
            .unwrap()
            .generate(50, RngSeed(11))
            .unwrap();
        assert_eq!(data.class_count(), 5);
        assert_eq!(data.feature_dim(), 54);
        assert!(data.class_histogram().iter().all(|&c| c == 10));
    }
}
