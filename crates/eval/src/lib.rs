//! # disthd-eval
//!
//! Evaluation substrate for the DistHD reproduction:
//!
//! * [`model`] — the shared [`model::Classifier`] trait, training history
//!   and model error type implemented by every learner in the workspace;
//! * [`metrics`] — accuracy, confusion matrices, per-class
//!   sensitivity/specificity (§III-C "Weight Parameters");
//! * [`topk`] — top-k accuracy (the Fig. 2(b) motivation measurement);
//! * [`roc`] — ROC curves and AUC (Fig. 6);
//! * [`timing`] — wall-clock measurement helpers (Fig. 5);
//! * [`robustness`] — quantize → bit-flip → re-evaluate campaigns (Fig. 8);
//! * [`stream`] — prequential (test-then-train) accuracy for online
//!   learners and live serving;
//! * [`report`] — fixed-width text tables matching the paper's layouts.

#![deny(missing_docs)]

pub mod metrics;
pub mod model;
pub mod report;
pub mod robustness;
pub mod roc;
pub mod stats;
pub mod stream;
pub mod timing;
pub mod topk;

pub use metrics::{
    accuracy, balanced_accuracy, confusion_matrix, macro_f1, per_class_rates, ClassRates,
    ConfusionMatrix,
};
pub use model::{Classifier, EpochRecord, ModelError, TrainingHistory};
pub use robustness::{QualityLoss, RobustnessPoint};
pub use roc::{auc, roc_curve, youden_threshold, RocPoint};
pub use stats::{speedup, TrialSummary};
pub use stream::{PrequentialTrace, StreamingAccuracy};
pub use timing::{time_it, Timed};
pub use topk::top_k_accuracy;
