//! Classification metrics.

/// Fraction of positions where `predicted == actual`.
///
/// Returns `0.0` for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    correct as f64 / predicted.len() as f64
}

/// A `k x k` confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.class_count()).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }
}

/// Builds a confusion matrix from prediction/label pairs.
///
/// # Panics
///
/// Panics if lengths differ or a label/prediction is `>= class_count`.
pub fn confusion_matrix(
    predicted: &[usize],
    actual: &[usize],
    class_count: usize,
) -> ConfusionMatrix {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut counts = vec![vec![0usize; class_count]; class_count];
    for (&p, &a) in predicted.iter().zip(actual) {
        assert!(
            p < class_count && a < class_count,
            "class index out of range"
        );
        counts[a][p] += 1;
    }
    ConfusionMatrix { counts }
}

/// One-vs-rest rates for a single class (§III-C definitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassRates {
    /// `TP / (TP + FN)` — sensitivity / recall / TPR (`1 − FNR`).
    pub sensitivity: f64,
    /// `TN / (TN + FP)` — specificity (`1 − FPR`).
    pub specificity: f64,
    /// `TP / (TP + FP)` — precision (0 when the class is never predicted).
    pub precision: f64,
}

/// Per-class one-vs-rest sensitivity/specificity/precision.
pub fn per_class_rates(cm: &ConfusionMatrix) -> Vec<ClassRates> {
    let k = cm.class_count();
    let total = cm.total();
    (0..k)
        .map(|c| {
            let tp = cm.count(c, c);
            let fn_: usize = (0..k).filter(|&p| p != c).map(|p| cm.count(c, p)).sum();
            let fp: usize = (0..k).filter(|&a| a != c).map(|a| cm.count(a, c)).sum();
            let tn = total - tp - fn_ - fp;
            ClassRates {
                sensitivity: ratio(tp, tp + fn_),
                specificity: ratio(tn, tn + fp),
                precision: ratio(tp, tp + fp),
            }
        })
        .collect()
}

/// Macro-averaged F1 score: the unweighted mean over classes of
/// `2·P·R / (P + R)` (classes with zero precision+recall contribute 0).
///
/// Preferred over plain accuracy when class sizes are imbalanced, e.g. the
/// DIABETES outcome classes.
pub fn macro_f1(cm: &ConfusionMatrix) -> f64 {
    let rates = per_class_rates(cm);
    if rates.is_empty() {
        return 0.0;
    }
    let sum: f64 = rates
        .iter()
        .map(|r| {
            let denom = r.precision + r.sensitivity;
            if denom > 0.0 {
                2.0 * r.precision * r.sensitivity / denom
            } else {
                0.0
            }
        })
        .sum();
    sum / rates.len() as f64
}

/// Balanced accuracy: the unweighted mean of per-class sensitivities
/// (recall), insensitive to class imbalance.
pub fn balanced_accuracy(cm: &ConfusionMatrix) -> f64 {
    let rates = per_class_rates(cm);
    if rates.is_empty() {
        return 0.0;
    }
    rates.iter().map(|r| r.sensitivity).sum::<f64>() / rates.len() as f64
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert!((accuracy(&[0, 1, 1], &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_checked() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(cm.count(0, 0), 2); // two true 0s predicted 0
        assert_eq!(cm.count(0, 1), 1); // one true 0 predicted 1
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn perfect_predictions_have_unit_rates() {
        let cm = confusion_matrix(&[0, 1, 2], &[0, 1, 2], 3);
        for rates in per_class_rates(&cm) {
            assert_eq!(rates.sensitivity, 1.0);
            assert_eq!(rates.specificity, 1.0);
            assert_eq!(rates.precision, 1.0);
        }
    }

    #[test]
    fn rates_match_hand_computation() {
        // actual:    [0, 0, 1, 1]
        // predicted: [0, 1, 1, 1]
        let cm = confusion_matrix(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        let rates = per_class_rates(&cm);
        // Class 0: TP=1, FN=1, FP=0, TN=2.
        assert!((rates[0].sensitivity - 0.5).abs() < 1e-9);
        assert!((rates[0].specificity - 1.0).abs() < 1e-9);
        // Class 1: TP=2, FN=0, FP=1, TN=1.
        assert!((rates[1].sensitivity - 1.0).abs() < 1e-9);
        assert!((rates[1].specificity - 0.5).abs() < 1e-9);
        assert!((rates[1].precision - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn never_predicted_class_has_zero_precision() {
        let cm = confusion_matrix(&[0, 0], &[0, 1], 2);
        let rates = per_class_rates(&cm);
        assert_eq!(rates[1].precision, 0.0);
        assert_eq!(rates[1].sensitivity, 0.0);
    }

    #[test]
    fn empty_matrix_accuracy_is_zero() {
        let cm = confusion_matrix(&[], &[], 3);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn macro_f1_is_one_for_perfect_predictions() {
        let cm = confusion_matrix(&[0, 1, 2], &[0, 1, 2], 3);
        assert!((macro_f1(&cm) - 1.0).abs() < 1e-12);
        assert!((balanced_accuracy(&cm) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_matches_hand_computation() {
        // actual [0,0,1,1], predicted [0,1,1,1]:
        // class 0: P=1, R=0.5 -> F1 = 2/3; class 1: P=2/3, R=1 -> F1 = 0.8.
        let cm = confusion_matrix(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        assert!((macro_f1(&cm) - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
        assert!((balanced_accuracy(&cm) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_ignores_class_imbalance() {
        // 9 of class 0 all correct, 1 of class 1 wrong: plain accuracy 0.9,
        // balanced accuracy (1.0 + 0.0) / 2 = 0.5.
        let predicted = vec![0usize; 10];
        let mut actual = vec![0usize; 9];
        actual.push(1);
        let cm = confusion_matrix(&predicted, &actual, 2);
        assert!((cm.accuracy() - 0.9).abs() < 1e-12);
        assert!((balanced_accuracy(&cm) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_class_gets_zero_f1_without_nan() {
        let cm = confusion_matrix(&[0, 0], &[0, 1], 2);
        let f1 = macro_f1(&cm);
        assert!(f1.is_finite());
        assert!(f1 < 1.0);
    }
}
