//! The shared model-facing API: the [`Classifier`] trait every learner in
//! the workspace implements, per-epoch [`TrainingHistory`] (the raw
//! material of Fig. 2(b) and Fig. 7), and the common [`ModelError`] type.

use disthd_datasets::Dataset;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors produced by model training or inference.
#[derive(Debug)]
pub enum ModelError {
    /// Input shape disagreed with the model configuration.
    Shape(disthd_linalg::ShapeError),
    /// The dataset disagreed with the model (class count, feature count).
    Incompatible(String),
    /// The model was queried before being trained.
    NotFitted,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Shape(e) => write!(f, "shape error: {e}"),
            ModelError::Incompatible(msg) => write!(f, "incompatible input: {msg}"),
            ModelError::NotFitted => write!(f, "model has not been fitted"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<disthd_linalg::ShapeError> for ModelError {
    fn from(e: disthd_linalg::ShapeError) -> Self {
        ModelError::Shape(e)
    }
}

/// One row of a training history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Accuracy on the training set during/after this epoch.
    pub train_accuracy: f64,
    /// Accuracy on the held-out set, if one was supplied to `fit`.
    pub eval_accuracy: Option<f64>,
    /// Wall-clock time this epoch took.
    pub elapsed: Duration,
}

/// Per-epoch training trace — the raw material of Fig. 2(b) and Fig. 7.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an epoch record.
    pub fn push(&mut self, record: EpochRecord) {
        self.records.push(record);
    }

    /// All records in order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Number of epochs run.
    pub fn epochs(&self) -> usize {
        self.records.len()
    }

    /// Total wall-clock training time.
    pub fn total_time(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// Final training accuracy (0.0 if no epochs ran).
    pub fn final_train_accuracy(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.train_accuracy)
    }

    /// Best held-out accuracy seen, if eval data was supplied.
    pub fn best_eval_accuracy(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.eval_accuracy)
            .fold(None, |best, a| Some(best.map_or(a, |b: f64| b.max(a))))
    }

    /// First epoch whose train accuracy reached `threshold`, if any —
    /// the "iterations to convergence" measure of Fig. 7.
    pub fn epochs_to_reach(&self, threshold: f64) -> Option<usize> {
        self.records
            .iter()
            .position(|r| r.train_accuracy >= threshold)
    }
}

/// A trainable multi-class classifier over [`Dataset`]s.
///
/// `fit` may be called repeatedly (models re-initialize or continue per
/// their own semantics); `predict_one` takes `&mut self` because HDC models
/// maintain a lazily refreshed normalized-similarity cache.
pub trait Classifier {
    /// Trains on `train`; if `eval` is given, records held-out accuracy per
    /// epoch in the returned history.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Incompatible`] if the dataset shape disagrees
    /// with the model configuration.
    fn fit(
        &mut self,
        train: &Dataset,
        eval: Option<&Dataset>,
    ) -> Result<TrainingHistory, ModelError>;

    /// Predicts the class of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotFitted`] before `fit`, or
    /// [`ModelError::Shape`] for a wrong-length input.
    fn predict_one(&mut self, features: &[f32]) -> Result<usize, ModelError>;

    /// Predicts every sample of `data`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::predict_one`] errors.
    fn predict(&mut self, data: &Dataset) -> Result<Vec<usize>, ModelError> {
        (0..data.len())
            .map(|i| self.predict_one(data.sample(i)))
            .collect()
    }

    /// Fraction of correctly classified samples of `data`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::predict_one`] errors.
    fn accuracy(&mut self, data: &Dataset) -> Result<f64, ModelError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let predictions = self.predict(data)?;
        let correct = predictions
            .iter()
            .zip(data.labels())
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize, acc: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            train_accuracy: acc,
            eval_accuracy: Some(acc - 0.05),
            elapsed: Duration::from_millis(10),
        }
    }

    #[test]
    fn history_accumulates() {
        let mut h = TrainingHistory::new();
        h.push(record(0, 0.6));
        h.push(record(1, 0.9));
        assert_eq!(h.epochs(), 2);
        assert!((h.final_train_accuracy() - 0.9).abs() < 1e-9);
        assert_eq!(h.total_time(), Duration::from_millis(20));
    }

    #[test]
    fn best_eval_accuracy_tracks_max() {
        let mut h = TrainingHistory::new();
        h.push(record(0, 0.7));
        h.push(record(1, 0.95));
        h.push(record(2, 0.8));
        assert!((h.best_eval_accuracy().unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn epochs_to_reach_finds_first_crossing() {
        let mut h = TrainingHistory::new();
        h.push(record(0, 0.5));
        h.push(record(1, 0.85));
        h.push(record(2, 0.9));
        assert_eq!(h.epochs_to_reach(0.8), Some(1));
        assert_eq!(h.epochs_to_reach(0.99), None);
    }

    #[test]
    fn empty_history_defaults() {
        let h = TrainingHistory::new();
        assert_eq!(h.final_train_accuracy(), 0.0);
        assert_eq!(h.best_eval_accuracy(), None);
        assert_eq!(h.epochs(), 0);
    }

    #[test]
    fn model_error_display() {
        assert!(ModelError::NotFitted
            .to_string()
            .contains("not been fitted"));
        let e = ModelError::Incompatible("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
