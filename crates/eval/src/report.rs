//! Fixed-width text tables for the experiment binaries.
//!
//! Each experiment binary prints the rows/series its paper figure reports;
//! this module keeps the formatting in one place.

/// A simple fixed-width table builder.
///
/// # Example
///
/// ```
/// use disthd_eval::report::Table;
///
/// let mut table = Table::new(vec!["model".into(), "accuracy".into()]);
/// table.add_row(vec!["DistHD".into(), "94.1%".into()]);
/// let text = table.render();
/// assert!(text.contains("DistHD"));
/// assert!(text.contains("accuracy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a data row (shorter rows are padded with empty cells; longer
    /// rows are truncated to the header width).
    pub fn add_row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
                if c + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an accuracy fraction as `"93.42%"`.
pub fn percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a duration in seconds with adaptive precision.
pub fn seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}ms", s * 1000.0)
    }
}

/// Formats a speedup/ratio as `"5.97x"`.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.add_row(vec!["wide_cell_here".into(), "x".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Second column should start at the same offset in header and row.
        let header_offset = lines[0].find("long_header").unwrap();
        let row_offset = lines[2].find('x').unwrap();
        assert_eq!(header_offset, row_offset);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.row_count(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn long_rows_are_truncated() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "overflow".into()]);
        assert!(!t.render().contains("overflow"));
    }

    #[test]
    fn formatters() {
        assert_eq!(percent(0.9342), "93.42%");
        assert_eq!(ratio(5.974), "5.97x");
        assert_eq!(seconds(0.0123), "12.30ms");
        assert_eq!(seconds(3.456), "3.46s");
        assert_eq!(seconds(250.0), "250s");
    }
}
