//! Bit-flip robustness campaigns (Fig. 8).
//!
//! A campaign takes a *clean accuracy*, then for each `(bit width, error
//! rate)` cell: quantize the model memory, flip random bits, dequantize,
//! re-evaluate, and report the **quality loss** (clean − faulted accuracy),
//! averaged over several fault seeds.  The model interaction is abstracted
//! behind a closure so the same driver serves DistHD class matrices and
//! MLP weight stacks.

use disthd_hd::noise::flip_random_bits;
use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::{Matrix, RngSeed, SeededRng};

/// Accuracy degradation for one `(width, rate)` cell of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityLoss {
    /// Quantization precision of the stored model.
    pub width: BitWidth,
    /// Fraction of memory bits flipped.
    pub error_rate: f64,
    /// Clean (fault-free) accuracy at this precision.
    pub clean_accuracy: f64,
    /// Mean accuracy across fault trials.
    pub faulted_accuracy: f64,
}

impl QualityLoss {
    /// `clean − faulted` accuracy, floored at zero (the paper reports loss
    /// percentages).
    pub fn loss(&self) -> f64 {
        (self.clean_accuracy - self.faulted_accuracy).max(0.0)
    }
}

/// One sweep point request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Quantization width to store the model at.
    pub width: BitWidth,
    /// Bit-flip rate to inject.
    pub error_rate: f64,
}

/// Runs a fault campaign on a model stored as a single matrix.
///
/// `evaluate` receives a (possibly faulted) dequantized matrix and returns
/// accuracy on the evaluation set.  For each requested point the campaign
/// runs `trials` independent fault injections and averages.
///
/// The paper's Fig. 8 error rates: 1%, 2%, 5%, 10%, 15%.
pub fn matrix_fault_campaign<F>(
    model: &Matrix,
    points: &[RobustnessPoint],
    trials: usize,
    seed: RngSeed,
    mut evaluate: F,
) -> Vec<QualityLoss>
where
    F: FnMut(&Matrix) -> f64,
{
    points
        .iter()
        .enumerate()
        .map(|(pi, point)| {
            let quantized = QuantizedMatrix::quantize(model, point.width);
            let clean_accuracy = evaluate(&quantized.dequantize());
            let mut sum = 0.0;
            for trial in 0..trials.max(1) {
                let mut faulted = quantized.clone();
                let mut rng = SeededRng::derive_stream(seed, (pi as u64) << 32 | trial as u64);
                flip_random_bits(&mut faulted, point.error_rate, &mut rng);
                sum += evaluate(&faulted.dequantize());
            }
            QualityLoss {
                width: point.width,
                error_rate: point.error_rate,
                clean_accuracy,
                faulted_accuracy: sum / trials.max(1) as f64,
            }
        })
        .collect()
}

/// Runs a fault campaign on a model stored as several matrices (e.g. the
/// per-layer weights of an MLP), faulting all of them per trial.
///
/// `evaluate` receives the full set of faulted matrices.
pub fn multi_matrix_fault_campaign<F>(
    matrices: &[Matrix],
    points: &[RobustnessPoint],
    trials: usize,
    seed: RngSeed,
    mut evaluate: F,
) -> Vec<QualityLoss>
where
    F: FnMut(&[Matrix]) -> f64,
{
    points
        .iter()
        .enumerate()
        .map(|(pi, point)| {
            let quantized: Vec<QuantizedMatrix> = matrices
                .iter()
                .map(|m| QuantizedMatrix::quantize(m, point.width))
                .collect();
            let clean: Vec<Matrix> = quantized.iter().map(|q| q.dequantize()).collect();
            let clean_accuracy = evaluate(&clean);
            let mut sum = 0.0;
            for trial in 0..trials.max(1) {
                let faulted: Vec<Matrix> = quantized
                    .iter()
                    .enumerate()
                    .map(|(mi, q)| {
                        let mut fq = q.clone();
                        let mut rng = SeededRng::derive_stream(
                            seed,
                            (pi as u64) << 40 | (mi as u64) << 20 | trial as u64,
                        );
                        flip_random_bits(&mut fq, point.error_rate, &mut rng);
                        fq.dequantize()
                    })
                    .collect();
                sum += evaluate(&faulted);
            }
            QualityLoss {
                width: point.width,
                error_rate: point.error_rate,
                clean_accuracy,
                faulted_accuracy: sum / trials.max(1) as f64,
            }
        })
        .collect()
}

/// The paper's Fig. 8 error-rate sweep.
pub fn paper_error_rates() -> [f64; 5] {
    [0.01, 0.02, 0.05, 0.10, 0.15]
}

/// Full Fig. 8 grid: every [`BitWidth`] × every paper error rate.
pub fn paper_grid() -> Vec<RobustnessPoint> {
    let mut points = Vec::new();
    for width in BitWidth::all() {
        for &error_rate in &paper_error_rates() {
            points.push(RobustnessPoint { width, error_rate });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy "accuracy": fraction of entries whose sign survived.
    fn sign_agreement(reference: &Matrix) -> impl FnMut(&Matrix) -> f64 + '_ {
        move |m: &Matrix| {
            let total = reference.as_slice().len();
            let same = reference
                .as_slice()
                .iter()
                .zip(m.as_slice())
                .filter(|(a, b)| (**a >= 0.0) == (**b >= 0.0))
                .count();
            same as f64 / total as f64
        }
    }

    fn model() -> Matrix {
        Matrix::from_fn(8, 64, |r, c| ((r * 17 + c * 3) as f32).sin())
    }

    #[test]
    fn zero_rate_has_zero_loss() {
        let m = model();
        let points = [RobustnessPoint {
            width: BitWidth::B8,
            error_rate: 0.0,
        }];
        let results = matrix_fault_campaign(&m, &points, 3, RngSeed(1), sign_agreement(&m));
        assert!(results[0].loss() < 1e-9);
    }

    #[test]
    fn higher_rates_lose_more_quality() {
        let m = model();
        let points = [
            RobustnessPoint {
                width: BitWidth::B8,
                error_rate: 0.01,
            },
            RobustnessPoint {
                width: BitWidth::B8,
                error_rate: 0.15,
            },
        ];
        let results = matrix_fault_campaign(&m, &points, 5, RngSeed(2), sign_agreement(&m));
        assert!(
            results[1].loss() > results[0].loss(),
            "15% loss {} should exceed 1% loss {}",
            results[1].loss(),
            results[0].loss()
        );
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let m = model();
        let points = [RobustnessPoint {
            width: BitWidth::B4,
            error_rate: 0.05,
        }];
        let a = matrix_fault_campaign(&m, &points, 3, RngSeed(7), sign_agreement(&m));
        let b = matrix_fault_campaign(&m, &points, 3, RngSeed(7), sign_agreement(&m));
        assert_eq!(a[0].faulted_accuracy, b[0].faulted_accuracy);
    }

    #[test]
    fn multi_matrix_campaign_faults_all_layers() {
        let layers = vec![model(), model()];
        let points = [RobustnessPoint {
            width: BitWidth::B8,
            error_rate: 0.10,
        }];
        let reference = model();
        let results = multi_matrix_fault_campaign(&layers, &points, 2, RngSeed(3), |ms| {
            // Accuracy drops only if this closure sees faulted copies.
            let mut eval = sign_agreement(&reference);
            ms.iter().map(&mut eval).sum::<f64>() / ms.len() as f64
        });
        assert!(results[0].loss() > 0.0);
    }

    #[test]
    fn paper_grid_has_twenty_cells() {
        assert_eq!(paper_grid().len(), 20);
    }
}
