//! ROC curves and AUC (Fig. 6).
//!
//! The paper presents sensitivity/specificity trade-offs of DistHD's weight
//! parameters as ROC curves over a binary-ized task: given a per-sample
//! *score* for the positive class, sweep the decision threshold and trace
//! (FPR, TPR).

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate (`1 − specificity`), the x axis of Fig. 6.
    pub fpr: f64,
    /// True-positive rate (sensitivity), the y axis of Fig. 6.
    pub tpr: f64,
    /// The score threshold that produced this point.
    pub threshold: f32,
}

/// Computes the ROC curve for binary labels (`true` = positive) and
/// positive-class scores.
///
/// Points are ordered by increasing FPR, starting at `(0, 0)` and ending at
/// `(1, 1)`.  Ties in score are handled by processing equal scores as one
/// threshold step (the standard construction).
///
/// Returns just the two endpoints when either class is absent.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    let endpoints = vec![
        RocPoint {
            fpr: 0.0,
            tpr: 0.0,
            threshold: f32::INFINITY,
        },
        RocPoint {
            fpr: 1.0,
            tpr: 1.0,
            threshold: f32::NEG_INFINITY,
        },
    ];
    if positives == 0 || negatives == 0 {
        return endpoints;
    }

    // Sort indices by descending score.
    let order = disthd_linalg::argsort_descending(scores);
    let mut points = Vec::with_capacity(scores.len() + 2);
    points.push(endpoints[0]);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tie group.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp as f64 / negatives as f64,
            tpr: tp as f64 / positives as f64,
            threshold,
        });
    }
    points
}

/// Area under the ROC curve via the trapezoidal rule.
///
/// `0.5` is chance; `1.0` is a perfect ranker.
pub fn auc(curve: &[RocPoint]) -> f64 {
    let mut area = 0.0;
    for pair in curve.windows(2) {
        let dx = pair[1].fpr - pair[0].fpr;
        area += dx * (pair[0].tpr + pair[1].tpr) / 2.0;
    }
    area
}

/// The operating point maximizing Youden's J statistic (`tpr − fpr`) —
/// the standard single-threshold summary of an ROC curve, used to
/// calibrate one-class anomaly detectors from inlier/outlier scores.
///
/// Returns the finite threshold of the best interior point, or `None` if
/// the curve has no interior points (degenerate single-class input: only
/// the `±∞` endpoints exist and no threshold separates anything).  Ties
/// in J resolve to the earlier (higher-threshold, lower-FPR) point.
pub fn youden_threshold(curve: &[RocPoint]) -> Option<f32> {
    curve
        .iter()
        .filter(|p| p.threshold.is_finite())
        .map(|p| (p.tpr - p.fpr, p.threshold))
        .fold(None, |best: Option<(f64, f32)>, (j, t)| match best {
            Some((bj, _)) if bj >= j => best,
            _ => Some((j, t)),
        })
        .map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn youden_picks_the_separating_threshold() {
        // Positives score {0.9, 0.8}, negatives {0.2, 0.1}: the best
        // operating point accepts exactly the positives, so J peaks at the
        // lowest positive score.
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let t = youden_threshold(&roc_curve(&scores, &labels)).unwrap();
        assert_eq!(t, 0.8);
        // Classify by `score >= t`: perfect split.
        for (s, l) in scores.iter().zip(labels) {
            assert_eq!(*s >= t, l);
        }
    }

    #[test]
    fn youden_trades_off_overlapping_classes() {
        // One negative outscores one positive; the J-optimal point still
        // separates the bulk (accept 0.9/0.7/0.6, reject 0.3/0.2).
        let scores = [0.9, 0.7, 0.3, 0.6, 0.2];
        let labels = [true, true, true, false, false];
        let t = youden_threshold(&roc_curve(&scores, &labels)).unwrap();
        assert_eq!(t, 0.7);
    }

    #[test]
    fn youden_is_none_on_degenerate_curves() {
        assert_eq!(
            youden_threshold(&roc_curve(&[0.5, 0.6], &[true, true])),
            None
        );
        assert_eq!(youden_threshold(&[]), None);
    }

    #[test]
    fn perfect_ranker_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let curve = roc_curve(&scores, &labels);
        assert!((auc(&curve) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_ranker_has_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc(&roc_curve(&scores, &labels)) < 1e-9);
    }

    #[test]
    fn random_scores_are_near_half() {
        // Deterministic interleaving = exactly 0.5 by symmetry.
        let scores = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2];
        let labels = [true, false, true, false, true, false, true, false];
        let a = auc(&roc_curve(&scores, &labels));
        assert!((a - 0.5).abs() < 0.2, "auc {a}");
    }

    #[test]
    fn curve_starts_at_origin_and_ends_at_one_one() {
        let scores = [0.3, 0.6, 0.1];
        let labels = [true, false, true];
        let curve = roc_curve(&scores, &labels);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn degenerate_single_class_returns_endpoints() {
        let curve = roc_curve(&[0.5, 0.6], &[true, true]);
        assert_eq!(curve.len(), 2);
        assert!((auc(&curve) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tied_scores_are_one_step() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        // (0,0) -> (1,1) in a single tie step.
        assert_eq!(curve.len(), 2);
        assert!((auc(&curve) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn monotone_fpr() {
        let scores = [0.9, 0.1, 0.8, 0.3, 0.7];
        let labels = [true, false, false, true, true];
        let curve = roc_curve(&scores, &labels);
        for pair in curve.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
        }
    }
}
