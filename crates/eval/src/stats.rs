//! Aggregate statistics over repeated experiment trials.
//!
//! Experiment binaries run each configuration over several seeds; this
//! module summarizes the trials (mean, standard deviation, min/max, a
//! normal-approximation confidence interval) for honest reporting.

/// Summary statistics of a set of trial measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialSummary {
    /// Number of trials aggregated.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single trial).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl TrialSummary {
    /// Summarizes a non-empty set of trials.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize zero trials");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the ~95% normal-approximation confidence interval
    /// (`1.96 · s / √n`); 0 for a single trial.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }

    /// Formats as `"93.4% ± 0.8%"` when the values are accuracy fractions.
    pub fn format_percent(&self) -> String {
        format!(
            "{:.2}% ± {:.2}%",
            self.mean * 100.0,
            self.ci95_half_width() * 100.0
        )
    }
}

/// Speedup of `baseline` over `candidate` as a ratio of means.
///
/// Returns `f64::INFINITY` if the candidate mean is zero.
pub fn speedup(baseline: &TrialSummary, candidate: &TrialSummary) -> f64 {
    if candidate.mean == 0.0 {
        f64::INFINITY
    } else {
        baseline.mean / candidate.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = TrialSummary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
    }

    #[test]
    fn single_trial_has_zero_spread() {
        let s = TrialSummary::of(&[0.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn empty_trials_panic() {
        TrialSummary::of(&[]);
    }

    #[test]
    fn ci_narrows_with_more_trials() {
        let few = TrialSummary::of(&[0.8, 0.9]);
        let many = TrialSummary::of(&[0.8, 0.9, 0.8, 0.9, 0.8, 0.9, 0.8, 0.9]);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn format_percent_renders() {
        let s = TrialSummary::of(&[0.9, 0.92]);
        let text = s.format_percent();
        assert!(text.contains('%'));
        assert!(text.contains('±'));
    }

    #[test]
    fn speedup_ratio() {
        let slow = TrialSummary::of(&[2.0, 2.0]);
        let fast = TrialSummary::of(&[0.5, 0.5]);
        assert!((speedup(&slow, &fast) - 4.0).abs() < 1e-12);
        let zero = TrialSummary::of(&[0.0]);
        assert!(speedup(&slow, &zero).is_infinite());
    }
}
