//! Streaming (prequential) accuracy for online learners.
//!
//! Offline accuracy over a frozen test split cannot describe an
//! online-learning deployment, where the model changes between queries.
//! The standard streaming protocol is *prequential* ("test then train"):
//! every arriving sample is first scored with the current model, the
//! prediction is recorded, and only then may the sample update the model.
//! [`StreamingAccuracy`] accumulates that record — both the lifetime
//! accuracy and a sliding-window accuracy that tracks recent behaviour
//! (recovery after drift or a model hot-swap).
//!
//! [`PrequentialTrace`] extends the accumulator for **concept-drift
//! experiments**: it keeps the full per-sample windowed-accuracy trace so
//! that post-drift recovery time and forgetting can be measured exactly
//! (see `DESIGN.md` §11).

use std::collections::VecDeque;

/// Prequential accuracy accumulator with an optional sliding window.
///
/// # Example
///
/// ```
/// use disthd_eval::stream::StreamingAccuracy;
///
/// let mut acc = StreamingAccuracy::with_window(2);
/// acc.record(1, 1); // correct
/// acc.record(0, 1); // wrong
/// acc.record(1, 1); // correct
/// assert!((acc.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// // The window only sees the last two samples: one wrong, one correct.
/// assert_eq!(acc.windowed_accuracy(), Some(0.5));
/// assert_eq!(acc.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingAccuracy {
    seen: usize,
    correct: usize,
    window: usize,
    recent: VecDeque<bool>,
}

impl StreamingAccuracy {
    /// Creates an accumulator without a sliding window (lifetime accuracy
    /// only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accumulator that additionally tracks accuracy over the
    /// last `window` samples (`0` disables the window).
    pub fn with_window(window: usize) -> Self {
        Self {
            window,
            ..Self::default()
        }
    }

    /// Records one test-then-train outcome.
    pub fn record(&mut self, predicted: usize, actual: usize) {
        let hit = predicted == actual;
        self.seen += 1;
        self.correct += usize::from(hit);
        if self.window > 0 {
            if self.recent.len() == self.window {
                self.recent.pop_front();
            }
            self.recent.push_back(hit);
        }
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.seen
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Lifetime prequential accuracy (`0.0` before any sample).
    pub fn accuracy(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.correct as f64 / self.seen as f64
    }

    /// Accuracy over the sliding window, or `None` when no window was
    /// configured or nothing has been recorded yet.
    pub fn windowed_accuracy(&self) -> Option<f64> {
        if self.window == 0 || self.recent.is_empty() {
            return None;
        }
        let hits = self.recent.iter().filter(|&&h| h).count();
        Some(hits as f64 / self.recent.len() as f64)
    }
}

/// Prequential accuracy trace for concept-drift experiments.
///
/// Wraps [`StreamingAccuracy`] and additionally remembers the windowed
/// accuracy *after every recorded sample*, so drift experiments can ask
/// exact, reproducible questions about the trace:
///
/// * [`recovery_time`](Self::recovery_time) — how many samples after a
///   drift point the windowed accuracy first climbs back to a target;
/// * [`forgetting`](Self::forgetting) — how far the windowed accuracy
///   fell after the drift relative to its pre-drift peak;
/// * [`trace`](Self::trace) — the raw per-sample windowed-accuracy curve.
///
/// # Example
///
/// ```
/// use disthd_eval::stream::PrequentialTrace;
///
/// let mut trace = PrequentialTrace::new(2);
/// for (p, a) in [(1, 1), (1, 1), (0, 1), (0, 1), (1, 1), (1, 1)] {
///     trace.record(p, a);
/// }
/// // Drift hit at sample 2; the window recovers to 1.0 three samples later.
/// assert_eq!(trace.recovery_time(2, 1.0), Some(3));
/// // Windowed accuracy fell from a pre-drift peak of 1.0 down to 0.0.
/// assert!((trace.forgetting(2) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PrequentialTrace {
    inner: StreamingAccuracy,
    trace: Vec<f64>,
}

impl PrequentialTrace {
    /// Creates a trace whose windowed accuracy spans the last `window`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` — a drift trace without a window cannot
    /// measure recovery.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "PrequentialTrace requires a non-zero window");
        Self {
            inner: StreamingAccuracy::with_window(window),
            trace: Vec::new(),
        }
    }

    /// Records one test-then-train outcome and snapshots the windowed
    /// accuracy.
    pub fn record(&mut self, predicted: usize, actual: usize) {
        self.inner.record(predicted, actual);
        self.trace.push(
            self.inner
                .windowed_accuracy()
                .expect("window is non-zero and a sample was just recorded"),
        );
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lifetime prequential accuracy (`0.0` before any sample).
    pub fn accuracy(&self) -> f64 {
        self.inner.accuracy()
    }

    /// The windowed accuracy after the most recent sample, or `None` when
    /// nothing has been recorded yet.
    pub fn windowed_accuracy(&self) -> Option<f64> {
        self.inner.windowed_accuracy()
    }

    /// The windowed accuracy after each recorded sample, in arrival order.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }

    /// Samples needed after the drift point for the windowed accuracy to
    /// first reach `target`.
    ///
    /// `drift_at` is the index of the first post-drift sample (sample
    /// indices count from zero).  Returns `Some(n)` where the windowed
    /// accuracy at sample `drift_at + n` is the first at-or-after the
    /// drift to satisfy `>= target`; `Some(0)` therefore means the trace
    /// never dipped below the target at the drift point.  Returns `None`
    /// when the target is never reached (or `drift_at` is beyond the
    /// trace).
    pub fn recovery_time(&self, drift_at: usize, target: f64) -> Option<usize> {
        self.trace
            .iter()
            .enumerate()
            .skip(drift_at)
            .find(|(_, &acc)| acc >= target)
            .map(|(i, _)| i - drift_at)
    }

    /// How much windowed accuracy the drift cost before recovery: the
    /// pre-drift peak minus the post-drift minimum.
    ///
    /// Returns `0.0` when the trace is too short to have both a pre-drift
    /// and a post-drift segment (`drift_at == 0` or beyond the trace), and
    /// is clamped below at `0.0` (a drift that *helps* does not count as
    /// negative forgetting).
    pub fn forgetting(&self, drift_at: usize) -> f64 {
        if drift_at == 0 || drift_at >= self.trace.len() {
            return 0.0;
        }
        let peak = self.trace[..drift_at]
            .iter()
            .fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let trough = self.trace[drift_at..]
            .iter()
            .fold(f64::INFINITY, |m, &v| m.min(v));
        (peak - trough).max(0.0)
    }

    /// The minimum windowed accuracy at or after sample index `at`
    /// (`None` when `at` is beyond the trace).
    pub fn min_after(&self, at: usize) -> Option<f64> {
        if at >= self.trace.len() {
            return None;
        }
        Some(
            self.trace[at..]
                .iter()
                .fold(f64::INFINITY, |m, &v| m.min(v)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_accuracy_accumulates() {
        let mut acc = StreamingAccuracy::new();
        assert!(acc.is_empty());
        assert_eq!(acc.accuracy(), 0.0);
        for (p, a) in [(0, 0), (1, 0), (2, 2), (3, 3)] {
            acc.record(p, a);
        }
        assert_eq!(acc.len(), 4);
        assert!((acc.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(acc.windowed_accuracy(), None);
    }

    #[test]
    fn window_tracks_recent_samples_only() {
        let mut acc = StreamingAccuracy::with_window(3);
        // Three misses, then three hits: lifetime 0.5, window 1.0.
        for _ in 0..3 {
            acc.record(0, 1);
        }
        for _ in 0..3 {
            acc.record(1, 1);
        }
        assert!((acc.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(acc.windowed_accuracy(), Some(1.0));
    }

    #[test]
    fn partial_window_divides_by_observed_count() {
        let mut acc = StreamingAccuracy::with_window(10);
        acc.record(1, 1);
        acc.record(0, 1);
        assert_eq!(acc.windowed_accuracy(), Some(0.5));
    }

    #[test]
    fn window_boundary_is_exact() {
        // A window of 4 must hold exactly the last 4 outcomes: the 5th
        // record evicts the 1st, no sooner and no later.
        let mut acc = StreamingAccuracy::with_window(4);
        acc.record(0, 1); // miss — the only miss
        for _ in 0..3 {
            acc.record(1, 1);
        }
        // Window full at exactly `window` samples: [miss, hit, hit, hit].
        assert_eq!(acc.windowed_accuracy(), Some(0.75));
        // One more hit evicts the miss: window is all hits.
        acc.record(1, 1);
        assert_eq!(acc.windowed_accuracy(), Some(1.0));
        assert!((acc.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn window_of_one_reflects_only_the_last_sample() {
        let mut acc = StreamingAccuracy::with_window(1);
        acc.record(0, 1);
        assert_eq!(acc.windowed_accuracy(), Some(0.0));
        acc.record(1, 1);
        assert_eq!(acc.windowed_accuracy(), Some(1.0));
        acc.record(0, 1);
        assert_eq!(acc.windowed_accuracy(), Some(0.0));
        assert!((acc.accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_recorder_is_well_defined() {
        let acc = StreamingAccuracy::with_window(8);
        assert!(acc.is_empty());
        assert_eq!(acc.len(), 0);
        assert_eq!(acc.accuracy(), 0.0);
        assert_eq!(acc.windowed_accuracy(), None);
        let no_window = StreamingAccuracy::new();
        assert_eq!(no_window.windowed_accuracy(), None);
    }

    #[test]
    fn windowed_and_cumulative_diverge_under_label_flip() {
        // A perfect predictor whose world flips labels mid-stream: the
        // cumulative accuracy decays slowly while the window collapses to
        // zero, then snaps back once the window slides past the flip.
        let mut acc = StreamingAccuracy::with_window(5);
        for _ in 0..20 {
            acc.record(1, 1);
        }
        for _ in 0..5 {
            acc.record(1, 0); // concept flipped, model still answers 1
        }
        assert_eq!(acc.windowed_accuracy(), Some(0.0));
        assert!((acc.accuracy() - 0.8).abs() < 1e-12);
        // The model adapts: five correct answers refill the window while
        // the lifetime accuracy still carries the flip's cost.
        for _ in 0..5 {
            acc.record(0, 0);
        }
        assert_eq!(acc.windowed_accuracy(), Some(1.0));
        assert!((acc.accuracy() - 25.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn trace_records_windowed_accuracy_per_sample() {
        let mut trace = PrequentialTrace::new(2);
        trace.record(1, 1);
        trace.record(0, 1);
        trace.record(0, 1);
        assert_eq!(trace.trace(), &[1.0, 0.5, 0.0]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.windowed_accuracy(), Some(0.0));
        assert!((trace.accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_time_counts_samples_from_the_drift_point() {
        let mut trace = PrequentialTrace::new(2);
        // 4 hits, drift at sample 4, 3 misses, then hits again.
        for _ in 0..4 {
            trace.record(1, 1);
        }
        for _ in 0..3 {
            trace.record(1, 0);
        }
        for _ in 0..4 {
            trace.record(0, 0);
        }
        // Window=2: first post-drift sample with windowed acc >= 1.0 is
        // the second recovered hit (samples 7 and 8 → index 8).
        assert_eq!(trace.recovery_time(4, 1.0), Some(4));
        // At the drift sample itself the window still holds a pre-drift
        // hit, so a 0.5 target is met immediately.
        assert_eq!(trace.recovery_time(4, 0.5), Some(0));
        // Once the window is all misses (sample 5), half-recovery takes
        // until the first post-drift hit at sample 7.
        assert_eq!(trace.recovery_time(5, 0.5), Some(2));
        // A target the trace never reaches.
        assert_eq!(trace.recovery_time(4, 1.1), None);
        // Drift index beyond the trace.
        assert_eq!(trace.recovery_time(100, 0.5), None);
    }

    #[test]
    fn forgetting_measures_peak_to_trough() {
        let mut trace = PrequentialTrace::new(2);
        for _ in 0..4 {
            trace.record(1, 1);
        }
        for _ in 0..2 {
            trace.record(1, 0);
        }
        assert!((trace.forgetting(4) - 1.0).abs() < 1e-12);
        // Degenerate drift points.
        assert_eq!(trace.forgetting(0), 0.0);
        assert_eq!(trace.forgetting(100), 0.0);
        assert_eq!(trace.min_after(4), Some(0.0));
        assert_eq!(trace.min_after(100), None);
    }

    #[test]
    #[should_panic(expected = "non-zero window")]
    fn trace_rejects_zero_window() {
        let _ = PrequentialTrace::new(0);
    }
}
