//! Streaming (prequential) accuracy for online learners.
//!
//! Offline accuracy over a frozen test split cannot describe an
//! online-learning deployment, where the model changes between queries.
//! The standard streaming protocol is *prequential* ("test then train"):
//! every arriving sample is first scored with the current model, the
//! prediction is recorded, and only then may the sample update the model.
//! [`StreamingAccuracy`] accumulates that record — both the lifetime
//! accuracy and a sliding-window accuracy that tracks recent behaviour
//! (recovery after drift or a model hot-swap).

use std::collections::VecDeque;

/// Prequential accuracy accumulator with an optional sliding window.
///
/// # Example
///
/// ```
/// use disthd_eval::stream::StreamingAccuracy;
///
/// let mut acc = StreamingAccuracy::with_window(2);
/// acc.record(1, 1); // correct
/// acc.record(0, 1); // wrong
/// acc.record(1, 1); // correct
/// assert!((acc.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// // The window only sees the last two samples: one wrong, one correct.
/// assert_eq!(acc.windowed_accuracy(), Some(0.5));
/// assert_eq!(acc.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingAccuracy {
    seen: usize,
    correct: usize,
    window: usize,
    recent: VecDeque<bool>,
}

impl StreamingAccuracy {
    /// Creates an accumulator without a sliding window (lifetime accuracy
    /// only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accumulator that additionally tracks accuracy over the
    /// last `window` samples (`0` disables the window).
    pub fn with_window(window: usize) -> Self {
        Self {
            window,
            ..Self::default()
        }
    }

    /// Records one test-then-train outcome.
    pub fn record(&mut self, predicted: usize, actual: usize) {
        let hit = predicted == actual;
        self.seen += 1;
        self.correct += usize::from(hit);
        if self.window > 0 {
            if self.recent.len() == self.window {
                self.recent.pop_front();
            }
            self.recent.push_back(hit);
        }
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.seen
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Lifetime prequential accuracy (`0.0` before any sample).
    pub fn accuracy(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.correct as f64 / self.seen as f64
    }

    /// Accuracy over the sliding window, or `None` when no window was
    /// configured or nothing has been recorded yet.
    pub fn windowed_accuracy(&self) -> Option<f64> {
        if self.window == 0 || self.recent.is_empty() {
            return None;
        }
        let hits = self.recent.iter().filter(|&&h| h).count();
        Some(hits as f64 / self.recent.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_accuracy_accumulates() {
        let mut acc = StreamingAccuracy::new();
        assert!(acc.is_empty());
        assert_eq!(acc.accuracy(), 0.0);
        for (p, a) in [(0, 0), (1, 0), (2, 2), (3, 3)] {
            acc.record(p, a);
        }
        assert_eq!(acc.len(), 4);
        assert!((acc.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(acc.windowed_accuracy(), None);
    }

    #[test]
    fn window_tracks_recent_samples_only() {
        let mut acc = StreamingAccuracy::with_window(3);
        // Three misses, then three hits: lifetime 0.5, window 1.0.
        for _ in 0..3 {
            acc.record(0, 1);
        }
        for _ in 0..3 {
            acc.record(1, 1);
        }
        assert!((acc.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(acc.windowed_accuracy(), Some(1.0));
    }

    #[test]
    fn partial_window_divides_by_observed_count() {
        let mut acc = StreamingAccuracy::with_window(10);
        acc.record(1, 1);
        acc.record(0, 1);
        assert_eq!(acc.windowed_accuracy(), Some(0.5));
    }
}
