//! Wall-clock measurement helpers (Fig. 5).
//!
//! Absolute times on this container are meaningless next to the paper's
//! i9-12900 testbed; the harness reports **ratios** between models measured
//! with the same helpers, which is the quantity the paper's claims
//! (5.97× training, 8.09× inference) are stated in.

use std::time::{Duration, Instant};

/// A value together with how long it took to produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Wall-clock time of the computation.
    pub elapsed: Duration,
}

impl<T> Timed<T> {
    /// Elapsed time in (fractional) seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Runs `f` once and returns its result with the wall-clock duration.
///
/// # Example
///
/// ```
/// let timed = disthd_eval::time_it(|| (0..1000).sum::<u64>());
/// assert_eq!(timed.value, 499_500);
/// ```
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        elapsed: start.elapsed(),
    }
}

/// Runs `f` `repeats` times and returns the result of the last run together
/// with the *mean* duration — smooths scheduler noise for sub-millisecond
/// inference measurements.
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn time_mean<T, F: FnMut() -> T>(repeats: usize, mut f: F) -> Timed<T> {
    assert!(repeats > 0, "repeats must be positive");
    let start = Instant::now();
    let mut value = None;
    for _ in 0..repeats {
        value = Some(f());
    }
    Timed {
        value: value.expect("at least one repeat"),
        elapsed: start.elapsed() / repeats as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value() {
        let t = time_it(|| 41 + 1);
        assert_eq!(t.value, 42);
    }

    #[test]
    fn time_it_measures_sleep() {
        let t = time_it(|| std::thread::sleep(Duration::from_millis(20)));
        assert!(
            t.elapsed >= Duration::from_millis(15),
            "elapsed {:?}",
            t.elapsed
        );
        assert!(t.seconds() >= 0.015);
    }

    #[test]
    fn time_mean_divides_by_repeats() {
        let t = time_mean(4, || std::thread::sleep(Duration::from_millis(5)));
        // Mean per-iteration should be ~5ms, not ~20ms.
        assert!(
            t.elapsed < Duration::from_millis(15),
            "mean {:?}",
            t.elapsed
        );
    }

    #[test]
    #[should_panic(expected = "repeats must be positive")]
    fn zero_repeats_panics() {
        time_mean(0, || ());
    }
}
