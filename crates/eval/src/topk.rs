//! Top-k accuracy — the measurement behind the paper's Fig. 2(b)
//! motivation: SOTA HDC is far better at top-2 than top-1 classification.

/// Fraction of samples whose true label appears in the `k` highest-scoring
/// classes.
///
/// `scores` holds one row of per-class scores per sample.
///
/// Returns `0.0` for empty input.
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`, `k == 0`, or any row is
/// shorter than `k`.
pub fn top_k_accuracy(scores: &[Vec<f32>], labels: &[usize], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(k > 0, "k must be positive");
    if scores.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for (row, &label) in scores.iter().zip(labels) {
        assert!(row.len() >= k, "row shorter than k");
        let top = disthd_linalg::top_k_largest(row, k);
        if top.contains(&label) {
            hits += 1;
        }
    }
    hits as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Vec<Vec<f32>> {
        vec![
            vec![0.9, 0.5, 0.1], // best: 0, second: 1
            vec![0.2, 0.3, 0.8], // best: 2, second: 1
            vec![0.4, 0.6, 0.5], // best: 1, second: 2
        ]
    }

    #[test]
    fn top1_counts_argmax_hits() {
        let acc = top_k_accuracy(&scores(), &[0, 1, 1], 1);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn top2_is_at_least_top1() {
        let labels = [1, 1, 0];
        let s = scores();
        let top1 = top_k_accuracy(&s, &labels, 1);
        let top2 = top_k_accuracy(&s, &labels, 2);
        let top3 = top_k_accuracy(&s, &labels, 3);
        assert!(top2 >= top1);
        assert!(top3 >= top2);
        assert_eq!(top3, 1.0);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(top_k_accuracy(&[], &[], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        top_k_accuracy(&scores(), &[0, 0, 0], 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        top_k_accuracy(&scores(), &[0], 1);
    }
}
