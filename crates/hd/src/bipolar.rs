use crate::bitpacked::BinaryHypervector;
use disthd_linalg::SeededRng;

/// A bipolar hypervector with components in `{-1, +1}`.
///
/// Bipolar vectors are the classical HDC representation (Rahimi et al. \[6\]):
/// binding is exactly invertible (`(a*b)*b = a`) and similarity reduces to a
/// scaled Hamming distance.  DistHD uses real hypervectors during training
/// but quantizes to low precision (including the 1-bit/bipolar extreme) for
/// deployment and for the Fig. 8 robustness study.
///
/// # Example
///
/// ```
/// use disthd_hd::BipolarHypervector;
/// use disthd_linalg::{RngSeed, SeededRng};
///
/// let mut rng = SeededRng::new(RngSeed(7));
/// let a = BipolarHypervector::random(1024, &mut rng);
/// let b = BipolarHypervector::random(1024, &mut rng);
/// let bound = a.bound(&b);
/// assert_eq!(bound.bound(&b), a); // binding is invertible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BipolarHypervector(Vec<i8>);

impl BipolarHypervector {
    /// All `+1` hypervector of dimension `dim`.
    pub fn ones(dim: usize) -> Self {
        Self(vec![1; dim])
    }

    /// Random hypervector with i.i.d. uniform `{-1, +1}` components.
    pub fn random(dim: usize, rng: &mut SeededRng) -> Self {
        Self(
            (0..dim)
                .map(|_| if rng.next_bool(0.5) { 1 } else { -1 })
                .collect(),
        )
    }

    /// Builds from raw components.
    ///
    /// # Panics
    ///
    /// Panics if any component is not `-1` or `+1`.
    pub fn from_components(values: Vec<i8>) -> Self {
        assert!(
            values.iter().all(|&v| v == 1 || v == -1),
            "bipolar components must be -1 or +1"
        );
        Self(values)
    }

    /// Sign-quantizes a real hypervector (`>= 0` maps to `+1`).
    pub fn from_real(values: &[f32]) -> Self {
        Self(
            values
                .iter()
                .map(|&v| if v >= 0.0 { 1 } else { -1 })
                .collect(),
        )
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Borrows the components.
    pub fn as_slice(&self) -> &[i8] {
        &self.0
    }

    /// Element-wise product (binding).  Exactly invertible in bipolar space.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn bound(&self, other: &BipolarHypervector) -> BipolarHypervector {
        assert_eq!(self.dim(), other.dim(), "bind: dimension mismatch");
        Self(self.0.iter().zip(&other.0).map(|(a, b)| a * b).collect())
    }

    /// Dot product (equals `D - 2 * hamming_distance`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &BipolarHypervector) -> i64 {
        assert_eq!(self.dim(), other.dim(), "dot: dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| (a as i64) * (b as i64))
            .sum()
    }

    /// Normalized similarity in `[-1, 1]` (cosine for bipolar vectors).
    pub fn similarity(&self, other: &BipolarHypervector) -> f32 {
        if self.dim() == 0 {
            return 0.0;
        }
        self.dot(other) as f32 / self.dim() as f32
    }

    /// Majority-vote bundling of several hypervectors.
    ///
    /// Ties (possible for an even count) resolve to `+1`, a fixed convention
    /// so bundling stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or dimensions differ.
    pub fn majority(inputs: &[&BipolarHypervector]) -> BipolarHypervector {
        assert!(!inputs.is_empty(), "majority of zero hypervectors");
        let dim = inputs[0].dim();
        let mut sums = vec![0i64; dim];
        for hv in inputs {
            assert_eq!(hv.dim(), dim, "majority: dimension mismatch");
            for (s, &c) in sums.iter_mut().zip(hv.0.iter()) {
                *s += c as i64;
            }
        }
        Self(sums.iter().map(|&s| if s >= 0 { 1 } else { -1 }).collect())
    }

    /// Converts to the bit-packed binary form (`+1 → 1`, `-1 → 0`).
    pub fn to_binary(&self) -> BinaryHypervector {
        BinaryHypervector::from_bits(self.0.iter().map(|&v| v > 0))
    }

    /// Expands to a real-valued hypervector.
    pub fn to_real(&self) -> Vec<f32> {
        self.0.iter().map(|&v| v as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::RngSeed;

    #[test]
    fn random_is_balanced() {
        let mut rng = SeededRng::new(RngSeed(1));
        let hv = BipolarHypervector::random(10_000, &mut rng);
        let pos = hv.as_slice().iter().filter(|&&v| v == 1).count();
        assert!((4_500..5_500).contains(&pos), "positives: {pos}");
    }

    #[test]
    #[should_panic(expected = "bipolar components")]
    fn from_components_rejects_invalid() {
        BipolarHypervector::from_components(vec![1, 0, -1]);
    }

    #[test]
    fn binding_is_invertible() {
        let mut rng = SeededRng::new(RngSeed(2));
        let a = BipolarHypervector::random(512, &mut rng);
        let b = BipolarHypervector::random(512, &mut rng);
        assert_eq!(a.bound(&b).bound(&b), a);
    }

    #[test]
    fn self_similarity_is_one() {
        let mut rng = SeededRng::new(RngSeed(3));
        let a = BipolarHypervector::random(256, &mut rng);
        assert!((a.similarity(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn random_pairs_nearly_orthogonal() {
        let mut rng = SeededRng::new(RngSeed(4));
        let a = BipolarHypervector::random(8192, &mut rng);
        let b = BipolarHypervector::random(8192, &mut rng);
        assert!(a.similarity(&b).abs() < 0.06);
    }

    #[test]
    fn majority_recovers_members() {
        let mut rng = SeededRng::new(RngSeed(5));
        let a = BipolarHypervector::random(2048, &mut rng);
        let b = BipolarHypervector::random(2048, &mut rng);
        let c = BipolarHypervector::random(2048, &mut rng);
        let m = BipolarHypervector::majority(&[&a, &b, &c]);
        let d = BipolarHypervector::random(2048, &mut rng);
        assert!(m.similarity(&a) > 0.3);
        assert!(m.similarity(&d).abs() < 0.1);
    }

    #[test]
    fn sign_quantization_from_real() {
        let hv = BipolarHypervector::from_real(&[0.5, -0.1, 0.0]);
        assert_eq!(hv.as_slice(), &[1, -1, 1]);
    }

    #[test]
    fn binary_round_trip_preserves_signs() {
        let hv = BipolarHypervector::from_components(vec![1, -1, 1, 1, -1]);
        let bin = hv.to_binary();
        assert_eq!(bin.count_ones(), 3);
        assert_eq!(bin.dim(), 5);
    }

    #[test]
    fn to_real_expands() {
        let hv = BipolarHypervector::from_components(vec![1, -1]);
        assert_eq!(hv.to_real(), vec![1.0, -1.0]);
    }
}
