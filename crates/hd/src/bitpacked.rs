/// A binary hypervector packed 64 dimensions per `u64` word.
///
/// Bit-packing is the deployment format on edge devices: similarity becomes
/// XOR + popcount, 64 dimensions per instruction, and the Fig. 8 fault model
/// (random bit flips on model memory) acts directly on these words.
///
/// # Example
///
/// ```
/// use disthd_hd::BinaryHypervector;
///
/// let a = BinaryHypervector::from_bits([true, false, true, true]);
/// let b = BinaryHypervector::from_bits([true, true, true, false]);
/// assert_eq!(disthd_hd::hamming_distance(&a, &b), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BinaryHypervector {
    words: Vec<u64>,
    dim: usize,
}

impl BinaryHypervector {
    /// All-zero hypervector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            words: vec![0; dim.div_ceil(64)],
            dim,
        }
    }

    /// Builds from an iterator of bits (first bit = dimension 0).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut dim = 0;
        let mut current = 0u64;
        for bit in bits {
            let offset = dim % 64;
            if bit {
                current |= 1 << offset;
            }
            dim += 1;
            if offset == 63 {
                words.push(current);
                current = 0;
            }
        }
        if dim % 64 != 0 {
            words.push(current);
        }
        Self { words, dim }
    }

    /// Dimensionality `D` in bits.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.dim, "bit index out of bounds");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.dim, "bit index out of bounds");
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips the bit at `index` (the unit fault of the robustness study).
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn flip_bit(&mut self, index: usize) {
        assert!(index < self.dim, "bit index out of bounds");
        self.words[index / 64] ^= 1 << (index % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Borrows the packed words (trailing bits beyond `dim` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// XOR with another hypervector (binary binding).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn xor(&self, other: &BinaryHypervector) -> BinaryHypervector {
        assert_eq!(self.dim, other.dim, "xor: dimension mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_round_trip() {
        let bits = [true, false, false, true, true];
        let hv = BinaryHypervector::from_bits(bits);
        assert_eq!(hv.dim(), 5);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(hv.bit(i), b, "bit {i}");
        }
    }

    #[test]
    fn packs_more_than_one_word() {
        let hv = BinaryHypervector::from_bits((0..130).map(|i| i % 2 == 0));
        assert_eq!(hv.dim(), 130);
        assert_eq!(hv.as_words().len(), 3);
        assert_eq!(hv.count_ones(), 65);
        assert!(hv.bit(128));
        assert!(!hv.bit(129));
    }

    #[test]
    fn set_and_flip_bits() {
        let mut hv = BinaryHypervector::zeros(70);
        hv.set_bit(69, true);
        assert!(hv.bit(69));
        hv.flip_bit(69);
        assert!(!hv.bit(69));
        hv.flip_bit(0);
        assert!(hv.bit(0));
        assert_eq!(hv.count_ones(), 1);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = BinaryHypervector::from_bits((0..100).map(|i| i % 3 == 0));
        let b = BinaryHypervector::from_bits((0..100).map(|i| i % 7 == 0));
        assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bit_out_of_bounds_panics() {
        BinaryHypervector::zeros(8).bit(8);
    }

    #[test]
    fn zeros_has_no_ones() {
        assert_eq!(BinaryHypervector::zeros(1000).count_ones(), 0);
    }

    #[test]
    fn from_bits_empty_input() {
        let hv = BinaryHypervector::from_bits(std::iter::empty());
        assert_eq!(hv.dim(), 0);
        assert_eq!(hv.as_words().len(), 0);
        assert_eq!(hv.count_ones(), 0);
        assert_eq!(hv, BinaryHypervector::zeros(0));
    }

    #[test]
    fn from_bits_exactly_one_word() {
        // 64 bits must fill exactly one word, with no empty trailing word.
        let hv = BinaryHypervector::from_bits((0..64).map(|_| true));
        assert_eq!(hv.dim(), 64);
        assert_eq!(hv.as_words(), &[u64::MAX]);
        assert_eq!(hv.count_ones(), 64);
        assert!(hv.bit(0) && hv.bit(63));
    }

    #[test]
    fn from_bits_one_past_word_boundary() {
        // 65 bits: the single overflow bit must land in word 1, bit 0.
        let mut bits = vec![false; 65];
        bits[64] = true;
        let hv = BinaryHypervector::from_bits(bits);
        assert_eq!(hv.dim(), 65);
        assert_eq!(hv.as_words(), &[0, 1]);
        assert!(hv.bit(64));
        assert!(!hv.bit(63));
    }

    #[test]
    fn ragged_dims_agree_with_zeros_layout() {
        // For every dim near the word boundary, from_bits of all-false must
        // produce the same word count as zeros(dim).
        for dim in [1usize, 63, 64, 65, 127, 128, 129] {
            let built = BinaryHypervector::from_bits((0..dim).map(|_| false));
            let zeroed = BinaryHypervector::zeros(dim);
            assert_eq!(built, zeroed, "dim {dim}");
            assert_eq!(built.as_words().len(), dim.div_ceil(64), "dim {dim}");
        }
    }

    #[test]
    fn ragged_tail_bits_are_addressable_and_flippable() {
        // dim % 64 != 0: exercise the last valid bit of the partial word.
        let mut hv = BinaryHypervector::zeros(100);
        hv.set_bit(99, true);
        assert!(hv.bit(99));
        assert_eq!(hv.count_ones(), 1);
        hv.flip_bit(99);
        assert_eq!(hv.count_ones(), 0);
    }

    #[test]
    fn trailing_bits_beyond_dim_stay_zero() {
        // `as_words` documents that padding bits beyond dim are zero; the
        // fault-injection and popcount paths both rely on it.
        let hv = BinaryHypervector::from_bits((0..70).map(|_| true));
        let last = *hv.as_words().last().unwrap();
        assert_eq!(last >> (70 % 64), 0, "padding bits must be zero");
        assert_eq!(hv.count_ones(), 70);
    }

    #[test]
    fn hamming_distance_is_symmetric_on_ragged_dims() {
        let a = BinaryHypervector::from_bits((0..100).map(|i| i % 3 == 0));
        let b = BinaryHypervector::from_bits((0..100).map(|i| i % 5 == 0));
        assert_eq!(
            crate::hamming_distance(&a, &b),
            crate::hamming_distance(&b, &a)
        );
        assert_eq!(crate::hamming_distance(&a, &a), 0);
    }

    #[test]
    fn hamming_distance_counts_cross_word_differences() {
        let mut a = BinaryHypervector::zeros(130);
        let b = BinaryHypervector::zeros(130);
        // One difference per word, including the 2-bit tail word.
        a.set_bit(0, true);
        a.set_bit(64, true);
        a.set_bit(129, true);
        assert_eq!(crate::hamming_distance(&a, &b), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn hamming_distance_rejects_dim_mismatch() {
        let a = BinaryHypervector::zeros(64);
        let b = BinaryHypervector::zeros(65);
        crate::hamming_distance(&a, &b);
    }
}
