/// A binary hypervector packed 64 dimensions per `u64` word.
///
/// Bit-packing is the deployment format on edge devices: similarity becomes
/// XOR + popcount, 64 dimensions per instruction, and the Fig. 8 fault model
/// (random bit flips on model memory) acts directly on these words.
///
/// # Example
///
/// ```
/// use disthd_hd::BinaryHypervector;
///
/// let a = BinaryHypervector::from_bits([true, false, true, true]);
/// let b = BinaryHypervector::from_bits([true, true, true, false]);
/// assert_eq!(disthd_hd::hamming_distance(&a, &b), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BinaryHypervector {
    words: Vec<u64>,
    dim: usize,
}

impl BinaryHypervector {
    /// All-zero hypervector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            words: vec![0; dim.div_ceil(64)],
            dim,
        }
    }

    /// Builds from an iterator of bits (first bit = dimension 0).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut dim = 0;
        let mut current = 0u64;
        for bit in bits {
            let offset = dim % 64;
            if bit {
                current |= 1 << offset;
            }
            dim += 1;
            if offset == 63 {
                words.push(current);
                current = 0;
            }
        }
        if dim % 64 != 0 {
            words.push(current);
        }
        Self { words, dim }
    }

    /// Dimensionality `D` in bits.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.dim, "bit index out of bounds");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.dim, "bit index out of bounds");
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips the bit at `index` (the unit fault of the robustness study).
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    pub fn flip_bit(&mut self, index: usize) {
        assert!(index < self.dim, "bit index out of bounds");
        self.words[index / 64] ^= 1 << (index % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Borrows the packed words (trailing bits beyond `dim` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// XOR with another hypervector (binary binding).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn xor(&self, other: &BinaryHypervector) -> BinaryHypervector {
        assert_eq!(self.dim, other.dim, "xor: dimension mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_round_trip() {
        let bits = [true, false, false, true, true];
        let hv = BinaryHypervector::from_bits(bits);
        assert_eq!(hv.dim(), 5);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(hv.bit(i), b, "bit {i}");
        }
    }

    #[test]
    fn packs_more_than_one_word() {
        let hv = BinaryHypervector::from_bits((0..130).map(|i| i % 2 == 0));
        assert_eq!(hv.dim(), 130);
        assert_eq!(hv.as_words().len(), 3);
        assert_eq!(hv.count_ones(), 65);
        assert!(hv.bit(128));
        assert!(!hv.bit(129));
    }

    #[test]
    fn set_and_flip_bits() {
        let mut hv = BinaryHypervector::zeros(70);
        hv.set_bit(69, true);
        assert!(hv.bit(69));
        hv.flip_bit(69);
        assert!(!hv.bit(69));
        hv.flip_bit(0);
        assert!(hv.bit(0));
        assert_eq!(hv.count_ones(), 1);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = BinaryHypervector::from_bits((0..100).map(|i| i % 3 == 0));
        let b = BinaryHypervector::from_bits((0..100).map(|i| i % 7 == 0));
        assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bit_out_of_bounds_panics() {
        BinaryHypervector::zeros(8).bit(8);
    }

    #[test]
    fn zeros_has_no_ones() {
        assert_eq!(BinaryHypervector::zeros(1000).count_ones(), 0);
    }
}
