//! Per-dimension encoding centering.
//!
//! With a bandwidth-scaled RBF encoder (see
//! [`crate::encoder::RbfEncoder::with_bandwidth`]) each output dimension
//! has a nonzero mean across samples, so every encoded hypervector shares a
//! large common component.  Mistake-driven adaptive updates redistribute
//! that shared component unevenly between class hypervectors, which
//! progressively corrupts the cosine ranking (training accuracy *decays*
//! over epochs).  Centering — subtracting the per-dimension training mean —
//! removes the shared component and makes adaptive retraining stable.
//!
//! The center is calibrated on the encoded training batch and must be
//! applied to every query at inference; regenerated dimensions are
//! recalibrated from their freshly re-encoded column.

use disthd_linalg::{column_means, Matrix};

/// Per-dimension means of an encoded training batch.
///
/// # Example
///
/// ```
/// use disthd_hd::center::EncodingCenter;
/// use disthd_linalg::Matrix;
///
/// let encoded = Matrix::from_rows(&[vec![1.0, 4.0], vec![3.0, 8.0]])?;
/// let mut batch = encoded.clone();
/// let center = EncodingCenter::fit_and_apply(&mut batch);
/// assert_eq!(batch.row(0), &[-1.0, -2.0]);
/// let mut query = vec![2.0, 6.0];
/// center.apply(&mut query);
/// assert_eq!(query, vec![0.0, 0.0]);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EncodingCenter {
    means: Vec<f32>,
}

impl EncodingCenter {
    /// Fits per-dimension means on a raw encoded batch.
    pub fn fit(encoded: &Matrix) -> Self {
        Self {
            means: column_means(encoded),
        }
    }

    /// Fits on the batch and centers it in place, returning the center.
    pub fn fit_and_apply(encoded: &mut Matrix) -> Self {
        let center = Self::fit(encoded);
        center.apply_batch(encoded);
        center
    }

    /// Dimensionality this center was fitted for.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Borrows the per-dimension means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Reassembles a center from persisted means.
    pub fn from_means(means: Vec<f32>) -> Self {
        Self { means }
    }

    /// Centers one raw encoded hypervector in place.
    ///
    /// # Panics
    ///
    /// Panics if `hv.len() != dim()`.
    pub fn apply(&self, hv: &mut [f32]) {
        assert_eq!(hv.len(), self.means.len(), "dimension mismatch");
        for (v, &mu) in hv.iter_mut().zip(&self.means) {
            *v -= mu;
        }
    }

    /// Centers every row of a raw encoded batch in place.
    ///
    /// Large batches (this runs right after every `encode_batch` on the
    /// training and evaluation paths) fan the rows out over the
    /// deterministic parallel backend in fixed 64-row chunks; each row's
    /// subtraction is independent, so results are identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `batch.cols() != dim()`.
    pub fn apply_batch(&self, batch: &mut Matrix) {
        assert_eq!(batch.cols(), self.means.len(), "dimension mismatch");
        let cols = batch.cols();
        if cols == 0 {
            return;
        }
        // Below ~a quarter-million elements the pass is a few microseconds
        // of streaming subtraction — not worth a fork/join.
        if batch.rows() * cols < 1 << 18 {
            for r in 0..batch.rows() {
                self.apply(batch.row_mut(r));
            }
        } else {
            disthd_linalg::parallel::par_row_chunks(batch.as_mut_slice(), cols, 64, |_, row| {
                self.apply(row)
            });
        }
    }

    /// Recalibrates the selected dimensions from their (raw) columns in
    /// `batch` and centers those columns in place.
    ///
    /// Called after dimension regeneration: the regenerated columns of the
    /// training batch hold fresh raw values; all other columns are already
    /// centered and must not be touched.
    ///
    /// Out-of-range dims are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `batch.cols() != dim()`.
    pub fn refit_dims(&mut self, batch: &mut Matrix, dims: &[usize]) {
        assert_eq!(batch.cols(), self.means.len(), "dimension mismatch");
        let rows = batch.rows().max(1) as f32;
        for &d in dims {
            if d >= self.means.len() {
                continue;
            }
            let mut sum = 0.0f32;
            for r in 0..batch.rows() {
                sum += batch.get(r, d);
            }
            let mu = sum / rows;
            self.means[d] = mu;
            for r in 0..batch.rows() {
                let v = batch.get(r, d);
                batch.set(r, d, v - mu);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 10.0, -2.0], vec![3.0, 20.0, 2.0]]).unwrap()
    }

    #[test]
    fn fit_computes_column_means() {
        let c = EncodingCenter::fit(&batch());
        assert_eq!(c.means(), &[2.0, 15.0, 0.0]);
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn centered_batch_has_zero_column_means() {
        let mut b = batch();
        EncodingCenter::fit_and_apply(&mut b);
        for mean in column_means(&b) {
            assert!(mean.abs() < 1e-6);
        }
    }

    #[test]
    fn apply_centers_queries_consistently() {
        let mut b = batch();
        let c = EncodingCenter::fit_and_apply(&mut b);
        let mut q = vec![1.0, 10.0, -2.0];
        c.apply(&mut q);
        assert_eq!(q.as_slice(), b.row(0));
    }

    #[test]
    fn refit_dims_only_touches_selected_columns() {
        let mut b = batch();
        let mut c = EncodingCenter::fit_and_apply(&mut b);
        // Simulate regeneration writing raw values into column 1.
        b.set(0, 1, 100.0);
        b.set(1, 1, 200.0);
        let before_col0: Vec<f32> = b.column(0);
        c.refit_dims(&mut b, &[1]);
        assert_eq!(c.means()[1], 150.0);
        assert_eq!(b.column(1), vec![-50.0, 50.0]);
        assert_eq!(b.column(0), before_col0);
        // Means of untouched dims unchanged.
        assert_eq!(c.means()[0], 2.0);
    }

    #[test]
    fn refit_ignores_out_of_range() {
        let mut b = batch();
        let mut c = EncodingCenter::fit_and_apply(&mut b);
        let means = c.means().to_vec();
        c.refit_dims(&mut b, &[99]);
        assert_eq!(c.means(), means.as_slice());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_checks_dim() {
        let c = EncodingCenter::fit(&batch());
        c.apply(&mut [0.0; 2]);
    }
}
