use super::Encoder;
use crate::bipolar::BipolarHypervector;
use disthd_linalg::{Matrix, RngSeed, SeededRng, ShapeError};

/// A level–ID binding encoder for quantized features.
///
/// Classical bipolar-HDC encoding (Rahimi et al. \[6\]): each feature position
/// `k` owns a random *ID* hypervector, each quantization level `l` owns a
/// *level* hypervector, and a sample encodes as
/// `Σ_k ID_k * LEVEL_{q(f_k)}` where `q` buckets the feature value into one
/// of `levels` bins over `[lo, hi]`.  Level hypervectors are built by
/// progressive bit flipping so adjacent levels stay similar (value locality).
///
/// Included as the substrate for bipolar baselines and binary-deployment
/// tests; DistHD itself uses [`super::RbfEncoder`].
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, LevelIdEncoder};
/// use disthd_linalg::RngSeed;
///
/// let enc = LevelIdEncoder::new(4, 512, 16, (-1.0, 1.0), RngSeed(2));
/// let hv = enc.encode(&[0.0, 0.5, -0.5, 1.0])?;
/// assert_eq!(hv.len(), 512);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LevelIdEncoder {
    ids: Vec<BipolarHypervector>,
    levels: Vec<BipolarHypervector>,
    range: (f32, f32),
    input_dim: usize,
    output_dim: usize,
}

impl LevelIdEncoder {
    /// Creates an encoder with `level_count` quantization levels over the
    /// closed feature range `range`.
    ///
    /// # Panics
    ///
    /// Panics if `level_count == 0` or `range.0 >= range.1`.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        level_count: usize,
        range: (f32, f32),
        seed: RngSeed,
    ) -> Self {
        assert!(level_count > 0, "need at least one level");
        assert!(range.0 < range.1, "invalid feature range");
        let mut rng = SeededRng::derive_stream(seed, 0x1D1D);
        let ids = (0..input_dim)
            .map(|_| BipolarHypervector::random(output_dim, &mut rng))
            .collect();

        // Progressive flipping: level 0 is random; each subsequent level
        // flips D/levels fresh positions, so level 0 and level L-1 are
        // nearly orthogonal while neighbours stay correlated.
        let mut levels = Vec::with_capacity(level_count);
        let base = BipolarHypervector::random(output_dim, &mut rng);
        levels.push(base);
        let flips_per_step = (output_dim / level_count.max(1)).max(1);
        let mut order: Vec<usize> = (0..output_dim).collect();
        rng.shuffle(&mut order);
        let mut cursor = 0usize;
        for _ in 1..level_count {
            let mut comps = levels.last().expect("non-empty").as_slice().to_vec();
            for _ in 0..flips_per_step {
                if cursor < order.len() {
                    comps[order[cursor]] = -comps[order[cursor]];
                    cursor += 1;
                }
            }
            levels.push(BipolarHypervector::from_components(comps));
        }

        Self {
            ids,
            levels,
            range,
            input_dim,
            output_dim,
        }
    }

    /// Quantizes a feature value to a level index.
    fn level_of(&self, value: f32) -> usize {
        let (lo, hi) = self.range;
        let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.levels.len() as f32) as usize).min(self.levels.len() - 1)
    }

    /// Number of quantization levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

impl Encoder for LevelIdEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if features.len() != self.input_dim {
            return Err(ShapeError::new(
                "level_id_encode",
                (1, features.len()),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = vec![0.0f32; self.output_dim];
        for (k, &f) in features.iter().enumerate() {
            let level = &self.levels[self.level_of(f)];
            let id = &self.ids[k];
            for ((o, &lv), &iv) in out.iter_mut().zip(level.as_slice()).zip(id.as_slice()) {
                *o += (lv * iv) as f32;
            }
        }
        Ok(out)
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(batch.rows(), self.output_dim);
        for r in 0..batch.rows() {
            let encoded = self.encode(batch.row(r))?;
            out.row_mut(r).copy_from_slice(&encoded);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::cosine_similarity;

    fn encoder() -> LevelIdEncoder {
        LevelIdEncoder::new(4, 1024, 8, (0.0, 1.0), RngSeed(11))
    }

    #[test]
    fn adjacent_levels_are_more_similar_than_distant() {
        let enc = encoder();
        let a = enc.encode(&[0.1, 0.1, 0.1, 0.1]).unwrap();
        let b = enc.encode(&[0.15, 0.15, 0.15, 0.15]).unwrap();
        let c = enc.encode(&[0.9, 0.9, 0.9, 0.9]).unwrap();
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn level_of_clamps_out_of_range() {
        let enc = encoder();
        assert_eq!(enc.level_of(-10.0), 0);
        assert_eq!(enc.level_of(10.0), enc.level_count() - 1);
    }

    #[test]
    fn encode_has_integer_components() {
        let enc = encoder();
        let hv = enc.encode(&[0.2, 0.4, 0.6, 0.8]).unwrap();
        assert!(hv.iter().all(|v| v.fract() == 0.0));
        // Each component is a sum of 4 products in {-1, +1}.
        assert!(hv.iter().all(|v| v.abs() <= 4.0));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        assert!(encoder().encode(&[0.5]).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = encoder().encode(&[0.3; 4]).unwrap();
        let b = encoder().encode(&[0.3; 4]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        LevelIdEncoder::new(2, 64, 0, (0.0, 1.0), RngSeed(1));
    }
}
