//! Feature-to-hypervector encoders ( A in Fig. 3 of the paper).
//!
//! All encoders implement [`Encoder`]; encoders whose per-dimension base
//! vectors can be *regenerated* — the heart of DistHD — also implement
//! [`RegenerativeEncoder`].
//!
//! * [`RbfEncoder`] — the paper's nonlinear encoder:
//!   `h_i = cos(B_i·F + c_i) · sin(B_i·F)` with `B_i ~ N(0,1)^n`,
//!   `c_i ~ U[0, 2π)` (§III-C, after Rahimi & Recht's random features \[21\]).
//! * [`LinearProjectionEncoder`] — plain random projection `H = B·F`,
//!   the static encoder of classical HDC.
//! * [`LevelIdEncoder`] — quantized level/ID binding encoder for
//!   bipolar pipelines.
//! * [`RecordEncoder`] — key–value record encoder with approximate
//!   per-field readout.

mod level;
mod projection;
mod rbf;
mod record;

pub use level::LevelIdEncoder;
pub use projection::LinearProjectionEncoder;
pub use rbf::{RbfEncoder, DEFAULT_BANDWIDTH};
pub use record::RecordEncoder;

use disthd_linalg::{Matrix, SeededRng, ShapeError};

/// Maps low-dimensional feature vectors onto hyperdimensional space.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, RbfEncoder};
/// use disthd_linalg::RngSeed;
///
/// let encoder = RbfEncoder::new(8, 256, RngSeed(3));
/// let hv = encoder.encode(&[0.5; 8])?;
/// assert_eq!(hv.len(), 256);
/// assert!(hv.iter().all(|h| (-1.0..=1.0).contains(h)));
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
pub trait Encoder {
    /// Number of input features `n`.
    fn input_dim(&self) -> usize;

    /// Hyperdimensional output dimensionality `D`.
    fn output_dim(&self) -> usize;

    /// Encodes one feature vector into a `D`-dimensional hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `features.len() != input_dim()`.
    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError>;

    /// Encodes a batch (one sample per row) into a batch of hypervectors.
    ///
    /// The default implementation encodes row by row; implementations with a
    /// matrix kernel (like [`RbfEncoder`]) override it with a single GEMM,
    /// which is the "highly parallel matrix-wise" path the paper highlights.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()`.
    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(batch.rows(), self.output_dim());
        for r in 0..batch.rows() {
            let encoded = self.encode(batch.row(r))?;
            out.row_mut(r).copy_from_slice(&encoded);
        }
        Ok(out)
    }
}

/// An [`Encoder`] whose individual output dimensions can be re-randomized.
///
/// Dimension regeneration ( P in Fig. 3) replaces the base vector of each
/// selected dimension with a fresh random draw so the dimension can encode a
/// new, hopefully more discriminative, projection of the input.
pub trait RegenerativeEncoder: Encoder {
    /// Replaces the base vectors of `dims` with fresh random draws.
    ///
    /// Indices outside `0..output_dim()` are ignored (callers pass the
    /// intersection set from Algorithm 2, which is always in range, but the
    /// permissive contract keeps fault-injection tests simple).
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng);

    /// Count of dimensions regenerated so far (for effective-dimension
    /// accounting, `D* = D + ΣR%·D`).
    fn regenerated_count(&self) -> u64;
}
