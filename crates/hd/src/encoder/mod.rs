//! Feature-to-hypervector encoders ( A in Fig. 3 of the paper).
//!
//! All encoders implement [`Encoder`]; encoders whose per-dimension base
//! vectors can be *regenerated* — the heart of DistHD — also implement
//! [`RegenerativeEncoder`].
//!
//! * [`RbfEncoder`] — the paper's nonlinear encoder:
//!   `h_i = cos(B_i·F + c_i) · sin(B_i·F)` with `B_i ~ N(0,1)^n`,
//!   `c_i ~ U[0, 2π)` (§III-C, after Rahimi & Recht's random features \[21\]).
//! * [`StructuredRbfEncoder`] — the same kernel map with the dense Gaussian
//!   bases replaced by sign-diagonal × Walsh–Hadamard products
//!   (SORF/Fastfood): `O(D log D)` encode instead of `O(F·D)`, with a dense
//!   overlay so per-dimension regeneration still works.
//! * [`AnyRbfEncoder`] — runtime dispatch between the two RBF backends
//!   (selected by [`EncoderBackend`]); what the trainer and deployments
//!   actually hold.
//! * [`LinearProjectionEncoder`] — plain random projection `H = B·F`,
//!   the static encoder of classical HDC.
//! * [`LevelIdEncoder`] — quantized level/ID binding encoder for
//!   bipolar pipelines.
//! * [`RecordEncoder`] — key–value record encoder with approximate
//!   per-field readout.

mod level;
mod projection;
mod rbf;
mod record;
mod structured;

pub use level::LevelIdEncoder;
pub use projection::LinearProjectionEncoder;
pub use rbf::{RbfEncoder, DEFAULT_BANDWIDTH};
pub use record::RecordEncoder;
pub use structured::StructuredRbfEncoder;

use disthd_linalg::{Matrix, RngSeed, SeededRng, ShapeError};

/// The fused RBF epilogue `cos(p + c)·sin(p)`, evaluated through the
/// product-to-sum identity `½(sin(2p + c) − sin(c))` with `sin(c)`
/// precomputed — one `sin` per element instead of a `cos` plus a `sin`.
/// Shared verbatim by the dense and structured encoders so backend choice
/// never changes the nonlinearity's numerics.
///
/// Delegates to [`disthd_linalg::half_angle`], whose deterministic sine
/// ([`disthd_linalg::sin_det`]) is bit-identical to the vectorized
/// [`disthd_linalg::half_angle_row`] used by the batch store phases and the
/// fused quantized encode — every encode path (scalar, batch, bit-sliced)
/// therefore produces the exact same bits on every machine.
#[inline]
pub(crate) fn half_angle_cosine(projection: f32, phase: f32, phase_sin: f32) -> f32 {
    disthd_linalg::half_angle(projection, phase, phase_sin)
}

/// Maps low-dimensional feature vectors onto hyperdimensional space.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, RbfEncoder};
/// use disthd_linalg::RngSeed;
///
/// let encoder = RbfEncoder::new(8, 256, RngSeed(3));
/// let hv = encoder.encode(&[0.5; 8])?;
/// assert_eq!(hv.len(), 256);
/// assert!(hv.iter().all(|h| (-1.0..=1.0).contains(h)));
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
pub trait Encoder {
    /// Number of input features `n`.
    fn input_dim(&self) -> usize;

    /// Hyperdimensional output dimensionality `D`.
    fn output_dim(&self) -> usize;

    /// Encodes one feature vector into a `D`-dimensional hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `features.len() != input_dim()`.
    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError>;

    /// Encodes a batch (one sample per row) into a batch of hypervectors.
    ///
    /// The default implementation encodes row by row; implementations with a
    /// matrix kernel (like [`RbfEncoder`]) override it with a single GEMM,
    /// which is the "highly parallel matrix-wise" path the paper highlights.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()`.
    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(batch.rows(), self.output_dim());
        for r in 0..batch.rows() {
            let encoded = self.encode(batch.row(r))?;
            out.row_mut(r).copy_from_slice(&encoded);
        }
        Ok(out)
    }
}

/// An [`Encoder`] whose individual output dimensions can be re-randomized.
///
/// Dimension regeneration ( P in Fig. 3) replaces the base vector of each
/// selected dimension with a fresh random draw so the dimension can encode a
/// new, hopefully more discriminative, projection of the input.
pub trait RegenerativeEncoder: Encoder {
    /// Replaces the base vectors of `dims` with fresh random draws.
    ///
    /// Indices outside `0..output_dim()` are ignored (callers pass the
    /// intersection set from Algorithm 2, which is always in range, but the
    /// permissive contract keeps fault-injection tests simple).
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng);

    /// Count of dimensions regenerated so far (for effective-dimension
    /// accounting, `D* = D + ΣR%·D`).
    fn regenerated_count(&self) -> u64;
}

/// Which RBF encoder implementation a model uses.
///
/// `Dense` is the paper-literal `O(F·D)` Gaussian base matrix; `Structured`
/// is the `O(D log D)` SORF construction ([`StructuredRbfEncoder`]) that
/// approximates the same kernel.  Both feed the identical fused half-angle
/// epilogue and expose identical regeneration semantics, so the choice is a
/// speed/fidelity knob, not a behavioural one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncoderBackend {
    /// Dense Gaussian base matrix ([`RbfEncoder`]).
    #[default]
    Dense,
    /// Sign-diagonal × Walsh–Hadamard products ([`StructuredRbfEncoder`]).
    Structured,
}

impl EncoderBackend {
    /// Parses a backend name as used by `DISTHD_ENCODER` and the bench
    /// bins (`"dense"` / `"structured"`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "dense" => Some(Self::Dense),
            "structured" => Some(Self::Structured),
            _ => None,
        }
    }
}

impl std::fmt::Display for EncoderBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Dense => "dense",
            Self::Structured => "structured",
        })
    }
}

/// Runtime dispatch over the two RBF encoder backends.
///
/// The trainer, the serving deployment and the persistence layer all hold
/// this enum so one `DistHdConfig` field switches the entire pipeline
/// between the dense GEMM encoder and the structured FHT encoder.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{AnyRbfEncoder, Encoder, EncoderBackend};
/// use disthd_linalg::RngSeed;
///
/// let enc = AnyRbfEncoder::new(EncoderBackend::Structured, 8, 256, RngSeed(3));
/// assert_eq!(enc.backend(), EncoderBackend::Structured);
/// assert_eq!(enc.encode(&[0.5; 8])?.len(), 256);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub enum AnyRbfEncoder {
    /// Dense Gaussian base matrix.
    Dense(RbfEncoder),
    /// Structured Walsh–Hadamard construction with a dense regeneration
    /// overlay.
    Structured(StructuredRbfEncoder),
}

impl AnyRbfEncoder {
    /// Creates an encoder of the requested backend with the default
    /// bandwidth.
    pub fn new(
        backend: EncoderBackend,
        input_dim: usize,
        output_dim: usize,
        seed: RngSeed,
    ) -> Self {
        Self::with_bandwidth(backend, input_dim, output_dim, DEFAULT_BANDWIDTH, seed)
    }

    /// Creates an encoder of the requested backend with an explicit kernel
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth <= 0` (and, for the structured backend, if
    /// either dimension is zero).
    pub fn with_bandwidth(
        backend: EncoderBackend,
        input_dim: usize,
        output_dim: usize,
        bandwidth: f32,
        seed: RngSeed,
    ) -> Self {
        match backend {
            EncoderBackend::Dense => Self::Dense(RbfEncoder::with_bandwidth(
                input_dim, output_dim, bandwidth, seed,
            )),
            EncoderBackend::Structured => Self::Structured(StructuredRbfEncoder::with_bandwidth(
                input_dim, output_dim, bandwidth, seed,
            )),
        }
    }

    /// Overrides the FHT butterfly pass order of the structured backend
    /// (see [`StructuredRbfEncoder::set_fht_schedule`]); a no-op on the
    /// dense backend, so config plumbing never has to branch.
    pub fn set_fht_schedule(&mut self, schedule: disthd_linalg::FhtSchedule) {
        if let Self::Structured(e) = self {
            e.set_fht_schedule(schedule);
        }
    }

    /// The structured backend's FHT schedule, if that is the active
    /// backend.
    pub fn fht_schedule(&self) -> Option<disthd_linalg::FhtSchedule> {
        match self {
            Self::Dense(_) => None,
            Self::Structured(e) => Some(e.fht_schedule()),
        }
    }

    /// Which backend this encoder runs on.
    pub fn backend(&self) -> EncoderBackend {
        match self {
            Self::Dense(_) => EncoderBackend::Dense,
            Self::Structured(_) => EncoderBackend::Structured,
        }
    }

    /// Standard deviation of the (implicit) base vectors — needed to
    /// persist and reconstruct either backend.
    pub fn base_std(&self) -> f32 {
        match self {
            Self::Dense(e) => e.base_std(),
            Self::Structured(e) => e.base_std(),
        }
    }

    /// Re-encodes only the selected dimensions of an already-encoded batch
    /// (see [`RbfEncoder::reencode_dims`] /
    /// [`StructuredRbfEncoder::reencode_dims`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on a batch or encoded-shape mismatch.
    pub fn reencode_dims(
        &self,
        batch: &Matrix,
        encoded: &mut Matrix,
        dims: &[usize],
    ) -> Result<(), ShapeError> {
        match self {
            Self::Dense(e) => e.reencode_dims(batch, encoded, dims),
            Self::Structured(e) => e.reencode_dims(batch, encoded, dims),
        }
    }

    /// Fused bit-sliced batch encode straight into a
    /// [`crate::quantize::QuantizedMatrix`] — projection, half-angle
    /// epilogue, optional centering and quantization in one pass, with no
    /// intermediate f32 matrix (see
    /// [`RbfEncoder::encode_batch_quantized`] /
    /// [`StructuredRbfEncoder::encode_batch_quantized`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on a batch or center shape mismatch.
    pub fn encode_batch_quantized(
        &self,
        batch: &Matrix,
        center: Option<&[f32]>,
        width: crate::quantize::BitWidth,
    ) -> Result<crate::quantize::QuantizedMatrix, ShapeError> {
        match self {
            Self::Dense(e) => e.encode_batch_quantized(batch, center, width),
            Self::Structured(e) => e.encode_batch_quantized(batch, center, width),
        }
    }

    /// Borrows the dense variant, if that is the active backend
    /// (persistence dispatch).
    pub fn as_dense(&self) -> Option<&RbfEncoder> {
        match self {
            Self::Dense(e) => Some(e),
            Self::Structured(_) => None,
        }
    }

    /// Borrows the structured variant, if that is the active backend
    /// (persistence dispatch).
    pub fn as_structured(&self) -> Option<&StructuredRbfEncoder> {
        match self {
            Self::Dense(_) => None,
            Self::Structured(e) => Some(e),
        }
    }
}

impl From<RbfEncoder> for AnyRbfEncoder {
    fn from(encoder: RbfEncoder) -> Self {
        Self::Dense(encoder)
    }
}

impl From<StructuredRbfEncoder> for AnyRbfEncoder {
    fn from(encoder: StructuredRbfEncoder) -> Self {
        Self::Structured(encoder)
    }
}

impl Encoder for AnyRbfEncoder {
    fn input_dim(&self) -> usize {
        match self {
            Self::Dense(e) => e.input_dim(),
            Self::Structured(e) => e.input_dim(),
        }
    }

    fn output_dim(&self) -> usize {
        match self {
            Self::Dense(e) => e.output_dim(),
            Self::Structured(e) => e.output_dim(),
        }
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        match self {
            Self::Dense(e) => e.encode(features),
            Self::Structured(e) => e.encode(features),
        }
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        match self {
            Self::Dense(e) => e.encode_batch(batch),
            Self::Structured(e) => e.encode_batch(batch),
        }
    }
}

impl RegenerativeEncoder for AnyRbfEncoder {
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng) {
        match self {
            Self::Dense(e) => e.regenerate(dims, rng),
            Self::Structured(e) => e.regenerate(dims, rng),
        }
    }

    fn regenerated_count(&self) -> u64 {
        match self {
            Self::Dense(e) => e.regenerated_count(),
            Self::Structured(e) => e.regenerated_count(),
        }
    }
}

#[cfg(test)]
mod backend_tests {
    use super::*;

    #[test]
    fn backend_parse_and_display_round_trip() {
        for backend in [EncoderBackend::Dense, EncoderBackend::Structured] {
            assert_eq!(EncoderBackend::parse(&backend.to_string()), Some(backend));
        }
        assert_eq!(
            EncoderBackend::parse(" Structured "),
            Some(EncoderBackend::Structured)
        );
        assert_eq!(EncoderBackend::parse("fastfood"), None);
        assert_eq!(EncoderBackend::default(), EncoderBackend::Dense);
    }

    #[test]
    fn any_encoder_dispatches_to_the_selected_backend() {
        let mut rng = SeededRng::new(RngSeed(2));
        for backend in [EncoderBackend::Dense, EncoderBackend::Structured] {
            let mut enc = AnyRbfEncoder::new(backend, 5, 64, RngSeed(1));
            assert_eq!(enc.backend(), backend);
            assert_eq!(enc.input_dim(), 5);
            assert_eq!(enc.output_dim(), 64);
            assert!(enc.base_std() > 0.0);
            let x = [0.2, -0.1, 0.5, 0.9, 0.0];
            let single = enc.encode(&x).unwrap();
            let batch = enc
                .encode_batch(&Matrix::from_rows(&[x.to_vec()]).unwrap())
                .unwrap();
            for (a, b) in single.iter().zip(batch.row(0)) {
                assert!((a - b).abs() < 1e-5, "{backend}: {a} vs {b}");
            }
            let before = enc.encode(&x).unwrap();
            enc.regenerate(&[3], &mut rng);
            assert_eq!(enc.regenerated_count(), 1);
            let after = enc.encode(&x).unwrap();
            assert_ne!(before[3], after[3], "{backend}");
            assert_eq!(before[4], after[4], "{backend}");
        }
    }

    #[test]
    fn fused_quantized_encode_matches_quantize_after_f32_encode() {
        use crate::quantize::{BitWidth, QuantizedMatrix};
        let mut rng = SeededRng::new(RngSeed(77));
        // One shape small enough for the fused constructor's serial loop,
        // one wide enough to fan out over the pool; both with regenerated
        // (overlay) dims so the structured backend's dense patch is
        // exercised too.
        for (rows, dim) in [(9usize, 257usize), (40, 1030)] {
            for backend in [EncoderBackend::Dense, EncoderBackend::Structured] {
                let mut enc = AnyRbfEncoder::new(backend, 6, dim, RngSeed(31));
                enc.regenerate(&[0, 5, 63, dim - 1], &mut rng);
                let batch =
                    Matrix::from_fn(rows, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin() * 0.8);
                let encoded = enc.encode_batch(&batch).unwrap();
                let center: Vec<f32> = (0..dim).map(|d| (d as f32 * 0.013).sin() * 0.05).collect();
                let mut centered = encoded.clone();
                for r in 0..rows {
                    for (v, &mu) in centered.row_mut(r).iter_mut().zip(&center) {
                        *v -= mu;
                    }
                }
                for width in BitWidth::all() {
                    let cases = [
                        (QuantizedMatrix::quantize(&encoded, width), None),
                        (
                            QuantizedMatrix::quantize(&centered, width),
                            Some(center.as_slice()),
                        ),
                    ];
                    for (reference, center_arg) in cases {
                        for threads in [1usize, 2, 8] {
                            let fused = disthd_linalg::parallel::with_thread_count(threads, || {
                                enc.encode_batch_quantized(&batch, center_arg, width)
                                    .unwrap()
                            });
                            let tag = format!(
                                "{backend} {rows}x{dim} w{} t{threads} centered={}",
                                width.bits(),
                                center_arg.is_some()
                            );
                            assert_eq!(fused.shape(), reference.shape(), "{tag}");
                            assert_eq!(fused.as_words(), reference.as_words(), "{tag}");
                            assert_eq!(fused.scales(), reference.scales(), "{tag}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn as_variant_accessors_match_backend() {
        let dense = AnyRbfEncoder::new(EncoderBackend::Dense, 4, 16, RngSeed(1));
        assert!(dense.as_dense().is_some());
        assert!(dense.as_structured().is_none());
        let structured = AnyRbfEncoder::new(EncoderBackend::Structured, 4, 16, RngSeed(1));
        assert!(structured.as_dense().is_none());
        assert!(structured.as_structured().is_some());
    }
}
