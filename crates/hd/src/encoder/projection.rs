use super::{Encoder, RegenerativeEncoder};
use disthd_linalg::{Gaussian, Matrix, RngSeed, SeededRng, ShapeError};

/// A plain linear random-projection encoder `H = F · B`.
///
/// This is the pre-generated *static* encoder of classical HDC pipelines —
/// no nonlinearity, no phases.  It exists as a substrate for the BaselineHD
/// comparator and for the Fig. 2(a) motivation experiment showing why static
/// linear encoders need very high dimensionality.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, LinearProjectionEncoder};
/// use disthd_linalg::RngSeed;
///
/// let enc = LinearProjectionEncoder::new(3, 32, RngSeed(1));
/// let hv = enc.encode(&[1.0, 0.0, 0.0])?;
/// assert_eq!(hv.len(), 32);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearProjectionEncoder {
    /// `n x D` projection; column `i` is the base vector of output dim `i`.
    bases: Matrix,
    input_dim: usize,
    output_dim: usize,
    regenerated: u64,
}

impl LinearProjectionEncoder {
    /// Creates a projection with `N(0,1)` entries from the given seed.
    pub fn new(input_dim: usize, output_dim: usize, seed: RngSeed) -> Self {
        let mut rng = SeededRng::derive_stream(seed, 0x11EA);
        let gaussian = Gaussian::standard();
        let bases = Matrix::from_fn(input_dim, output_dim, |_, _| gaussian.sample(&mut rng));
        Self {
            bases,
            input_dim,
            output_dim,
            regenerated: 0,
        }
    }

    /// Borrows the projection matrix.
    pub fn bases(&self) -> &Matrix {
        &self.bases
    }
}

impl Encoder for LinearProjectionEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if features.len() != self.input_dim {
            return Err(ShapeError::new(
                "projection_encode",
                (1, features.len()),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = vec![0.0f32; self.output_dim];
        for (k, &f) in features.iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            disthd_linalg::axpy(f, self.bases.row(k), &mut out);
        }
        Ok(out)
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        batch.matmul(&self.bases)
    }
}

impl RegenerativeEncoder for LinearProjectionEncoder {
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng) {
        let gaussian = Gaussian::standard();
        for &d in dims {
            if d >= self.output_dim {
                continue;
            }
            for k in 0..self.input_dim {
                self.bases.set(k, d, gaussian.sample(rng));
            }
            self.regenerated += 1;
        }
    }

    fn regenerated_count(&self) -> u64 {
        self.regenerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_linear() {
        let enc = LinearProjectionEncoder::new(4, 16, RngSeed(2));
        let a = enc.encode(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let b = enc.encode(&[0.0, 1.0, 0.0, 0.0]).unwrap();
        let ab = enc.encode(&[1.0, 1.0, 0.0, 0.0]).unwrap();
        for i in 0..16 {
            assert!((ab[i] - (a[i] + b[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_matches_single() {
        let enc = LinearProjectionEncoder::new(3, 8, RngSeed(3));
        let rows = vec![vec![0.5, -1.0, 2.0]];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        let single = enc.encode(&rows[0]).unwrap();
        for (a, b) in encoded.row(0).iter().zip(single.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn regenerate_changes_selected_columns() {
        let mut enc = LinearProjectionEncoder::new(3, 8, RngSeed(4));
        let before = enc.encode(&[1.0, 1.0, 1.0]).unwrap();
        let mut rng = SeededRng::new(RngSeed(5));
        enc.regenerate(&[2], &mut rng);
        let after = enc.encode(&[1.0, 1.0, 1.0]).unwrap();
        assert_ne!(before[2], after[2]);
        assert_eq!(before[0], after[0]);
        assert_eq!(enc.regenerated_count(), 1);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let enc = LinearProjectionEncoder::new(3, 8, RngSeed(6));
        assert!(enc.encode(&[1.0]).is_err());
    }
}
