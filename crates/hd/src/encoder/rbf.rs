use super::{Encoder, RegenerativeEncoder};
use crate::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::{
    half_angle_row, sin_det, Gaussian, Matrix, PackedRhs, RngSeed, SeededRng, ShapeError, Uniform,
};

/// The paper's RBF-inspired nonlinear encoder (§III-C).
///
/// Each output dimension `i` owns a base vector `B_i ~ N(0,1)^n` and a phase
/// `c_i ~ U[0, 2π)`; the encoding is
///
/// ```text
/// h_i = cos(B_i · F + c_i) · sin(B_i · F)
/// ```
///
/// which approximates an RBF kernel feature map (Rahimi & Recht \[21\]) and
/// captures non-linear feature interactions.  Batch encoding is a single
/// matrix product followed by the element-wise trigonometric map.
///
/// This encoder is *regenerative*: [`RegenerativeEncoder::regenerate`]
/// replaces `B_i` and `c_i` for selected dimensions — the mechanism DistHD
/// uses to replace dimensions that mislead classification.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, RegenerativeEncoder, RbfEncoder};
/// use disthd_linalg::{RngSeed, SeededRng};
///
/// let mut encoder = RbfEncoder::new(4, 128, RngSeed(9));
/// let before = encoder.encode(&[0.3, 0.1, 0.8, 0.5])?;
/// let mut rng = SeededRng::new(RngSeed(10));
/// encoder.regenerate(&[0, 1, 2], &mut rng);
/// let after = encoder.encode(&[0.3, 0.1, 0.8, 0.5])?;
/// assert_ne!(before[0], after[0]);      // regenerated dims change
/// assert_eq!(before[3], after[3]);      // untouched dims are stable
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RbfEncoder {
    /// `n x D` base matrix: column `i` is `B_i`, so a feature batch encodes
    /// as `batch · bases` in one GEMM.
    bases: Matrix,
    /// Per-dimension phases `c_i`.
    phases: Vec<f32>,
    /// Precomputed `sin(c_i)` per dimension: the nonlinearity is evaluated
    /// through the product-to-sum identity `cos(p + c)·sin(p) =
    /// ½(sin(2p + c) − sin(c))`, which needs one `sin` per element instead
    /// of a `cos` plus a `sin` — the trig epilogue is a fixed per-element
    /// cost on every encode, so halving it matters.  Kept in sync with
    /// `phases` through construction and regeneration.
    phase_sins: Vec<f32>,
    /// Standard deviation of base-vector entries (bandwidth / sqrt(n)).
    base_std: f32,
    input_dim: usize,
    output_dim: usize,
    regenerated: u64,
}

/// Default kernel bandwidth (see [`RbfEncoder::with_bandwidth`]).
pub const DEFAULT_BANDWIDTH: f32 = 3.0;

impl RbfEncoder {
    /// Creates an encoder for `input_dim` features and `output_dim`
    /// hyperdimensions with the default bandwidth.
    pub fn new(input_dim: usize, output_dim: usize, seed: RngSeed) -> Self {
        Self::with_bandwidth(input_dim, output_dim, DEFAULT_BANDWIDTH, seed)
    }

    /// Creates an encoder with an explicit kernel bandwidth `γ`.
    ///
    /// Base entries are drawn from `N(0, (γ/√n)²)` rather than the paper's
    /// literal `N(0, 1)`: for `n`-dimensional features normalized to
    /// `[0, 1]`, unit-variance bases make the projections `B_i·F` span
    /// hundreds of radians, so the `cos·sin` map wraps thousands of times
    /// and nearby inputs encode to uncorrelated hypervectors (an
    /// arbitrarily narrow RBF kernel — pure memorization).  Scaling by
    /// `γ/√n` keeps the projection spread `O(γ)` for any feature count,
    /// which is exactly the kernel-bandwidth choice the paper's grid search
    /// ("common practice to identify the best hyper-parameters", §IV-A)
    /// performs implicitly.  `γ` ≈ 2–4 works across the Table I suite.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth <= 0`.
    pub fn with_bandwidth(
        input_dim: usize,
        output_dim: usize,
        bandwidth: f32,
        seed: RngSeed,
    ) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let base_std = bandwidth / (input_dim.max(1) as f32).sqrt();
        let mut rng = SeededRng::derive_stream(seed, 0xE7C0);
        let gaussian = Gaussian::new(0.0, base_std);
        let bases = Matrix::from_fn(input_dim, output_dim, |_, _| gaussian.sample(&mut rng));
        let phases = Uniform::phase().sample_vec(&mut rng, output_dim);
        let phase_sins = phases.iter().map(|&c| sin_det(c)).collect();
        Self {
            bases,
            phases,
            phase_sins,
            base_std,
            input_dim,
            output_dim,
            regenerated: 0,
        }
    }

    /// The nonlinearity `cos(p + c)·sin(p)`, evaluated as
    /// `½(sin(2p + c) − sin(c))` with `sin(c)` precomputed — shared with
    /// the structured backend via [`super::half_angle_cosine`].
    #[inline]
    fn nonlinearity(projection: f32, phase: f32, phase_sin: f32) -> f32 {
        super::half_angle_cosine(projection, phase, phase_sin)
    }

    /// Applies the nonlinearity to a row of raw projections, in place.
    fn apply_nonlinearity(&self, projections: &mut [f32]) {
        for ((p, &c), &sc) in projections
            .iter_mut()
            .zip(self.phases.iter())
            .zip(self.phase_sins.iter())
        {
            *p = Self::nonlinearity(*p, c, sc);
        }
    }

    /// Borrows the base matrix (`n x D`, column `i` = `B_i`).
    pub fn bases(&self) -> &Matrix {
        &self.bases
    }

    /// Re-encodes only the selected dimensions of an already-encoded batch.
    ///
    /// After [`super::RegenerativeEncoder::regenerate`] replaced a handful
    /// of base vectors, the rest of the encoded matrix is still valid —
    /// recomputing just the regenerated columns costs `O(samples · |dims| ·
    /// n)` instead of a full `O(samples · D · n)` re-encode.  This partial
    /// update is the mechanical reason DistHD retrains faster than
    /// NeuralHD's re-encode-everything pipeline (Fig. 5).
    ///
    /// Out-of-range dims are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()` or
    /// `encoded` has the wrong shape.
    pub fn reencode_dims(
        &self,
        batch: &Matrix,
        encoded: &mut Matrix,
        dims: &[usize],
    ) -> Result<(), ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "reencode_dims",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        if encoded.shape() != (batch.rows(), self.output_dim) {
            return Err(ShapeError::new(
                "reencode_dims",
                encoded.shape(),
                (batch.rows(), self.output_dim),
            ));
        }
        // Gather each regenerated base column once (the base matrix is
        // column-strided), then stream all samples against the contiguous
        // copy — the inner dot product auto-vectorizes.
        let mut column = vec![0.0f32; self.input_dim];
        for &d in dims {
            if d >= self.output_dim {
                continue;
            }
            for (k, slot) in column.iter_mut().enumerate() {
                *slot = self.bases.get(k, d);
            }
            let phase = self.phases[d];
            let phase_sin = self.phase_sins[d];
            for r in 0..batch.rows() {
                let p = disthd_linalg::dot(batch.row(r), &column);
                encoded.set(r, d, Self::nonlinearity(p, phase, phase_sin));
            }
        }
        Ok(())
    }

    /// Borrows the per-dimension phases.
    pub fn phases(&self) -> &[f32] {
        &self.phases
    }

    /// Pre-backend batch encoding: scalar reference matmul followed by a
    /// separate nonlinearity pass over the projected batch.
    ///
    /// Kept as the ground truth for backend parity tests and as the
    /// "pre-PR" baseline the throughput benchmark measures speedups
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()`.
    pub fn encode_batch_reference(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        let mut projected = batch.matmul_reference(&self.bases)?;
        for r in 0..projected.rows() {
            self.apply_nonlinearity(projected.row_mut(r));
        }
        Ok(projected)
    }

    /// Standard deviation of base entries (`bandwidth / sqrt(n)`), needed
    /// to persist and reconstruct the encoder.
    pub fn base_std(&self) -> f32 {
        self.base_std
    }

    /// Reassembles an encoder from persisted parts.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `phases.len() != bases.cols()`.
    pub fn from_parts(bases: Matrix, phases: Vec<f32>, base_std: f32) -> Result<Self, ShapeError> {
        if phases.len() != bases.cols() {
            return Err(ShapeError::new(
                "rbf_from_parts",
                bases.shape(),
                (1, phases.len()),
            ));
        }
        let input_dim = bases.rows();
        let output_dim = bases.cols();
        let phase_sins = phases.iter().map(|&c| sin_det(c)).collect();
        Ok(Self {
            bases,
            phases,
            phase_sins,
            base_std,
            input_dim,
            output_dim,
            regenerated: 0,
        })
    }

    /// Fused bit-sliced batch encode: project, apply the half-angle
    /// epilogue, optionally subtract a centering mean, and quantize each
    /// row straight into packed words — no full-precision output matrix is
    /// ever materialized.
    ///
    /// The projection runs through [`Matrix::matmul_rows_into`] against a
    /// once-packed right-hand side (bit-identical to the
    /// [`Encoder::encode_batch`] GEMM for any row partition) and the
    /// epilogue through [`disthd_linalg::half_angle_row`] (bit-identical to
    /// the scalar half-angle map), so the result equals quantizing the
    /// centered f32 encode of the same batch **bit for bit**, at every
    /// kernel tier and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()` or `center`
    /// is not `output_dim()` long.
    pub fn encode_batch_quantized(
        &self,
        batch: &Matrix,
        center: Option<&[f32]>,
        width: BitWidth,
    ) -> Result<QuantizedMatrix, ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "rbf_encode_quantized",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        if let Some(means) = center {
            if means.len() != self.output_dim {
                return Err(ShapeError::new(
                    "rbf_encode_quantized",
                    (1, means.len()),
                    (1, self.output_dim),
                ));
            }
        }
        let packed = PackedRhs::pack(&self.bases);
        let cols = self.output_dim;
        Ok(QuantizedMatrix::from_row_producer(
            batch.rows(),
            cols,
            width,
            |first_row, values| {
                batch
                    .matmul_rows_into(&packed, first_row, values)
                    .expect("shapes validated before packing");
                for row in values.chunks_exact_mut(cols) {
                    // Unit scale is an exact no-op on the projections.
                    half_angle_row(row, 1.0, &self.phases, &self.phase_sins);
                    if let Some(means) = center {
                        for (v, &mu) in row.iter_mut().zip(means) {
                            *v -= mu;
                        }
                    }
                }
            },
        ))
    }
}

impl Encoder for RbfEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if features.len() != self.input_dim {
            return Err(ShapeError::new(
                "rbf_encode",
                (1, features.len()),
                (self.input_dim, self.output_dim),
            ));
        }
        // projections[i] = B_i · F  — one pass over the base matrix rows.
        let mut projections = vec![0.0f32; self.output_dim];
        for (k, &f) in features.iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            disthd_linalg::axpy(f, self.bases.row(k), &mut projections);
        }
        self.apply_nonlinearity(&mut projections);
        Ok(projections)
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        // The cos·sin map runs inside the GEMM's store phase (the epilogue
        // sees the output *column*, which selects the per-dimension phase),
        // so the D-wide encoded batch is written exactly once instead of
        // being re-streamed for a separate nonlinearity pass.
        let phases = &self.phases;
        let phase_sins = &self.phase_sins;
        batch.matmul_map(&self.bases, |dim, p| {
            Self::nonlinearity(p, phases[dim], phase_sins[dim])
        })
    }
}

impl RegenerativeEncoder for RbfEncoder {
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng) {
        let gaussian = Gaussian::new(0.0, self.base_std);
        let phase = Uniform::phase();
        for &d in dims {
            if d >= self.output_dim {
                continue;
            }
            for k in 0..self.input_dim {
                self.bases.set(k, d, gaussian.sample(rng));
            }
            self.phases[d] = phase.sample(rng);
            self.phase_sins[d] = sin_det(self.phases[d]);
            self.regenerated += 1;
        }
    }

    fn regenerated_count(&self) -> u64 {
        self.regenerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> RbfEncoder {
        RbfEncoder::new(6, 200, RngSeed(42))
    }

    #[test]
    fn output_is_bounded_by_unit_interval() {
        let enc = encoder();
        let hv = enc.encode(&[0.9, -0.5, 0.1, 2.0, -1.5, 0.3]).unwrap();
        assert!(hv.iter().all(|h| (-1.0..=1.0).contains(h)));
    }

    #[test]
    fn encode_is_deterministic() {
        let enc = encoder();
        let a = enc.encode(&[0.1; 6]).unwrap();
        let b = enc.encode(&[0.1; 6]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_encoder() {
        let a = RbfEncoder::new(6, 64, RngSeed(5))
            .encode(&[0.2; 6])
            .unwrap();
        let b = RbfEncoder::new(6, 64, RngSeed(5))
            .encode(&[0.2; 6])
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_encode_matches_single_encode() {
        let enc = encoder();
        let rows = vec![
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            vec![-1.0, 0.0, 1.0, 0.5, -0.5, 0.25],
        ];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let single = enc.encode(row).unwrap();
            for (a, b) in encoded.row(r).iter().zip(single.iter()) {
                assert!((a - b).abs() < 1e-4, "batch {a} vs single {b}");
            }
        }
    }

    #[test]
    fn fused_encode_matches_reference_path() {
        // All-nonzero features keep the reference kernel's sparse skip
        // inactive, so the fused GEMM-epilogue path performs the same
        // k-ascending accumulation and the same cos·sin map.  On
        // FMA-capable machines the GEMM fuses each multiply-add into one
        // rounding (the reference kernel rounds twice), so the projections
        // agree to ≤ 1 ulp per accumulation step; the nonlinearity is
        // 1-Lipschitz in the projection, so a small absolute tolerance
        // covers every tier.
        let enc = encoder();
        let batch = Matrix::from_fn(9, 6, |r, c| 0.1 + 0.07 * (r * 6 + c + 1) as f32);
        let fused = enc.encode_batch(&batch).unwrap();
        let reference = enc.encode_batch_reference(&batch).unwrap();
        for (i, (&a, &b)) in fused
            .as_slice()
            .iter()
            .zip(reference.as_slice().iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() < 1e-5,
                "element {i}: fused {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn encode_batch_is_bit_identical_across_thread_counts() {
        let enc = RbfEncoder::new(6, 1030, RngSeed(21));
        let batch = Matrix::from_fn(19, 6, |r, c| ((r + 2 * c) as f32).sin() * 0.4 + 0.5);
        let serial =
            disthd_linalg::parallel::with_thread_count(1, || enc.encode_batch(&batch).unwrap());
        for threads in [2usize, 8] {
            let parallel = disthd_linalg::parallel::with_thread_count(threads, || {
                enc.encode_batch(&batch).unwrap()
            });
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{threads} threads");
        }
    }

    #[test]
    fn nearby_inputs_encode_to_similar_hypervectors() {
        let enc = RbfEncoder::new(6, 2048, RngSeed(7));
        let a = enc.encode(&[0.5, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let b = enc.encode(&[0.51, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let c = enc.encode(&[-0.9, 0.9, -0.9, 0.9, -0.9, 0.9]).unwrap();
        let sim_ab = disthd_linalg::cosine_similarity(&a, &b);
        let sim_ac = disthd_linalg::cosine_similarity(&a, &c);
        assert!(sim_ab > sim_ac, "locality: {sim_ab} vs {sim_ac}");
        assert!(sim_ab > 0.9);
    }

    #[test]
    fn regeneration_changes_only_selected_dims() {
        let mut enc = encoder();
        let input = [0.3, -0.2, 0.7, 0.1, 0.9, -0.4];
        let before = enc.encode(&input).unwrap();
        let mut rng = SeededRng::new(RngSeed(99));
        enc.regenerate(&[3, 5, 11], &mut rng);
        let after = enc.encode(&input).unwrap();
        for i in 0..enc.output_dim() {
            if [3, 5, 11].contains(&i) {
                assert_ne!(before[i], after[i], "dim {i} should change");
            } else {
                assert_eq!(before[i], after[i], "dim {i} should be stable");
            }
        }
        assert_eq!(enc.regenerated_count(), 3);
    }

    #[test]
    fn regeneration_ignores_out_of_range_dims() {
        let mut enc = encoder();
        let mut rng = SeededRng::new(RngSeed(1));
        enc.regenerate(&[9999], &mut rng);
        assert_eq!(enc.regenerated_count(), 0);
    }

    #[test]
    fn encode_rejects_wrong_arity() {
        assert!(encoder().encode(&[0.0; 5]).is_err());
    }

    #[test]
    fn partial_reencode_matches_full_reencode() {
        let mut enc = encoder();
        let batch = Matrix::from_rows(&[
            vec![0.1, 0.9, 0.4, 0.3, 0.7, 0.2],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        ])
        .unwrap();
        let mut encoded = enc.encode_batch(&batch).unwrap();
        let mut rng = SeededRng::new(RngSeed(13));
        let dims = [2usize, 7, 30, 199];
        enc.regenerate(&dims, &mut rng);
        enc.reencode_dims(&batch, &mut encoded, &dims).unwrap();
        let full = enc.encode_batch(&batch).unwrap();
        for r in 0..encoded.rows() {
            for c in 0..encoded.cols() {
                assert!(
                    (encoded.get(r, c) - full.get(r, c)).abs() < 1e-4,
                    "({r},{c}): partial {} vs full {}",
                    encoded.get(r, c),
                    full.get(r, c)
                );
            }
        }
    }

    #[test]
    fn partial_reencode_validates_shapes() {
        let enc = encoder();
        let batch = Matrix::zeros(2, 6);
        let mut wrong = Matrix::zeros(2, 10);
        assert!(enc.reencode_dims(&batch, &mut wrong, &[0]).is_err());
        let bad_batch = Matrix::zeros(2, 3);
        let mut encoded = Matrix::zeros(2, 200);
        assert!(enc.reencode_dims(&bad_batch, &mut encoded, &[0]).is_err());
    }
}
