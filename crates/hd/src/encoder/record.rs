use super::Encoder;
use crate::bipolar::BipolarHypervector;
use disthd_linalg::{Matrix, RngSeed, SeededRng, ShapeError};

/// Record-based (key–value binding) encoder.
///
/// The third classical HDC encoding (alongside the nonlinear projection and
/// the level–ID scheme): each feature position `k` owns a random bipolar
/// *key* hypervector `K_k`, each sample encodes as the bundle of keys bound
/// to their scaled values,
///
/// ```text
/// H = Σ_k  f_k · K_k
/// ```
///
/// i.e. a signed random projection whose rows are bipolar rather than
/// Gaussian.  Because binding with a key is invertible, an approximate
/// per-field readout is possible: `unbind(H, k) ≈ f_k · D` plus cross-talk
/// from the other fields — the property record encodings are used for in
/// HDC data records.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, RecordEncoder};
/// use disthd_linalg::RngSeed;
///
/// let enc = RecordEncoder::new(4, 2048, RngSeed(5));
/// let hv = enc.encode(&[1.0, -0.5, 0.0, 0.25])?;
/// // Reading field 0 back recovers its sign and rough magnitude.
/// let readout = enc.read_field(&hv, 0);
/// assert!(readout > 0.5);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    keys: Vec<BipolarHypervector>,
    input_dim: usize,
    output_dim: usize,
}

impl RecordEncoder {
    /// Creates an encoder with random bipolar keys.
    pub fn new(input_dim: usize, output_dim: usize, seed: RngSeed) -> Self {
        let mut rng = SeededRng::derive_stream(seed, 0x4EC0);
        let keys = (0..input_dim)
            .map(|_| BipolarHypervector::random(output_dim, &mut rng))
            .collect();
        Self {
            keys,
            input_dim,
            output_dim,
        }
    }

    /// Borrows the key hypervector of feature `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= input_dim()`.
    pub fn key(&self, k: usize) -> &BipolarHypervector {
        &self.keys[k]
    }

    /// Approximate readout of field `k` from an encoded record:
    /// `(H · K_k) / D ≈ f_k` (plus `O(1/√D)` cross-talk per other field).
    ///
    /// # Panics
    ///
    /// Panics if `k >= input_dim()` or `hv.len() != output_dim()`.
    pub fn read_field(&self, hv: &[f32], k: usize) -> f32 {
        assert_eq!(hv.len(), self.output_dim, "record width mismatch");
        let key = &self.keys[k];
        let dot: f32 = hv
            .iter()
            .zip(key.as_slice())
            .map(|(&h, &s)| h * s as f32)
            .sum();
        dot / self.output_dim as f32
    }
}

impl Encoder for RecordEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if features.len() != self.input_dim {
            return Err(ShapeError::new(
                "record_encode",
                (1, features.len()),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = vec![0.0f32; self.output_dim];
        for (k, &f) in features.iter().enumerate() {
            if f == 0.0 {
                continue;
            }
            for (o, &s) in out.iter_mut().zip(self.keys[k].as_slice()) {
                *o += f * s as f32;
            }
        }
        Ok(out)
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(batch.rows(), self.output_dim);
        for r in 0..batch.rows() {
            let encoded = self.encode(batch.row(r))?;
            out.row_mut(r).copy_from_slice(&encoded);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> RecordEncoder {
        RecordEncoder::new(6, 4096, RngSeed(8))
    }

    #[test]
    fn readout_recovers_field_values() {
        let enc = encoder();
        let features = [0.9, -0.4, 0.0, 0.2, -1.0, 0.5];
        let hv = enc.encode(&features).unwrap();
        for (k, &f) in features.iter().enumerate() {
            let readout = enc.read_field(&hv, k);
            assert!(
                (readout - f).abs() < 0.15,
                "field {k}: wrote {f}, read {readout}"
            );
        }
    }

    #[test]
    fn encoding_is_linear_in_features() {
        let enc = RecordEncoder::new(3, 256, RngSeed(1));
        let a = enc.encode(&[1.0, 0.0, 0.0]).unwrap();
        let b = enc.encode(&[0.0, 2.0, 0.0]).unwrap();
        let ab = enc.encode(&[1.0, 2.0, 0.0]).unwrap();
        for i in 0..256 {
            assert!((ab[i] - (a[i] + b[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn distinct_keys_are_nearly_orthogonal() {
        let enc = encoder();
        let sim = enc.key(0).similarity(enc.key(1));
        assert!(sim.abs() < 0.08, "key similarity {sim}");
    }

    #[test]
    fn wrong_arity_is_rejected() {
        assert!(encoder().encode(&[1.0]).is_err());
    }

    #[test]
    fn batch_matches_single() {
        let enc = RecordEncoder::new(4, 128, RngSeed(2));
        let rows = vec![vec![0.5, -0.5, 1.0, 0.0]];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        assert_eq!(encoded.row(0), enc.encode(&rows[0]).unwrap().as_slice());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn read_field_checks_width() {
        encoder().read_field(&[0.0; 4], 0);
    }
}
