use super::{half_angle_cosine, Encoder, RegenerativeEncoder};
use crate::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::{
    dot, fht_inplace_opts, half_angle_row, parallel, sin_det, FhtOpts, FhtPrunePlan, FhtSchedule,
    Gaussian, Matrix, PackedRhs, RngSeed, SeededRng, ShapeError, Uniform,
};
use std::collections::BTreeMap;

/// Minimum rows per parallel work unit of the structured batch encode.
/// Fixed (never derived from the worker count) so results are bit-identical
/// at any thread count, exactly like the GEMM's row chunking.
const ENCODE_ROW_CHUNK: usize = 8;

/// Minimum output elements per parallel work unit.  Narrow outputs scale
/// the row chunk up until each unit carries this much butterfly-plus-sine
/// arithmetic, so fork/join and per-chunk scratch setup stay amortized.
const ENCODE_CHUNK_MIN_ELEMS: usize = 1 << 14;

/// Below this many output elements the whole batch encodes serially: the
/// pool's fork/join cost dwarfs the per-element arithmetic (the same
/// reasoning as the GEMM's serial threshold, tuned for the heavier
/// per-element trigonometric epilogue).
const ENCODE_PAR_MIN_ELEMS: usize = 1 << 15;

/// Smallest transform a shrunken ragged last block may use (clamped to the
/// block dim when that is smaller).  Keeps a degenerate 1–2 point "mixing"
/// transform from producing near-passthrough features while still letting
/// a short tail skip most of a full-size transform.
const MIN_RAGGED_TRANSFORM: usize = 8;

/// Rows per parallel work unit, derived from the output width alone —
/// never the worker count — so the partition (and the output bits) are
/// identical at any thread count.
fn encode_chunk_rows(output_dim: usize) -> usize {
    let scale = ENCODE_CHUNK_MIN_ELEMS
        .div_ceil(ENCODE_ROW_CHUNK * output_dim.max(1))
        .max(1);
    ENCODE_ROW_CHUNK * scale
}

/// Sentinel in the dim → overlay-column map: "still on the structured
/// backbone".
const NOT_OVERLAID: u32 = u32::MAX;

/// Shape of one transform block: which input features it reads, which
/// output dims it produces, where its sign diagonals live and how its raw
/// outputs are scaled.  Derived deterministically from
/// `(input_dim, output_dim, block_dim)` — never persisted.
#[derive(Debug, Clone)]
struct BlockSpec {
    /// Start of this block's `3 · transform_dim` sign entries in `signs`.
    sign_offset: usize,
    /// Power-of-two FHT length of this block.
    transform_dim: usize,
    /// First input feature fed to this block.
    window_start: usize,
    /// Features fed (the rest of the transform input is zero-padded;
    /// equals `transform_dim` in half-block mode, `input_dim` in full-pad
    /// mode).
    window_len: usize,
    /// First output dimension this block produces.
    out_start: usize,
    /// Output dimensions produced (`min(output_dim − out_start,
    /// transform_dim)`).
    out_width: usize,
    /// Scale applied to raw transform outputs before the epilogue.
    scale: f32,
}

/// Structured (SORF/Fastfood-style) drop-in for [`super::RbfEncoder`]:
/// the dense Gaussian base matrix is replaced by blocks of
/// `H·diag(s₃)·H·diag(s₂)·H·diag(s₁)` — three Walsh–Hadamard transforms
/// interleaved with random sign diagonals — cutting batch encode from
/// `O(F·D)` multiply-adds to `O(D log D)` butterflies per sample.
///
/// ## Construction modes
///
/// **Full-pad** (`block_dim = d = F.next_power_of_two()`): the input is
/// zero-padded to `d` and `⌈D / d⌉` independent blocks are stacked, each
/// with its own three Rademacher sign vectors.  With the unnormalized
/// Hadamard transform (`H·Hᵀ = d·I`) the product `M = H·S₃·H·S₂·H·S₁`
/// satisfies `M·Mᵀ = d³·I`, so scaling by `base_std / d` gives every
/// implicit base vector the exact norm `base_std·√d` and projections with
/// the same `base_std²·‖F‖²` variance as the dense encoder.  The pad
/// lanes are exploited rather than paid for: the first transform runs
/// with a zero-aware front end ([`FhtOpts::nonzero_len`]) that is
/// bit-identical to transforming the padded buffer in full.
///
/// **Half-block** (`block_dim = d/2`, chosen automatically when
/// `F ≤ 0.75·d`): instead of padding ~40% zeros, each block transforms a
/// *dense* window of `h = d/2` consecutive features — even-indexed blocks
/// read `[0, h)`, odd ones `[F−h, F)`, so the two window families overlap
/// and jointly cover every feature.  Scaling by `base_std·√(F/h)/h` gives
/// every implicit row the norm `base_std·√F` — the dense encoder's
/// expected row norm — and the dense-target projection variance for
/// inputs whose energy is roughly uniform across features (each output
/// dim sees a window holding `h/F` of the features).  A ragged last block
/// additionally shrinks its transform to the smallest power of two
/// covering its live outputs (floored at 8 lanes so the radix-8 kernel
/// applies), so its sign vectors are sized to the *live* block rather
/// than the full `h`.
///
/// The projections then feed the identical fused half-angle cosine
/// epilogue, so downstream behaviour (bandwidth, centering, quantization)
/// is unchanged.
///
/// ## Schedules and pruning
///
/// The butterfly pass order is a process-wide knob
/// ([`FhtSchedule::from_env`], overridable per encoder via
/// [`StructuredRbfEncoder::set_fht_schedule`]); it is never persisted, so
/// DHD artifacts are schedule-independent.  Under the default ascending
/// schedule the third transform of every block runs with a final-stage
/// [`FhtPrunePlan`] that elides butterflies whose both output lanes are
/// dead — evicted to the dense overlay or beyond the consumed output
/// width — and the copy + half-angle epilogue likewise skips dead lanes.
/// Both skips are bitwise-invisible on live dims and tighten as
/// [`RegenerativeEncoder::regenerate`] grows the overlay.
///
/// ## Regeneration: the dense overlay
///
/// DistHD's Algorithm 2 regenerates *individual* dimensions, but a
/// structured dimension has no private base vector to redraw — every output
/// of a block shares the same sign diagonals.  A regenerated dimension is
/// therefore **evicted** from the structured backbone into a small dense
/// overlay: it gets a fresh private Gaussian base vector (exactly a dense
/// [`super::RbfEncoder`] column), stored as one row of a patch matrix.
/// Encoding computes the structured pass for the live dimensions and then
/// fills the overlaid columns via the existing 4×16 GEMM
/// ([`Matrix::matmul_map`]).  `fit` / `partial_fit` / regeneration semantics
/// are therefore identical to the dense encoder's, and the overlay GEMM
/// costs `O(F·m)` per sample for `m` evicted dimensions — tiny relative to
/// the FHT pass while regeneration touches a minority of dimensions.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, RegenerativeEncoder, StructuredRbfEncoder};
/// use disthd_linalg::{RngSeed, SeededRng};
///
/// let mut encoder = StructuredRbfEncoder::new(4, 128, RngSeed(9));
/// let before = encoder.encode(&[0.3, 0.1, 0.8, 0.5])?;
/// let mut rng = SeededRng::new(RngSeed(10));
/// encoder.regenerate(&[0, 1, 2], &mut rng);
/// let after = encoder.encode(&[0.3, 0.1, 0.8, 0.5])?;
/// assert_ne!(before[0], after[0]);      // regenerated dims change
/// assert_eq!(before[3], after[3]);      // untouched dims are stable
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StructuredRbfEncoder {
    input_dim: usize,
    output_dim: usize,
    /// Standard deviation the implicit base vectors emulate
    /// (`bandwidth / √n`, same as the dense encoder).
    base_std: f32,
    /// Per-block transform length parameter (persisted): the padded input
    /// size in full-pad mode, half of it in half-block mode.  Every
    /// block's `transform_dim` is ≤ this.
    block_dim: usize,
    /// Stacked transform blocks (shape derived from
    /// `(input_dim, output_dim, block_dim)`).
    blocks: Vec<BlockSpec>,
    /// Rademacher sign diagonals as `±1.0` (ready to multiply):
    /// `3 · transform_dim` entries per block, laid out
    /// `[block][stage][lane]` at each block's `sign_offset`.
    signs: Vec<f32>,
    /// Per-dimension phases `c_i ~ U[0, 2π)`.
    phases: Vec<f32>,
    /// Precomputed `sin(c_i)` (see `RbfEncoder::phase_sins`).
    phase_sins: Vec<f32>,
    /// Dim → overlay row index, [`NOT_OVERLAID`] while structured.
    overlay_index: Vec<u32>,
    /// Evicted dims in eviction order (row `j` of `overlay_rows` is the
    /// private base vector of `overlay_dims[j]`).
    overlay_dims: Vec<usize>,
    /// `m × n` overlay base vectors, one row per evicted dim.
    overlay_rows: Matrix,
    /// Cached `n × m` transpose of `overlay_rows` — the right-hand side of
    /// the overlay GEMM, rebuilt once per [`RegenerativeEncoder::regenerate`]
    /// call so the encode hot path never re-transposes.
    overlay_cols: Matrix,
    /// Butterfly pass order for every block transform (never persisted).
    schedule: FhtSchedule,
    /// Whether the final-stage prune plans are applied (ascending schedule
    /// only; on by default — pruning is bitwise-invisible on live dims).
    prune_enabled: bool,
    /// Per-block final-stage prune plan; `None` when the block is fully
    /// live (or too small to stage-prune).  Rebuilt on regeneration.
    prune_plans: Vec<Option<FhtPrunePlan>>,
    /// Per-block maximal runs `(start, len)` of *live* output lanes within
    /// `[0, out_width)` — the copy + epilogue work list.  Rebuilt on
    /// regeneration.
    live_runs: Vec<Vec<(u32, u32)>>,
    regenerated: u64,
}

/// Builds the per-block shapes for `(input_dim, output_dim, block_dim)`,
/// or `None` if `block_dim` is not a valid plan parameter for the shape.
fn plan_blocks(
    input_dim: usize,
    output_dim: usize,
    base_std: f32,
    block_dim: usize,
) -> Option<Vec<BlockSpec>> {
    if input_dim == 0 || output_dim == 0 {
        return None;
    }
    let full = input_dim.next_power_of_two();
    let half_mode = if block_dim == full {
        false
    } else if 2 * block_dim == full && half_block_eligible(input_dim) {
        true
    } else {
        return None;
    };
    let blocks = output_dim.div_ceil(block_dim);
    let mut specs = Vec::with_capacity(blocks);
    let mut sign_offset = 0;
    for b in 0..blocks {
        let out_start = b * block_dim;
        let remaining = output_dim - out_start;
        let (transform_dim, window_start, window_len) = if half_mode {
            let td = if remaining >= block_dim {
                block_dim
            } else {
                // Ragged last block: the smallest power of two covering
                // the live outputs, floored so the transform still mixes.
                remaining
                    .next_power_of_two()
                    .max(MIN_RAGGED_TRANSFORM.min(block_dim))
                    .min(block_dim)
            };
            // Alternate window families so the two halves of the feature
            // range are both covered: even blocks read the head, odd
            // blocks the tail.
            let start = if b % 2 == 0 { 0 } else { input_dim - td };
            (td, start, td)
        } else {
            (block_dim, 0, input_dim)
        };
        let scale = if half_mode {
            // Implicit row norm base_std·√F (the dense encoder's expected
            // row norm): rows of H·S·H·S·H·S have norm transform_dim^1.5.
            base_std * (input_dim as f32 / transform_dim as f32).sqrt() / transform_dim as f32
        } else {
            // Implicit row norm base_std·√d over the padded lanes.
            base_std / transform_dim as f32
        };
        specs.push(BlockSpec {
            sign_offset,
            transform_dim,
            window_start,
            window_len,
            out_start,
            out_width: remaining.min(transform_dim),
            scale,
        });
        sign_offset += 3 * transform_dim;
    }
    Some(specs)
}

/// Whether `input_dim` qualifies for the half-block construction:
/// `F ≤ 0.75 · next_power_of_two(F)` (so a half-size window still covers
/// more than half the features) with a non-degenerate half size.
fn half_block_eligible(input_dim: usize) -> bool {
    let full = input_dim.next_power_of_two();
    full >= 2 && 4 * input_dim <= 3 * full
}

impl StructuredRbfEncoder {
    /// Creates a structured encoder for `input_dim` features and
    /// `output_dim` hyperdimensions with the default bandwidth.
    pub fn new(input_dim: usize, output_dim: usize, seed: RngSeed) -> Self {
        Self::with_bandwidth(input_dim, output_dim, super::DEFAULT_BANDWIDTH, seed)
    }

    /// Creates a structured encoder with an explicit kernel bandwidth `γ`
    /// (see [`super::RbfEncoder::with_bandwidth`] for the scaling rationale;
    /// the structured construction targets the same projection variance).
    ///
    /// Non-power-of-two inputs with `F ≤ 0.75·next_power_of_two(F)` use
    /// the half-block construction (see the type docs); everything else
    /// zero-pads.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth <= 0`, `input_dim == 0` or `output_dim == 0`.
    pub fn with_bandwidth(
        input_dim: usize,
        output_dim: usize,
        bandwidth: f32,
        seed: RngSeed,
    ) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(output_dim > 0, "output_dim must be positive");
        let base_std = bandwidth / (input_dim as f32).sqrt();
        let block_dim = Self::default_block_dim(input_dim);
        let blocks = plan_blocks(input_dim, output_dim, base_std, block_dim)
            .expect("default block_dim is always a valid plan parameter");
        let sign_count: usize = blocks.iter().map(|s| 3 * s.transform_dim).sum();
        let mut rng = SeededRng::derive_stream(seed, 0x50FF);
        let signs: Vec<f32> = (0..sign_count)
            .map(|_| if rng.next_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        let phases = Uniform::phase().sample_vec(&mut rng, output_dim);
        let phase_sins = phases.iter().map(|&c| sin_det(c)).collect();
        let mut encoder = Self {
            input_dim,
            output_dim,
            base_std,
            block_dim,
            blocks,
            signs,
            phases,
            phase_sins,
            overlay_index: vec![NOT_OVERLAID; output_dim],
            overlay_dims: Vec::new(),
            overlay_rows: Matrix::zeros(0, input_dim),
            overlay_cols: Matrix::zeros(input_dim, 0),
            schedule: FhtSchedule::from_env(),
            prune_enabled: true,
            prune_plans: Vec::new(),
            live_runs: Vec::new(),
            regenerated: 0,
        };
        encoder.rebuild_prune_state();
        encoder
    }

    /// Block-dim plan parameter the constructor picks for `input_dim`:
    /// half of the padded size when the half-block construction applies,
    /// the padded size otherwise.
    pub fn default_block_dim(input_dim: usize) -> usize {
        let full = input_dim.next_power_of_two();
        if half_block_eligible(input_dim) {
            full / 2
        } else {
            full
        }
    }

    /// Total sign entries implied by a `(input_dim, output_dim,
    /// block_dim)` plan, or `None` if `block_dim` is not a valid plan
    /// parameter for the shape — the persistence layer's size check.
    pub fn plan_sign_count(input_dim: usize, output_dim: usize, block_dim: usize) -> Option<usize> {
        plan_blocks(input_dim, output_dim, 1.0, block_dim)
            .map(|specs| specs.iter().map(|s| 3 * s.transform_dim).sum())
    }

    /// Per-block transform length parameter (the per-block FHT size;
    /// ragged last blocks may use less — see the type docs).
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Standard deviation the implicit base vectors emulate (persistence).
    pub fn base_std(&self) -> f32 {
        self.base_std
    }

    /// Borrows the per-dimension phases (persistence).
    pub fn phases(&self) -> &[f32] {
        &self.phases
    }

    /// Evicted dimensions in overlay-row order (persistence).
    pub fn overlay_dims(&self) -> &[usize] {
        &self.overlay_dims
    }

    /// Borrows the `m × n` overlay base-vector rows (persistence).
    pub fn overlay_rows(&self) -> &Matrix {
        &self.overlay_rows
    }

    /// Total sign entries (`3 · transform_dim` summed over blocks),
    /// derivable from the shape but exposed so readers can size their
    /// buffers.
    pub fn sign_count(&self) -> usize {
        self.signs.len()
    }

    /// Packs the sign diagonals into `u64` words, bit `i` set ⇔ sign `i` is
    /// `+1` (persistence: 64 signs per word instead of one f32 each).
    pub fn packed_signs(&self) -> Vec<u64> {
        let mut words = vec![0u64; self.signs.len().div_ceil(64)];
        for (i, &s) in self.signs.iter().enumerate() {
            if s > 0.0 {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    /// Butterfly pass order used by every block transform.
    pub fn fht_schedule(&self) -> FhtSchedule {
        self.schedule
    }

    /// Overrides the butterfly pass order (defaults to
    /// [`FhtSchedule::from_env`] at construction).  Schedules differ in
    /// floating-point rounding, so encoded values change in the low bits;
    /// each schedule is bit-deterministic within itself across tiers and
    /// thread counts.
    pub fn set_fht_schedule(&mut self, schedule: FhtSchedule) {
        self.schedule = schedule;
    }

    /// Whether final-stage pruning and dead-lane epilogue skipping are
    /// enabled (on by default).
    pub fn final_stage_pruning(&self) -> bool {
        self.prune_enabled
    }

    /// Enables or disables final-stage pruning and dead-lane epilogue
    /// skipping.  Live output dims are bitwise-identical either way (the
    /// benchmark's A/B switch); disabling only wastes work.
    pub fn set_final_stage_pruning(&mut self, enabled: bool) {
        if self.prune_enabled != enabled {
            self.prune_enabled = enabled;
            self.rebuild_prune_state();
        }
    }

    /// Reassembles an encoder from persisted parts.
    ///
    /// `packed_signs` is the [`StructuredRbfEncoder::packed_signs`] word
    /// vector; overlay rows carry one private base vector per entry of
    /// `overlay_dims`, in order.  `block_dim` selects the construction
    /// mode: the padded input size (full-pad) or half of it (half-block,
    /// when eligible).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the dimensions are inconsistent:
    /// `block_dim` not a valid plan parameter, too few sign words, a phase
    /// count different from `output_dim`, an overlay shape mismatch, or an
    /// overlay dim out of range / repeated.
    // One parameter per persisted field of the DHD2 structured layout; a
    // builder would only re-spell the format.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        input_dim: usize,
        output_dim: usize,
        base_std: f32,
        block_dim: usize,
        packed_signs: &[u64],
        phases: Vec<f32>,
        overlay_dims: Vec<usize>,
        overlay_rows: Matrix,
    ) -> Result<Self, ShapeError> {
        let blocks = match plan_blocks(input_dim, output_dim, base_std, block_dim) {
            Some(blocks) if phases.len() == output_dim => blocks,
            _ => {
                return Err(ShapeError::new(
                    "structured_from_parts",
                    (input_dim, output_dim),
                    (block_dim, phases.len()),
                ));
            }
        };
        let sign_count: usize = blocks.iter().map(|s| 3 * s.transform_dim).sum();
        if packed_signs.len() != sign_count.div_ceil(64) {
            return Err(ShapeError::new(
                "structured_from_parts",
                (sign_count, 0),
                (packed_signs.len(), 64),
            ));
        }
        let signs: Vec<f32> = (0..sign_count)
            .map(|i| {
                if (packed_signs[i / 64] >> (i % 64)) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        if overlay_rows.shape() != (overlay_dims.len(), input_dim) {
            return Err(ShapeError::new(
                "structured_from_parts",
                overlay_rows.shape(),
                (overlay_dims.len(), input_dim),
            ));
        }
        let mut overlay_index = vec![NOT_OVERLAID; output_dim];
        for (j, &d) in overlay_dims.iter().enumerate() {
            if d >= output_dim || overlay_index[d] != NOT_OVERLAID {
                return Err(ShapeError::new(
                    "structured_from_parts",
                    (d, j),
                    (output_dim, overlay_dims.len()),
                ));
            }
            overlay_index[d] = j as u32;
        }
        let phase_sins = phases.iter().map(|&c| sin_det(c)).collect();
        let overlay_cols = overlay_rows.transpose();
        let mut encoder = Self {
            input_dim,
            output_dim,
            base_std,
            block_dim,
            blocks,
            signs,
            phases,
            phase_sins,
            overlay_index,
            overlay_dims,
            overlay_rows,
            overlay_cols,
            schedule: FhtSchedule::from_env(),
            prune_enabled: true,
            prune_plans: Vec::new(),
            live_runs: Vec::new(),
            regenerated: 0,
        };
        encoder.rebuild_prune_state();
        Ok(encoder)
    }

    /// Number of dimensions currently evicted into the dense overlay.
    pub fn overlay_len(&self) -> usize {
        self.overlay_dims.len()
    }

    /// Rebuilds the per-block prune plans and live-lane run lists from the
    /// current overlay map.  Called at construction and after every
    /// regeneration — never on the encode hot path.
    ///
    /// Lane `l` of block `b` is *dead* when it maps past the output
    /// (`l ≥ out_width`) or its dim has been evicted to the overlay; dead
    /// lanes drop out of the final butterfly stage (both-dead pairs), the
    /// copy and the trigonometric epilogue.  With pruning disabled every
    /// in-range lane is treated as live (overlaid dims are then computed
    /// and overwritten by the overlay pass, the pre-pruning behaviour).
    fn rebuild_prune_state(&mut self) {
        self.prune_plans.clear();
        self.live_runs.clear();
        for spec in &self.blocks {
            let td = spec.transform_dim;
            let live = |lane: usize| {
                lane < spec.out_width
                    && (!self.prune_enabled
                        || self.overlay_index[spec.out_start + lane] == NOT_OVERLAID)
            };
            let mut runs: Vec<(u32, u32)> = Vec::new();
            for lane in 0..spec.out_width {
                if live(lane) {
                    match runs.last_mut() {
                        Some((start, len)) if *start as usize + *len as usize == lane => *len += 1,
                        _ => runs.push((lane as u32, 1)),
                    }
                }
            }
            let plan = if td >= 2 {
                Some(FhtPrunePlan::from_live(td, live)).filter(|p| !p.is_full())
            } else {
                None
            };
            self.prune_plans.push(plan);
            self.live_runs.push(runs);
        }
    }

    /// Raw block transform: `scratch ← H·(s₃ ⊙ H·(s₂ ⊙ H·(s₁ ⊙ x_win)))`
    /// for block `b`, with the `s₁` multiply fused into the window copy
    /// and `s₂`/`s₃` fused into their transforms' first passes (all
    /// bit-identical to multiplying first).  The first transform declares
    /// the zero tail; the last carries the block's prune plan (ascending
    /// schedule only).  No scale or nonlinearity — shared verbatim by the
    /// batch encode and the partial re-encode so both are bit-identical.
    fn transform_block(&self, features: &[f32], b: usize, scratch: &mut [f32]) {
        let spec = &self.blocks[b];
        let td = spec.transform_dim;
        let scratch = &mut scratch[..td];
        let signs = &self.signs[spec.sign_offset..spec.sign_offset + 3 * td];
        let (s1, rest) = signs.split_at(td);
        let (s2, s3) = rest.split_at(td);
        let window = &features[spec.window_start..spec.window_start + spec.window_len];
        for ((slot, &f), &s) in scratch.iter_mut().zip(window.iter()).zip(s1.iter()) {
            *slot = f * s;
        }
        scratch[spec.window_len..].fill(0.0);
        let schedule = self.schedule;
        fht_inplace_opts(
            scratch,
            &FhtOpts {
                nonzero_len: spec.window_len,
                ..FhtOpts::dense(schedule)
            },
        );
        fht_inplace_opts(
            scratch,
            &FhtOpts {
                first_stage_signs: Some(s2),
                ..FhtOpts::dense(schedule)
            },
        );
        let prune = if self.prune_enabled && schedule == FhtSchedule::Ascending {
            self.prune_plans[b].as_ref()
        } else {
            None
        };
        fht_inplace_opts(
            scratch,
            &FhtOpts {
                first_stage_signs: Some(s3),
                prune,
                ..FhtOpts::dense(schedule)
            },
        );
    }

    /// Structured pass for one sample: every *live* output dimension
    /// through the block transforms, scale and half-angle epilogue.
    /// Overlaid columns are skipped (the caller's overlay pass fills
    /// them); with pruning disabled they are written and overwritten.
    fn encode_structured_row(&self, features: &[f32], out: &mut [f32], scratch: &mut [f32]) {
        debug_assert_eq!(out.len(), self.output_dim);
        for (b, spec) in self.blocks.iter().enumerate() {
            self.transform_block(features, b, scratch);
            // Copy each live run of raw block outputs to its contiguous
            // destination, then run the vectorized half-angle store over
            // the slice — bit-identical to the scalar `half_angle_cosine`
            // loop it replaces (the row kernel's contract), at SIMD
            // throughput.
            for &(start, len) in &self.live_runs[b] {
                let (lane, len) = (start as usize, len as usize);
                let dims = spec.out_start + lane..spec.out_start + lane + len;
                let slots = &mut out[dims.clone()];
                slots.copy_from_slice(&scratch[lane..lane + len]);
                half_angle_row(
                    slots,
                    spec.scale,
                    &self.phases[dims.clone()],
                    &self.phase_sins[dims],
                );
            }
        }
    }

    /// Re-encodes only the selected dimensions of an already-encoded batch
    /// (the partial update Algorithm 2 relies on — see
    /// [`super::RbfEncoder::reencode_dims`]).
    ///
    /// Overlaid dims recompute through their private dense base rows;
    /// still-structured dims re-run their block's transform (grouped per
    /// block so the FHT cost is paid once per block per sample), which is
    /// bit-identical to a full [`Encoder::encode_batch`] — requested dims
    /// are live by definition, so pruning never touches them.
    /// Out-of-range dims are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()` or `encoded`
    /// has the wrong shape.
    pub fn reencode_dims(
        &self,
        batch: &Matrix,
        encoded: &mut Matrix,
        dims: &[usize],
    ) -> Result<(), ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "reencode_dims",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        if encoded.shape() != (batch.rows(), self.output_dim) {
            return Err(ShapeError::new(
                "reencode_dims",
                encoded.shape(),
                (batch.rows(), self.output_dim),
            ));
        }
        let mut structured_by_block: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &dim in dims {
            if dim >= self.output_dim {
                continue;
            }
            let j = self.overlay_index[dim];
            if j == NOT_OVERLAID {
                structured_by_block
                    .entry(dim / self.block_dim)
                    .or_default()
                    .push(dim);
            } else {
                let base = self.overlay_rows.row(j as usize);
                let phase = self.phases[dim];
                let phase_sin = self.phase_sins[dim];
                for r in 0..batch.rows() {
                    let p = dot(batch.row(r), base);
                    encoded.set(r, dim, half_angle_cosine(p, phase, phase_sin));
                }
            }
        }
        if !structured_by_block.is_empty() {
            let mut scratch = vec![0.0f32; self.block_dim];
            for (&b, block_dims) in &structured_by_block {
                let spec = &self.blocks[b];
                for r in 0..batch.rows() {
                    self.transform_block(batch.row(r), b, &mut scratch);
                    for &dim in block_dims {
                        let value = half_angle_cosine(
                            scratch[dim - spec.out_start] * spec.scale,
                            self.phases[dim],
                            self.phase_sins[dim],
                        );
                        encoded.set(r, dim, value);
                    }
                }
            }
        }
        Ok(())
    }

    /// Fused bit-sliced batch encode: FHT backbone, overlay patch,
    /// optional centering and quantization, written straight into packed
    /// words — no full-precision output matrix is ever materialized.
    ///
    /// Each stage reuses the exact kernel of the f32
    /// [`Encoder::encode_batch`] path (per-row block transforms plus
    /// [`disthd_linalg::half_angle_row`]; the overlay GEMM via
    /// [`Matrix::matmul_rows_into`] with the same scalar epilogue), so the
    /// result equals quantizing the centered f32 encode of the same batch
    /// **bit for bit**, at every kernel tier and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()` or `center`
    /// is not `output_dim()` long.
    pub fn encode_batch_quantized(
        &self,
        batch: &Matrix,
        center: Option<&[f32]>,
        width: BitWidth,
    ) -> Result<QuantizedMatrix, ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "structured_encode_quantized",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        if let Some(means) = center {
            if means.len() != self.output_dim {
                return Err(ShapeError::new(
                    "structured_encode_quantized",
                    (1, means.len()),
                    (1, self.output_dim),
                ));
            }
        }
        let overlay_packed = if self.overlay_dims.is_empty() {
            None
        } else {
            Some(PackedRhs::pack(&self.overlay_cols))
        };
        let cols = self.output_dim;
        let m = self.overlay_dims.len();
        Ok(QuantizedMatrix::from_row_producer(
            batch.rows(),
            cols,
            width,
            |first_row, values| {
                let n = values.len() / cols;
                let mut scratch = vec![0.0f32; self.block_dim];
                for (i, row) in values.chunks_exact_mut(cols).enumerate() {
                    self.encode_structured_row(batch.row(first_row + i), row, &mut scratch);
                }
                if let Some(packed) = &overlay_packed {
                    let mut patch = vec![0.0f32; n * m];
                    batch
                        .matmul_rows_into(packed, first_row, &mut patch)
                        .expect("shapes validated before packing");
                    for (row, patch_row) in values.chunks_exact_mut(cols).zip(patch.chunks_exact(m))
                    {
                        for (j, &dim) in self.overlay_dims.iter().enumerate() {
                            row[dim] = half_angle_cosine(
                                patch_row[j],
                                self.phases[dim],
                                self.phase_sins[dim],
                            );
                        }
                    }
                }
                if let Some(means) = center {
                    for row in values.chunks_exact_mut(cols) {
                        for (v, &mu) in row.iter_mut().zip(means) {
                            *v -= mu;
                        }
                    }
                }
            },
        ))
    }
}

impl Encoder for StructuredRbfEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if features.len() != self.input_dim {
            return Err(ShapeError::new(
                "structured_encode",
                (1, features.len()),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = vec![0.0f32; self.output_dim];
        let mut scratch = vec![0.0f32; self.block_dim];
        self.encode_structured_row(features, &mut out, &mut scratch);
        for (j, &dim) in self.overlay_dims.iter().enumerate() {
            let p = dot(features, self.overlay_rows.row(j));
            out[dim] = half_angle_cosine(p, self.phases[dim], self.phase_sins[dim]);
        }
        Ok(out)
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "structured_encode",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = Matrix::zeros(batch.rows(), self.output_dim);
        if out.is_empty() {
            return Ok(out);
        }
        // Structured pass.  Small batches run serially — the pool's
        // fork/join cost exceeds the butterfly work — and larger ones fan
        // out in fixed shape-derived chunks (bit-identical at any thread
        // count).  The per-chunk scratch makes the FHT workspace
        // thread-private without a per-row allocation.
        if batch.rows() * self.output_dim < ENCODE_PAR_MIN_ELEMS {
            let mut scratch = vec![0.0f32; self.block_dim];
            for r in 0..batch.rows() {
                self.encode_structured_row(batch.row(r), out.row_mut(r), &mut scratch);
            }
        } else {
            let chunk_rows = encode_chunk_rows(self.output_dim);
            parallel::par_chunks_mut(
                out.as_mut_slice(),
                chunk_rows * self.output_dim,
                |chunk_index, chunk| {
                    let mut scratch = vec![0.0f32; self.block_dim];
                    let first = chunk_index * chunk_rows;
                    for (offset, row) in chunk.chunks_mut(self.output_dim).enumerate() {
                        self.encode_structured_row(batch.row(first + offset), row, &mut scratch);
                    }
                },
            );
        }
        // Overlay pass: one small dense GEMM over the evicted dims'
        // private base vectors, fused with the same epilogue, scattered
        // into the overlaid columns.
        if !self.overlay_dims.is_empty() {
            let patch = batch.matmul_map(&self.overlay_cols, |j, p| {
                let dim = self.overlay_dims[j];
                half_angle_cosine(p, self.phases[dim], self.phase_sins[dim])
            })?;
            for r in 0..batch.rows() {
                let patch_row = patch.row(r);
                let out_row = out.row_mut(r);
                for (j, &dim) in self.overlay_dims.iter().enumerate() {
                    out_row[dim] = patch_row[j];
                }
            }
        }
        Ok(out)
    }
}

impl RegenerativeEncoder for StructuredRbfEncoder {
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng) {
        let gaussian = Gaussian::new(0.0, self.base_std);
        let phase = Uniform::phase();
        let mut column = vec![0.0f32; self.input_dim];
        let mut evicted_any = false;
        for &dim in dims {
            if dim >= self.output_dim {
                continue;
            }
            // Same draw pattern as the dense encoder: n Gaussians for the
            // base vector, then one phase.
            gaussian.fill(rng, &mut column);
            let new_phase = phase.sample(rng);
            let j = self.overlay_index[dim];
            if j == NOT_OVERLAID {
                self.overlay_index[dim] = self.overlay_dims.len() as u32;
                self.overlay_dims.push(dim);
                self.overlay_rows
                    .push_row(&column)
                    .expect("overlay row width is input_dim by construction");
                evicted_any = true;
            } else {
                self.overlay_rows
                    .row_mut(j as usize)
                    .copy_from_slice(&column);
            }
            self.phases[dim] = new_phase;
            self.phase_sins[dim] = sin_det(new_phase);
            self.regenerated += 1;
        }
        if evicted_any || !dims.is_empty() {
            // The GEMM-side transpose is rebuilt once per regeneration
            // call, never on the encode hot path.
            self.overlay_cols = self.overlay_rows.transpose();
        }
        if evicted_any {
            // Freshly evicted dims drop out of the butterfly final stage
            // and the epilogue — pruning tightens as the overlay grows.
            self.rebuild_prune_state();
        }
    }

    fn regenerated_count(&self) -> u64 {
        self.regenerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> StructuredRbfEncoder {
        StructuredRbfEncoder::new(6, 200, RngSeed(42))
    }

    #[test]
    fn output_is_bounded_by_unit_interval() {
        let enc = encoder();
        let hv = enc.encode(&[0.9, -0.5, 0.1, 2.0, -1.5, 0.3]).unwrap();
        assert!(hv.iter().all(|h| (-1.0..=1.0).contains(h)));
    }

    #[test]
    fn encode_is_deterministic_and_seeded() {
        let enc = encoder();
        let a = enc.encode(&[0.1; 6]).unwrap();
        let b = enc.encode(&[0.1; 6]).unwrap();
        assert_eq!(a, b);
        let c = StructuredRbfEncoder::new(6, 200, RngSeed(43))
            .encode(&[0.1; 6])
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn batch_encode_matches_single_encode_exactly_without_overlay() {
        // The structured pass is the very same code for single and batch
        // encoding, so with no overlay the results are bit-identical.
        let enc = encoder();
        let rows = vec![
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            vec![-1.0, 0.0, 1.0, 0.5, -0.5, 0.25],
            vec![0.0; 6],
        ];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(encoded.row(r), enc.encode(row).unwrap().as_slice());
        }
    }

    #[test]
    fn batch_encode_matches_single_encode_with_overlay() {
        // The overlay runs through the GEMM in batch mode and plain dots in
        // single mode; FMA tiers may differ by ≤ 1 ulp per accumulation.
        let mut enc = encoder();
        let mut rng = SeededRng::new(RngSeed(5));
        enc.regenerate(&[0, 7, 100, 199], &mut rng);
        let rows = vec![
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            vec![-1.0, 0.0, 1.0, 0.5, -0.5, 0.25],
        ];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let single = enc.encode(row).unwrap();
            for (c, (&a, &b)) in encoded.row(r).iter().zip(single.iter()).enumerate() {
                assert!((a - b).abs() < 1e-5, "({r},{c}): batch {a} vs single {b}");
            }
        }
    }

    /// Probes every implicit base-row norm by encoding basis vectors
    /// through the raw block transforms (linearity: column `k` of the
    /// implicit matrix is the transform of `e_k`).
    fn implicit_row_norms(enc: &StructuredRbfEncoder) -> Vec<f64> {
        let n = enc.input_dim();
        let dim = enc.output_dim();
        let mut row_sq = vec![0.0f64; dim];
        let mut scratch = vec![0.0f32; enc.block_dim()];
        for k in 0..n {
            let mut e = vec![0.0f32; n];
            e[k] = 1.0;
            for (b, spec) in enc.blocks.iter().enumerate() {
                enc.transform_block(&e, b, &mut scratch);
                for (lane, &raw) in scratch[..spec.out_width].iter().enumerate() {
                    let dim_index = spec.out_start + lane;
                    let scaled = f64::from(raw) * f64::from(spec.scale);
                    row_sq[dim_index] += scaled * scaled;
                }
            }
        }
        row_sq.iter().map(|&sq| sq.sqrt()).collect()
    }

    #[test]
    fn projection_variance_tracks_the_dense_target() {
        // Full-pad mode (power-of-two input): every implicit row norm must
        // equal base_std·√d exactly (the construction is orthogonal), the
        // dense encoder's expected norm for d-dimensional draws.
        let enc = StructuredRbfEncoder::new(8, 64, RngSeed(3));
        assert_eq!(enc.block_dim(), 8);
        let expected = f64::from(enc.base_std) * 8f64.sqrt();
        for (i, &norm) in implicit_row_norms(&enc).iter().enumerate() {
            assert!(
                (norm - expected).abs() < 1e-4 * expected,
                "implicit row {i}: norm {norm} vs {expected}"
            );
        }
    }

    #[test]
    fn half_block_row_norms_track_the_dense_target() {
        // Half-block mode: every implicit row is supported on a window of
        // h features and scaled so its norm is base_std·√F — the dense
        // encoder's expected row norm over the *actual* feature count.
        let enc = encoder(); // F = 6 → d = 8, half-block h = 4
        assert_eq!(enc.block_dim(), 4);
        let expected = f64::from(enc.base_std) * 6f64.sqrt();
        for (i, &norm) in implicit_row_norms(&enc).iter().enumerate() {
            assert!(
                (norm - expected).abs() < 1e-4 * expected,
                "implicit row {i}: norm {norm} vs {expected}"
            );
        }
    }

    #[test]
    fn half_block_windows_alternate_and_cover_all_features() {
        let enc = encoder(); // F = 6, h = 4
        let mut covered = [false; 6];
        for (b, spec) in enc.blocks.iter().enumerate() {
            assert_eq!(spec.window_len, spec.transform_dim);
            let expect_start = if b % 2 == 0 {
                0
            } else {
                6 - spec.transform_dim
            };
            assert_eq!(spec.window_start, expect_start, "block {b}");
            covered[spec.window_start..spec.window_start + spec.window_len].fill(true);
        }
        assert!(
            covered.iter().all(|&c| c),
            "windows must cover every feature"
        );
    }

    #[test]
    fn nearby_inputs_encode_to_similar_hypervectors() {
        let enc = StructuredRbfEncoder::new(6, 2048, RngSeed(7));
        let a = enc.encode(&[0.5, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let b = enc.encode(&[0.51, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let c = enc.encode(&[-0.9, 0.9, -0.9, 0.9, -0.9, 0.9]).unwrap();
        let sim_ab = disthd_linalg::cosine_similarity(&a, &b);
        let sim_ac = disthd_linalg::cosine_similarity(&a, &c);
        assert!(sim_ab > sim_ac, "locality: {sim_ab} vs {sim_ac}");
        assert!(sim_ab > 0.9);
    }

    #[test]
    fn regeneration_changes_only_selected_dims_and_evicts_them() {
        let mut enc = encoder();
        let input = [0.3, -0.2, 0.7, 0.1, 0.9, -0.4];
        let before = enc.encode(&input).unwrap();
        let mut rng = SeededRng::new(RngSeed(99));
        enc.regenerate(&[3, 5, 11], &mut rng);
        assert_eq!(enc.overlay_len(), 3);
        assert_eq!(enc.overlay_dims(), &[3, 5, 11]);
        let after = enc.encode(&input).unwrap();
        for i in 0..enc.output_dim() {
            if [3, 5, 11].contains(&i) {
                assert_ne!(before[i], after[i], "dim {i} should change");
            } else {
                assert_eq!(before[i], after[i], "dim {i} should be stable");
            }
        }
        assert_eq!(enc.regenerated_count(), 3);
        // Regenerating an already-evicted dim resamples in place, without
        // growing the overlay.
        enc.regenerate(&[5], &mut rng);
        assert_eq!(enc.overlay_len(), 3);
        let again = enc.encode(&input).unwrap();
        assert_ne!(again[5], after[5]);
        assert_eq!(again[3], after[3]);
    }

    #[test]
    fn regeneration_ignores_out_of_range_dims() {
        let mut enc = encoder();
        let mut rng = SeededRng::new(RngSeed(1));
        enc.regenerate(&[9999], &mut rng);
        assert_eq!(enc.regenerated_count(), 0);
        assert_eq!(enc.overlay_len(), 0);
    }

    #[test]
    fn partial_reencode_matches_full_reencode() {
        let mut enc = encoder();
        let batch = Matrix::from_rows(&[
            vec![0.1, 0.9, 0.4, 0.3, 0.7, 0.2],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        ])
        .unwrap();
        let mut encoded = enc.encode_batch(&batch).unwrap();
        let mut rng = SeededRng::new(RngSeed(13));
        let dims = [2usize, 7, 30, 199];
        enc.regenerate(&dims, &mut rng);
        enc.reencode_dims(&batch, &mut encoded, &dims).unwrap();
        let full = enc.encode_batch(&batch).unwrap();
        for r in 0..encoded.rows() {
            for c in 0..encoded.cols() {
                assert!(
                    (encoded.get(r, c) - full.get(r, c)).abs() < 1e-4,
                    "({r},{c}): partial {} vs full {}",
                    encoded.get(r, c),
                    full.get(r, c)
                );
            }
        }
    }

    #[test]
    fn reencode_of_structured_dims_is_bit_identical_to_encode() {
        // Re-encoding a dim that was never evicted re-runs the very same
        // block transform, so the value must match encode_batch bit for bit.
        let enc = encoder();
        let batch = Matrix::from_rows(&[
            vec![0.2, -0.4, 0.6, 0.1, 0.0, 0.9],
            vec![0.8, 0.3, -0.2, 0.5, 0.4, -0.6],
        ])
        .unwrap();
        let reference = enc.encode_batch(&batch).unwrap();
        let mut encoded = reference.clone();
        // Scribble over a few columns, then ask for them back.
        let dims = [0usize, 9, 150, 199];
        for r in 0..encoded.rows() {
            for &d in &dims {
                encoded.set(r, d, f32::NAN);
            }
        }
        enc.reencode_dims(&batch, &mut encoded, &dims).unwrap();
        assert_eq!(encoded.as_slice(), reference.as_slice());
    }

    #[test]
    fn reencode_dims_is_bit_identical_under_pruning() {
        // With dims evicted, the prune plans drop their butterflies — but
        // reencode of *live* dims must still equal the full encode bit for
        // bit (live lanes see the identical operation sequence).
        let mut enc = StructuredRbfEncoder::new(6, 200, RngSeed(77));
        let mut rng = SeededRng::new(RngSeed(78));
        enc.regenerate(&[1, 2, 3, 40, 41, 120, 199], &mut rng);
        assert!(enc.prune_plans.iter().any(|p| p.is_some()));
        let batch = Matrix::from_rows(&[
            vec![0.3, -0.1, 0.8, 0.2, -0.7, 0.5],
            vec![0.0, 0.4, -0.4, 0.9, 0.1, -0.2],
        ])
        .unwrap();
        let reference = enc.encode_batch(&batch).unwrap();
        let mut encoded = reference.clone();
        let live_dims = [0usize, 10, 45, 130, 198];
        for r in 0..encoded.rows() {
            for &d in &live_dims {
                encoded.set(r, d, f32::NAN);
            }
        }
        enc.reencode_dims(&batch, &mut encoded, &live_dims).unwrap();
        assert_eq!(encoded.as_slice(), reference.as_slice());
    }

    #[test]
    fn pruning_toggle_is_bitwise_invisible_on_output() {
        // Pruning elides only both-dead butterflies and dead-lane
        // epilogues; the final encoded rows (overlay included) must be
        // bit-identical with it on or off.
        let mut enc = StructuredRbfEncoder::new(6, 300, RngSeed(31));
        let mut rng = SeededRng::new(RngSeed(32));
        let evict: Vec<usize> = (0..120).map(|i| (i * 7) % 300).collect();
        enc.regenerate(&evict, &mut rng);
        let batch = Matrix::from_fn(9, 6, |r, c| ((r * 3 + c) as f32).cos() * 0.6);
        let pruned = enc.encode_batch(&batch).unwrap();
        let single_pruned = enc.encode(batch.row(0)).unwrap();
        enc.set_final_stage_pruning(false);
        assert!(!enc.final_stage_pruning());
        let full = enc.encode_batch(&batch).unwrap();
        assert_eq!(pruned.as_slice(), full.as_slice());
        assert_eq!(single_pruned, enc.encode(batch.row(0)).unwrap());
    }

    #[test]
    fn cascading_haar_schedule_is_deterministic_and_differs() {
        let mut enc = encoder();
        let input = [0.4, -0.6, 0.2, 0.9, -0.3, 0.1];
        let ascending = enc.encode(&input).unwrap();
        enc.set_fht_schedule(FhtSchedule::CascadingHaar);
        assert_eq!(enc.fht_schedule(), FhtSchedule::CascadingHaar);
        let haar_a = enc.encode(&input).unwrap();
        let haar_b = enc.encode(&input).unwrap();
        assert_eq!(haar_a, haar_b, "schedule must be deterministic");
        assert_ne!(ascending, haar_a, "schedules reorder additions");
        // Same kernel, different rounding: values stay close.
        for (i, (&a, &h)) in ascending.iter().zip(haar_a.iter()).enumerate() {
            assert!((a - h).abs() < 1e-3, "dim {i}: {a} vs {h}");
        }
    }

    #[test]
    fn cascading_haar_batch_is_bit_identical_across_thread_counts() {
        let mut enc = StructuredRbfEncoder::new(6, 1030, RngSeed(21));
        enc.set_fht_schedule(FhtSchedule::CascadingHaar);
        let batch = Matrix::from_fn(19, 6, |r, c| ((r + 2 * c) as f32).sin() * 0.4 + 0.5);
        let serial =
            disthd_linalg::parallel::with_thread_count(1, || enc.encode_batch(&batch).unwrap());
        for threads in [2usize, 8] {
            let parallel = disthd_linalg::parallel::with_thread_count(threads, || {
                enc.encode_batch(&batch).unwrap()
            });
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{threads} threads");
        }
    }

    #[test]
    fn encode_batch_is_bit_identical_across_thread_counts() {
        let mut enc = StructuredRbfEncoder::new(6, 1030, RngSeed(21));
        let mut rng = SeededRng::new(RngSeed(22));
        enc.regenerate(&[1, 40, 700], &mut rng);
        let batch = Matrix::from_fn(19, 6, |r, c| ((r + 2 * c) as f32).sin() * 0.4 + 0.5);
        let serial =
            disthd_linalg::parallel::with_thread_count(1, || enc.encode_batch(&batch).unwrap());
        for threads in [2usize, 8] {
            let parallel = disthd_linalg::parallel::with_thread_count(threads, || {
                enc.encode_batch(&batch).unwrap()
            });
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{threads} threads");
        }
    }

    #[test]
    fn construction_modes_follow_the_input_shape() {
        // 6 features: d = 8 and 6 ≤ 0.75·8, so half-block mode with h = 4
        // and ⌈200 / 4⌉ = 50 blocks.
        let enc = encoder();
        assert_eq!(enc.block_dim(), 4);
        assert_eq!(enc.blocks.len(), 50);
        // Power-of-two inputs always use full-pad mode.
        let pow2 = StructuredRbfEncoder::new(16, 64, RngSeed(2));
        assert_eq!(pow2.block_dim(), 16);
        assert_eq!(pow2.blocks.len(), 4);
        // 7 features: 4·7 > 3·8 — the pad is under 25%, full-pad mode.
        let full = StructuredRbfEncoder::new(7, 64, RngSeed(2));
        assert_eq!(full.block_dim(), 8);
        assert_eq!(full.blocks.len(), 8);
        assert_eq!(full.blocks[0].window_len, 7);
    }

    #[test]
    fn ragged_last_block_shrinks_its_transform_and_signs() {
        // F = 96: d = 128, 96 ≤ 0.75·128 → half-block h = 64.  D = 200
        // gives 3 full blocks (192 dims) plus a ragged 8-dim tail, whose
        // transform shrinks to 8 points — so the sign budget is sized per
        // live block: 3·(3·64 + 8) = 600 instead of 3·4·64 = 768.
        let enc = StructuredRbfEncoder::new(96, 200, RngSeed(11));
        assert_eq!(enc.block_dim(), 64);
        assert_eq!(enc.blocks.len(), 4);
        let last = enc.blocks.last().unwrap();
        assert_eq!(last.transform_dim, 8);
        assert_eq!(last.out_width, 8);
        // Odd block parity: the ragged window reads the feature tail.
        assert_eq!(last.window_start, 96 - 8);
        assert_eq!(enc.sign_count(), 600);
        assert_eq!(
            StructuredRbfEncoder::plan_sign_count(96, 200, 64),
            Some(600)
        );
    }

    #[test]
    fn ragged_last_block_encode_parity() {
        // Single encode, batch encode and quantized encode must agree on
        // the ragged shape, and regeneration inside the ragged block must
        // behave like any other block.
        let mut enc = StructuredRbfEncoder::new(96, 200, RngSeed(12));
        let batch = Matrix::from_fn(7, 96, |r, c| ((r * 31 + c) as f32).sin() * 0.5);
        let encoded = enc.encode_batch(&batch).unwrap();
        for r in 0..batch.rows() {
            assert_eq!(
                encoded.row(r),
                enc.encode(batch.row(r)).unwrap().as_slice(),
                "row {r}"
            );
        }
        let quantized = enc
            .encode_batch_quantized(&batch, None, BitWidth::B8)
            .unwrap();
        let roundtrip = QuantizedMatrix::quantize(&encoded, BitWidth::B8);
        assert_eq!(quantized.as_words(), roundtrip.as_words());
        // Evict a ragged-tail dim (in [192, 200)) and a regular dim.
        let mut rng = SeededRng::new(RngSeed(13));
        enc.regenerate(&[5, 195], &mut rng);
        let mut after = enc.encode_batch(&batch).unwrap();
        for r in 0..batch.rows() {
            let single = enc.encode(batch.row(r)).unwrap();
            for (c, (&a, &b)) in after.row(r).iter().zip(single.iter()).enumerate() {
                if c == 5 || c == 195 {
                    // Overlaid dims run through the GEMM in batch mode and
                    // plain dots in single mode: ≤ 1 ulp of FMA slack.
                    assert!((a - b).abs() < 1e-5, "({r},{c}): {a} vs {b}");
                } else {
                    assert_eq!(a, b, "({r},{c}) after regeneration");
                }
            }
        }
        enc.reencode_dims(&batch, &mut after, &[193, 199]).unwrap();
        let full = enc.encode_batch(&batch).unwrap();
        assert_eq!(after.as_slice(), full.as_slice());
    }

    #[test]
    fn encode_rejects_wrong_arity() {
        assert!(encoder().encode(&[0.0; 5]).is_err());
        assert!(encoder().encode_batch(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn partial_reencode_validates_shapes() {
        let enc = encoder();
        let batch = Matrix::zeros(2, 6);
        let mut wrong = Matrix::zeros(2, 10);
        assert!(enc.reencode_dims(&batch, &mut wrong, &[0]).is_err());
        let bad_batch = Matrix::zeros(2, 3);
        let mut encoded = Matrix::zeros(2, 200);
        assert!(enc.reencode_dims(&bad_batch, &mut encoded, &[0]).is_err());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut enc = StructuredRbfEncoder::new(6, 100, RngSeed(17));
        let mut rng = SeededRng::new(RngSeed(18));
        enc.regenerate(&[4, 50], &mut rng);
        let rebuilt = StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            enc.block_dim(),
            &enc.packed_signs(),
            enc.phases().to_vec(),
            enc.overlay_dims().to_vec(),
            enc.overlay_rows().clone(),
        )
        .unwrap();
        let x = [0.3, 0.1, -0.2, 0.8, 0.5, -0.9];
        assert_eq!(enc.encode(&x).unwrap(), rebuilt.encode(&x).unwrap());
    }

    #[test]
    fn from_parts_accepts_both_construction_modes() {
        // For F = 6 both block_dim = 4 (half-block, the constructor's
        // choice) and block_dim = 8 (full-pad, the pre-half-block layout)
        // are valid plan parameters — old artifacts keep loading.
        assert_eq!(StructuredRbfEncoder::plan_sign_count(6, 100, 4), Some(300));
        assert_eq!(
            StructuredRbfEncoder::plan_sign_count(6, 100, 8),
            Some(3 * 13 * 8)
        );
        let full_pad = StructuredRbfEncoder::from_parts(
            6,
            100,
            0.5,
            8,
            &vec![u64::MAX; (3 * 13 * 8usize).div_ceil(64)],
            vec![0.25; 100],
            vec![],
            Matrix::zeros(0, 6),
        )
        .unwrap();
        assert_eq!(full_pad.block_dim(), 8);
        assert_eq!(full_pad.blocks.len(), 13);
        assert_eq!(full_pad.blocks[0].window_len, 6);
        // An ineligible half request (F = 7 pads to 8 with > 25% live) is
        // rejected.
        assert_eq!(StructuredRbfEncoder::plan_sign_count(7, 100, 4), None);
    }

    #[test]
    fn from_parts_validates_consistency() {
        let enc = StructuredRbfEncoder::new(6, 100, RngSeed(17));
        // Wrong block_dim.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            16,
            &enc.packed_signs(),
            enc.phases().to_vec(),
            vec![],
            Matrix::zeros(0, 6),
        )
        .is_err());
        // Short sign words.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            4,
            &enc.packed_signs()[..enc.packed_signs().len() - 1],
            enc.phases().to_vec(),
            vec![],
            Matrix::zeros(0, 6),
        )
        .is_err());
        // Overlay dim out of range.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            4,
            &enc.packed_signs(),
            enc.phases().to_vec(),
            vec![500],
            Matrix::zeros(1, 6),
        )
        .is_err());
        // Duplicate overlay dim.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            4,
            &enc.packed_signs(),
            enc.phases().to_vec(),
            vec![3, 3],
            Matrix::zeros(2, 6),
        )
        .is_err());
    }
}
