use super::{half_angle_cosine, Encoder, RegenerativeEncoder};
use crate::quantize::{BitWidth, QuantizedMatrix};
use disthd_linalg::{
    dot, fht_inplace, half_angle_row, parallel, sin_det, Gaussian, Matrix, PackedRhs, RngSeed,
    SeededRng, ShapeError, Uniform,
};
use std::collections::BTreeMap;

/// Minimum rows per parallel work unit of the structured batch encode.
/// Fixed (never derived from the worker count) so results are bit-identical
/// at any thread count, exactly like the GEMM's row chunking.
const ENCODE_ROW_CHUNK: usize = 8;

/// Minimum output elements per parallel work unit.  Narrow outputs scale
/// the row chunk up until each unit carries this much butterfly-plus-sine
/// arithmetic, so fork/join and per-chunk scratch setup stay amortized.
const ENCODE_CHUNK_MIN_ELEMS: usize = 1 << 14;

/// Below this many output elements the whole batch encodes serially: the
/// pool's fork/join cost dwarfs the per-element arithmetic (the same
/// reasoning as the GEMM's serial threshold, tuned for the heavier
/// per-element trigonometric epilogue).
const ENCODE_PAR_MIN_ELEMS: usize = 1 << 15;

/// Rows per parallel work unit, derived from the output width alone —
/// never the worker count — so the partition (and the output bits) are
/// identical at any thread count.
fn encode_chunk_rows(output_dim: usize) -> usize {
    let scale = ENCODE_CHUNK_MIN_ELEMS
        .div_ceil(ENCODE_ROW_CHUNK * output_dim.max(1))
        .max(1);
    ENCODE_ROW_CHUNK * scale
}

/// Sentinel in the dim → overlay-column map: "still on the structured
/// backbone".
const NOT_OVERLAID: u32 = u32::MAX;

/// Structured (SORF/Fastfood-style) drop-in for [`super::RbfEncoder`]:
/// the dense Gaussian base matrix is replaced by blocks of
/// `H·diag(s₃)·H·diag(s₂)·H·diag(s₁)` — three Walsh–Hadamard transforms
/// interleaved with random sign diagonals — cutting batch encode from
/// `O(F·D)` multiply-adds to `O(D log D)` butterflies per sample.
///
/// ## Construction
///
/// The input is zero-padded to `d = F.next_power_of_two()` and
/// `⌈D / d⌉` independent blocks are stacked, each with its own three
/// Rademacher sign vectors.  With the unnormalized Hadamard transform
/// (`H·Hᵀ = d·I`) the product `M = H·S₃·H·S₂·H·S₁` satisfies
/// `M·Mᵀ = d³·I`, so scaling by `base_std / d` gives every implicit base
/// vector the exact norm `base_std·√d` — the expected norm of the dense
/// encoder's `N(0, base_std²)^d` draws — and projections with the same
/// `base_std²·‖F‖²` variance as the dense encoder (the SORF approximation
/// of the same RBF kernel).  The projections then feed the identical fused
/// half-angle cosine epilogue, so downstream behaviour (bandwidth,
/// centering, quantization) is unchanged.
///
/// ## Regeneration: the dense overlay
///
/// DistHD's Algorithm 2 regenerates *individual* dimensions, but a
/// structured dimension has no private base vector to redraw — every output
/// of a block shares the same sign diagonals.  A regenerated dimension is
/// therefore **evicted** from the structured backbone into a small dense
/// overlay: it gets a fresh private Gaussian base vector (exactly a dense
/// [`super::RbfEncoder`] column), stored as one row of a patch matrix.
/// Encoding computes the structured pass for all `D` dimensions and then
/// overwrites the overlaid columns via the existing 4×16 GEMM
/// ([`Matrix::matmul_map`]).  `fit` / `partial_fit` / regeneration semantics
/// are therefore identical to the dense encoder's, and the overlay GEMM
/// costs `O(F·m)` per sample for `m` evicted dimensions — tiny relative to
/// the FHT pass while regeneration touches a minority of dimensions.
///
/// # Example
///
/// ```
/// use disthd_hd::encoder::{Encoder, RegenerativeEncoder, StructuredRbfEncoder};
/// use disthd_linalg::{RngSeed, SeededRng};
///
/// let mut encoder = StructuredRbfEncoder::new(4, 128, RngSeed(9));
/// let before = encoder.encode(&[0.3, 0.1, 0.8, 0.5])?;
/// let mut rng = SeededRng::new(RngSeed(10));
/// encoder.regenerate(&[0, 1, 2], &mut rng);
/// let after = encoder.encode(&[0.3, 0.1, 0.8, 0.5])?;
/// assert_ne!(before[0], after[0]);      // regenerated dims change
/// assert_eq!(before[3], after[3]);      // untouched dims are stable
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StructuredRbfEncoder {
    input_dim: usize,
    output_dim: usize,
    /// Standard deviation the implicit base vectors emulate
    /// (`bandwidth / √n`, same as the dense encoder).
    base_std: f32,
    /// Padded transform length `d = input_dim.next_power_of_two()`.
    block_dim: usize,
    /// Number of stacked blocks `⌈D / d⌉`.
    blocks: usize,
    /// Rademacher sign diagonals as `±1.0` (ready to multiply):
    /// `3 · blocks · block_dim` entries, laid out `[block][stage][lane]`.
    signs: Vec<f32>,
    /// Per-dimension phases `c_i ~ U[0, 2π)`.
    phases: Vec<f32>,
    /// Precomputed `sin(c_i)` (see `RbfEncoder::phase_sins`).
    phase_sins: Vec<f32>,
    /// Dim → overlay row index, [`NOT_OVERLAID`] while structured.
    overlay_index: Vec<u32>,
    /// Evicted dims in eviction order (row `j` of `overlay_rows` is the
    /// private base vector of `overlay_dims[j]`).
    overlay_dims: Vec<usize>,
    /// `m × n` overlay base vectors, one row per evicted dim.
    overlay_rows: Matrix,
    /// Cached `n × m` transpose of `overlay_rows` — the right-hand side of
    /// the overlay GEMM, rebuilt once per [`RegenerativeEncoder::regenerate`]
    /// call so the encode hot path never re-transposes.
    overlay_cols: Matrix,
    regenerated: u64,
}

impl StructuredRbfEncoder {
    /// Creates a structured encoder for `input_dim` features and
    /// `output_dim` hyperdimensions with the default bandwidth.
    pub fn new(input_dim: usize, output_dim: usize, seed: RngSeed) -> Self {
        Self::with_bandwidth(input_dim, output_dim, super::DEFAULT_BANDWIDTH, seed)
    }

    /// Creates a structured encoder with an explicit kernel bandwidth `γ`
    /// (see [`super::RbfEncoder::with_bandwidth`] for the scaling rationale;
    /// the structured construction targets the same projection variance).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth <= 0`, `input_dim == 0` or `output_dim == 0`.
    pub fn with_bandwidth(
        input_dim: usize,
        output_dim: usize,
        bandwidth: f32,
        seed: RngSeed,
    ) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(output_dim > 0, "output_dim must be positive");
        let base_std = bandwidth / (input_dim as f32).sqrt();
        let block_dim = input_dim.next_power_of_two();
        let blocks = output_dim.div_ceil(block_dim);
        let mut rng = SeededRng::derive_stream(seed, 0x50FF);
        let signs: Vec<f32> = (0..3 * blocks * block_dim)
            .map(|_| if rng.next_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        let phases = Uniform::phase().sample_vec(&mut rng, output_dim);
        let phase_sins = phases.iter().map(|&c| sin_det(c)).collect();
        Self {
            input_dim,
            output_dim,
            base_std,
            block_dim,
            blocks,
            signs,
            phases,
            phase_sins,
            overlay_index: vec![NOT_OVERLAID; output_dim],
            overlay_dims: Vec::new(),
            overlay_rows: Matrix::zeros(0, input_dim),
            overlay_cols: Matrix::zeros(input_dim, 0),
            regenerated: 0,
        }
    }

    /// Padded transform length `d` (the per-block FHT size).
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Standard deviation the implicit base vectors emulate (persistence).
    pub fn base_std(&self) -> f32 {
        self.base_std
    }

    /// Borrows the per-dimension phases (persistence).
    pub fn phases(&self) -> &[f32] {
        &self.phases
    }

    /// Evicted dimensions in overlay-row order (persistence).
    pub fn overlay_dims(&self) -> &[usize] {
        &self.overlay_dims
    }

    /// Borrows the `m × n` overlay base-vector rows (persistence).
    pub fn overlay_rows(&self) -> &Matrix {
        &self.overlay_rows
    }

    /// Total sign entries (`3 · blocks · block_dim`), derivable from the
    /// shape but exposed so readers can size their buffers.
    pub fn sign_count(&self) -> usize {
        self.signs.len()
    }

    /// Packs the sign diagonals into `u64` words, bit `i` set ⇔ sign `i` is
    /// `+1` (persistence: 64 signs per word instead of one f32 each).
    pub fn packed_signs(&self) -> Vec<u64> {
        let mut words = vec![0u64; self.signs.len().div_ceil(64)];
        for (i, &s) in self.signs.iter().enumerate() {
            if s > 0.0 {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    /// Reassembles an encoder from persisted parts.
    ///
    /// `packed_signs` is the [`StructuredRbfEncoder::packed_signs`] word
    /// vector; overlay rows carry one private base vector per entry of
    /// `overlay_dims`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the dimensions are inconsistent:
    /// `block_dim` not the padded input size, too few sign words, a phase
    /// count different from `output_dim`, an overlay shape mismatch, or an
    /// overlay dim out of range / repeated.
    // One parameter per persisted field of the DHD2 structured layout; a
    // builder would only re-spell the format.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        input_dim: usize,
        output_dim: usize,
        base_std: f32,
        block_dim: usize,
        packed_signs: &[u64],
        phases: Vec<f32>,
        overlay_dims: Vec<usize>,
        overlay_rows: Matrix,
    ) -> Result<Self, ShapeError> {
        if input_dim == 0
            || output_dim == 0
            || block_dim != input_dim.next_power_of_two()
            || phases.len() != output_dim
        {
            return Err(ShapeError::new(
                "structured_from_parts",
                (input_dim, output_dim),
                (block_dim, phases.len()),
            ));
        }
        let blocks = output_dim.div_ceil(block_dim);
        let sign_count = 3 * blocks * block_dim;
        if packed_signs.len() != sign_count.div_ceil(64) {
            return Err(ShapeError::new(
                "structured_from_parts",
                (sign_count, 0),
                (packed_signs.len(), 64),
            ));
        }
        let signs: Vec<f32> = (0..sign_count)
            .map(|i| {
                if (packed_signs[i / 64] >> (i % 64)) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        if overlay_rows.shape() != (overlay_dims.len(), input_dim) {
            return Err(ShapeError::new(
                "structured_from_parts",
                overlay_rows.shape(),
                (overlay_dims.len(), input_dim),
            ));
        }
        let mut overlay_index = vec![NOT_OVERLAID; output_dim];
        for (j, &d) in overlay_dims.iter().enumerate() {
            if d >= output_dim || overlay_index[d] != NOT_OVERLAID {
                return Err(ShapeError::new(
                    "structured_from_parts",
                    (d, j),
                    (output_dim, overlay_dims.len()),
                ));
            }
            overlay_index[d] = j as u32;
        }
        let phase_sins = phases.iter().map(|&c| sin_det(c)).collect();
        let overlay_cols = overlay_rows.transpose();
        Ok(Self {
            input_dim,
            output_dim,
            base_std,
            block_dim,
            blocks,
            signs,
            phases,
            phase_sins,
            overlay_index,
            overlay_dims,
            overlay_rows,
            overlay_cols,
            regenerated: 0,
        })
    }

    /// Number of dimensions currently evicted into the dense overlay.
    pub fn overlay_len(&self) -> usize {
        self.overlay_dims.len()
    }

    /// Scale applied to raw block-transform outputs (see the type docs).
    #[inline]
    fn projection_scale(&self) -> f32 {
        self.base_std / self.block_dim as f32
    }

    /// Raw block transform: `scratch ← H·(s₃ ⊙ H·(s₂ ⊙ H·(s₁ ⊙ x_pad)))`
    /// for block `b`, with the `s₁` multiply fused into the zero-padding
    /// copy.  No scale or nonlinearity — shared verbatim by the batch
    /// encode and the partial re-encode so both are bit-identical.
    fn transform_block(&self, features: &[f32], b: usize, scratch: &mut [f32]) {
        let d = self.block_dim;
        debug_assert_eq!(scratch.len(), d);
        let signs = &self.signs[b * 3 * d..(b + 1) * 3 * d];
        let (s1, rest) = signs.split_at(d);
        let (s2, s3) = rest.split_at(d);
        for ((slot, &f), &s) in scratch.iter_mut().zip(features.iter()).zip(s1.iter()) {
            *slot = f * s;
        }
        scratch[features.len()..].fill(0.0);
        fht_inplace(scratch);
        for (v, &s) in scratch.iter_mut().zip(s2.iter()) {
            *v *= s;
        }
        fht_inplace(scratch);
        for (v, &s) in scratch.iter_mut().zip(s3.iter()) {
            *v *= s;
        }
        fht_inplace(scratch);
    }

    /// Structured pass for one sample: every output dimension through the
    /// block transforms, scale and half-angle epilogue.  Overlay columns
    /// are written too (and overwritten by the caller's overlay pass) —
    /// skipping them would cost a branch per lane on the hot path.
    fn encode_structured_row(&self, features: &[f32], out: &mut [f32], scratch: &mut [f32]) {
        debug_assert_eq!(out.len(), self.output_dim);
        let d = self.block_dim;
        let scale = self.projection_scale();
        for b in 0..self.blocks {
            self.transform_block(features, b, scratch);
            let start = b * d;
            let width = (self.output_dim - start).min(d);
            // Copy the raw block outputs to their contiguous destination,
            // then run the vectorized half-angle store over the slice —
            // bit-identical to the scalar `half_angle_cosine` loop it
            // replaces (the row kernel's contract), at SIMD throughput.
            let slots = &mut out[start..start + width];
            slots.copy_from_slice(&scratch[..width]);
            half_angle_row(
                slots,
                scale,
                &self.phases[start..start + width],
                &self.phase_sins[start..start + width],
            );
        }
    }

    /// Re-encodes only the selected dimensions of an already-encoded batch
    /// (the partial update Algorithm 2 relies on — see
    /// [`super::RbfEncoder::reencode_dims`]).
    ///
    /// Overlaid dims recompute through their private dense base rows;
    /// still-structured dims re-run their block's transform (grouped per
    /// block so the FHT cost is paid once per block per sample), which is
    /// bit-identical to a full [`Encoder::encode_batch`].  Out-of-range
    /// dims are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()` or `encoded`
    /// has the wrong shape.
    pub fn reencode_dims(
        &self,
        batch: &Matrix,
        encoded: &mut Matrix,
        dims: &[usize],
    ) -> Result<(), ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "reencode_dims",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        if encoded.shape() != (batch.rows(), self.output_dim) {
            return Err(ShapeError::new(
                "reencode_dims",
                encoded.shape(),
                (batch.rows(), self.output_dim),
            ));
        }
        let mut structured_by_block: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &dim in dims {
            if dim >= self.output_dim {
                continue;
            }
            let j = self.overlay_index[dim];
            if j == NOT_OVERLAID {
                structured_by_block
                    .entry(dim / self.block_dim)
                    .or_default()
                    .push(dim);
            } else {
                let base = self.overlay_rows.row(j as usize);
                let phase = self.phases[dim];
                let phase_sin = self.phase_sins[dim];
                for r in 0..batch.rows() {
                    let p = dot(batch.row(r), base);
                    encoded.set(r, dim, half_angle_cosine(p, phase, phase_sin));
                }
            }
        }
        if !structured_by_block.is_empty() {
            let scale = self.projection_scale();
            let mut scratch = vec![0.0f32; self.block_dim];
            for (&b, block_dims) in &structured_by_block {
                for r in 0..batch.rows() {
                    self.transform_block(batch.row(r), b, &mut scratch);
                    for &dim in block_dims {
                        let value = half_angle_cosine(
                            scratch[dim - b * self.block_dim] * scale,
                            self.phases[dim],
                            self.phase_sins[dim],
                        );
                        encoded.set(r, dim, value);
                    }
                }
            }
        }
        Ok(())
    }

    /// Fused bit-sliced batch encode: FHT backbone, overlay patch,
    /// optional centering and quantization, written straight into packed
    /// words — no full-precision output matrix is ever materialized.
    ///
    /// Each stage reuses the exact kernel of the f32
    /// [`Encoder::encode_batch`] path (per-row block transforms plus
    /// [`disthd_linalg::half_angle_row`]; the overlay GEMM via
    /// [`Matrix::matmul_rows_into`] with the same scalar epilogue), so the
    /// result equals quantizing the centered f32 encode of the same batch
    /// **bit for bit**, at every kernel tier and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `batch.cols() != input_dim()` or `center`
    /// is not `output_dim()` long.
    pub fn encode_batch_quantized(
        &self,
        batch: &Matrix,
        center: Option<&[f32]>,
        width: BitWidth,
    ) -> Result<QuantizedMatrix, ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "structured_encode_quantized",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        if let Some(means) = center {
            if means.len() != self.output_dim {
                return Err(ShapeError::new(
                    "structured_encode_quantized",
                    (1, means.len()),
                    (1, self.output_dim),
                ));
            }
        }
        let overlay_packed = if self.overlay_dims.is_empty() {
            None
        } else {
            Some(PackedRhs::pack(&self.overlay_cols))
        };
        let cols = self.output_dim;
        let m = self.overlay_dims.len();
        Ok(QuantizedMatrix::from_row_producer(
            batch.rows(),
            cols,
            width,
            |first_row, values| {
                let n = values.len() / cols;
                let mut scratch = vec![0.0f32; self.block_dim];
                for (i, row) in values.chunks_exact_mut(cols).enumerate() {
                    self.encode_structured_row(batch.row(first_row + i), row, &mut scratch);
                }
                if let Some(packed) = &overlay_packed {
                    let mut patch = vec![0.0f32; n * m];
                    batch
                        .matmul_rows_into(packed, first_row, &mut patch)
                        .expect("shapes validated before packing");
                    for (row, patch_row) in values.chunks_exact_mut(cols).zip(patch.chunks_exact(m))
                    {
                        for (j, &dim) in self.overlay_dims.iter().enumerate() {
                            row[dim] = half_angle_cosine(
                                patch_row[j],
                                self.phases[dim],
                                self.phase_sins[dim],
                            );
                        }
                    }
                }
                if let Some(means) = center {
                    for row in values.chunks_exact_mut(cols) {
                        for (v, &mu) in row.iter_mut().zip(means) {
                            *v -= mu;
                        }
                    }
                }
            },
        ))
    }
}

impl Encoder for StructuredRbfEncoder {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>, ShapeError> {
        if features.len() != self.input_dim {
            return Err(ShapeError::new(
                "structured_encode",
                (1, features.len()),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = vec![0.0f32; self.output_dim];
        let mut scratch = vec![0.0f32; self.block_dim];
        self.encode_structured_row(features, &mut out, &mut scratch);
        for (j, &dim) in self.overlay_dims.iter().enumerate() {
            let p = dot(features, self.overlay_rows.row(j));
            out[dim] = half_angle_cosine(p, self.phases[dim], self.phase_sins[dim]);
        }
        Ok(out)
    }

    fn encode_batch(&self, batch: &Matrix) -> Result<Matrix, ShapeError> {
        if batch.cols() != self.input_dim {
            return Err(ShapeError::new(
                "structured_encode",
                batch.shape(),
                (self.input_dim, self.output_dim),
            ));
        }
        let mut out = Matrix::zeros(batch.rows(), self.output_dim);
        if out.is_empty() {
            return Ok(out);
        }
        // Structured pass.  Small batches run serially — the pool's
        // fork/join cost exceeds the butterfly work — and larger ones fan
        // out in fixed shape-derived chunks (bit-identical at any thread
        // count).  The per-chunk scratch makes the FHT workspace
        // thread-private without a per-row allocation.
        if batch.rows() * self.output_dim < ENCODE_PAR_MIN_ELEMS {
            let mut scratch = vec![0.0f32; self.block_dim];
            for r in 0..batch.rows() {
                self.encode_structured_row(batch.row(r), out.row_mut(r), &mut scratch);
            }
        } else {
            let chunk_rows = encode_chunk_rows(self.output_dim);
            parallel::par_chunks_mut(
                out.as_mut_slice(),
                chunk_rows * self.output_dim,
                |chunk_index, chunk| {
                    let mut scratch = vec![0.0f32; self.block_dim];
                    let first = chunk_index * chunk_rows;
                    for (offset, row) in chunk.chunks_mut(self.output_dim).enumerate() {
                        self.encode_structured_row(batch.row(first + offset), row, &mut scratch);
                    }
                },
            );
        }
        // Overlay pass: one small dense GEMM over the evicted dims'
        // private base vectors, fused with the same epilogue, scattered
        // into the overlaid columns.
        if !self.overlay_dims.is_empty() {
            let patch = batch.matmul_map(&self.overlay_cols, |j, p| {
                let dim = self.overlay_dims[j];
                half_angle_cosine(p, self.phases[dim], self.phase_sins[dim])
            })?;
            for r in 0..batch.rows() {
                let patch_row = patch.row(r);
                let out_row = out.row_mut(r);
                for (j, &dim) in self.overlay_dims.iter().enumerate() {
                    out_row[dim] = patch_row[j];
                }
            }
        }
        Ok(out)
    }
}

impl RegenerativeEncoder for StructuredRbfEncoder {
    fn regenerate(&mut self, dims: &[usize], rng: &mut SeededRng) {
        let gaussian = Gaussian::new(0.0, self.base_std);
        let phase = Uniform::phase();
        let mut column = vec![0.0f32; self.input_dim];
        let mut evicted_any = false;
        for &dim in dims {
            if dim >= self.output_dim {
                continue;
            }
            // Same draw pattern as the dense encoder: n Gaussians for the
            // base vector, then one phase.
            gaussian.fill(rng, &mut column);
            let new_phase = phase.sample(rng);
            let j = self.overlay_index[dim];
            if j == NOT_OVERLAID {
                self.overlay_index[dim] = self.overlay_dims.len() as u32;
                self.overlay_dims.push(dim);
                self.overlay_rows
                    .push_row(&column)
                    .expect("overlay row width is input_dim by construction");
                evicted_any = true;
            } else {
                self.overlay_rows
                    .row_mut(j as usize)
                    .copy_from_slice(&column);
            }
            self.phases[dim] = new_phase;
            self.phase_sins[dim] = sin_det(new_phase);
            self.regenerated += 1;
        }
        if evicted_any || !dims.is_empty() {
            // The GEMM-side transpose is rebuilt once per regeneration
            // call, never on the encode hot path.
            self.overlay_cols = self.overlay_rows.transpose();
        }
    }

    fn regenerated_count(&self) -> u64 {
        self.regenerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> StructuredRbfEncoder {
        StructuredRbfEncoder::new(6, 200, RngSeed(42))
    }

    #[test]
    fn output_is_bounded_by_unit_interval() {
        let enc = encoder();
        let hv = enc.encode(&[0.9, -0.5, 0.1, 2.0, -1.5, 0.3]).unwrap();
        assert!(hv.iter().all(|h| (-1.0..=1.0).contains(h)));
    }

    #[test]
    fn encode_is_deterministic_and_seeded() {
        let enc = encoder();
        let a = enc.encode(&[0.1; 6]).unwrap();
        let b = enc.encode(&[0.1; 6]).unwrap();
        assert_eq!(a, b);
        let c = StructuredRbfEncoder::new(6, 200, RngSeed(43))
            .encode(&[0.1; 6])
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn batch_encode_matches_single_encode_exactly_without_overlay() {
        // The structured pass is the very same code for single and batch
        // encoding, so with no overlay the results are bit-identical.
        let enc = encoder();
        let rows = vec![
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            vec![-1.0, 0.0, 1.0, 0.5, -0.5, 0.25],
            vec![0.0; 6],
        ];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(encoded.row(r), enc.encode(row).unwrap().as_slice());
        }
    }

    #[test]
    fn batch_encode_matches_single_encode_with_overlay() {
        // The overlay runs through the GEMM in batch mode and plain dots in
        // single mode; FMA tiers may differ by ≤ 1 ulp per accumulation.
        let mut enc = encoder();
        let mut rng = SeededRng::new(RngSeed(5));
        enc.regenerate(&[0, 7, 100, 199], &mut rng);
        let rows = vec![
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            vec![-1.0, 0.0, 1.0, 0.5, -0.5, 0.25],
        ];
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = enc.encode_batch(&batch).unwrap();
        for (r, row) in rows.iter().enumerate() {
            let single = enc.encode(row).unwrap();
            for (c, (&a, &b)) in encoded.row(r).iter().zip(single.iter()).enumerate() {
                assert!((a - b).abs() < 1e-5, "({r},{c}): batch {a} vs single {b}");
            }
        }
    }

    #[test]
    fn projection_variance_tracks_the_dense_target() {
        // Mean squared raw projection over many dims should approximate
        // base_std² · ‖x‖² — the dense encoder's projection variance.  The
        // projections are recovered through asin of the encoded value at
        // phase 0... instead, probe the implicit base matrix directly:
        // encode basis vectors and use linearity of the pre-nonlinearity
        // transform via two-point differences is overkill — check the
        // implicit row norms instead: the transform of a basis vector eₖ
        // yields column k of the implicit base matrix; accumulating squares
        // over k gives every implicit row's norm, which must equal
        // base_std·√d exactly (the construction is exactly orthogonal).
        let n = 8;
        let dim = 64;
        let enc = StructuredRbfEncoder::new(n, dim, RngSeed(3));
        let d = enc.block_dim();
        assert_eq!(d, 8);
        let mut row_sq = vec![0.0f64; dim];
        let mut scratch = vec![0.0f32; d];
        for k in 0..d {
            let mut e = vec![0.0f32; n];
            if k < n {
                e[k] = 1.0;
            }
            for b in 0..enc.blocks {
                enc.transform_block(&e, b, &mut scratch);
                for (j, &v) in scratch.iter().enumerate() {
                    let dim_index = b * d + j;
                    if dim_index < dim {
                        let scaled = f64::from(v) * f64::from(enc.projection_scale());
                        row_sq[dim_index] += scaled * scaled;
                    }
                }
            }
        }
        let expected = f64::from(enc.base_std) * (d as f64).sqrt();
        for (i, &sq) in row_sq.iter().enumerate() {
            let norm = sq.sqrt();
            assert!(
                (norm - expected).abs() < 1e-4 * expected,
                "implicit row {i}: norm {norm} vs {expected}"
            );
        }
    }

    #[test]
    fn nearby_inputs_encode_to_similar_hypervectors() {
        let enc = StructuredRbfEncoder::new(6, 2048, RngSeed(7));
        let a = enc.encode(&[0.5, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let b = enc.encode(&[0.51, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let c = enc.encode(&[-0.9, 0.9, -0.9, 0.9, -0.9, 0.9]).unwrap();
        let sim_ab = disthd_linalg::cosine_similarity(&a, &b);
        let sim_ac = disthd_linalg::cosine_similarity(&a, &c);
        assert!(sim_ab > sim_ac, "locality: {sim_ab} vs {sim_ac}");
        assert!(sim_ab > 0.9);
    }

    #[test]
    fn regeneration_changes_only_selected_dims_and_evicts_them() {
        let mut enc = encoder();
        let input = [0.3, -0.2, 0.7, 0.1, 0.9, -0.4];
        let before = enc.encode(&input).unwrap();
        let mut rng = SeededRng::new(RngSeed(99));
        enc.regenerate(&[3, 5, 11], &mut rng);
        assert_eq!(enc.overlay_len(), 3);
        assert_eq!(enc.overlay_dims(), &[3, 5, 11]);
        let after = enc.encode(&input).unwrap();
        for i in 0..enc.output_dim() {
            if [3, 5, 11].contains(&i) {
                assert_ne!(before[i], after[i], "dim {i} should change");
            } else {
                assert_eq!(before[i], after[i], "dim {i} should be stable");
            }
        }
        assert_eq!(enc.regenerated_count(), 3);
        // Regenerating an already-evicted dim resamples in place, without
        // growing the overlay.
        enc.regenerate(&[5], &mut rng);
        assert_eq!(enc.overlay_len(), 3);
        let again = enc.encode(&input).unwrap();
        assert_ne!(again[5], after[5]);
        assert_eq!(again[3], after[3]);
    }

    #[test]
    fn regeneration_ignores_out_of_range_dims() {
        let mut enc = encoder();
        let mut rng = SeededRng::new(RngSeed(1));
        enc.regenerate(&[9999], &mut rng);
        assert_eq!(enc.regenerated_count(), 0);
        assert_eq!(enc.overlay_len(), 0);
    }

    #[test]
    fn partial_reencode_matches_full_reencode() {
        let mut enc = encoder();
        let batch = Matrix::from_rows(&[
            vec![0.1, 0.9, 0.4, 0.3, 0.7, 0.2],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        ])
        .unwrap();
        let mut encoded = enc.encode_batch(&batch).unwrap();
        let mut rng = SeededRng::new(RngSeed(13));
        let dims = [2usize, 7, 30, 199];
        enc.regenerate(&dims, &mut rng);
        enc.reencode_dims(&batch, &mut encoded, &dims).unwrap();
        let full = enc.encode_batch(&batch).unwrap();
        for r in 0..encoded.rows() {
            for c in 0..encoded.cols() {
                assert!(
                    (encoded.get(r, c) - full.get(r, c)).abs() < 1e-4,
                    "({r},{c}): partial {} vs full {}",
                    encoded.get(r, c),
                    full.get(r, c)
                );
            }
        }
    }

    #[test]
    fn reencode_of_structured_dims_is_bit_identical_to_encode() {
        // Re-encoding a dim that was never evicted re-runs the very same
        // block transform, so the value must match encode_batch bit for bit.
        let enc = encoder();
        let batch = Matrix::from_rows(&[
            vec![0.2, -0.4, 0.6, 0.1, 0.0, 0.9],
            vec![0.8, 0.3, -0.2, 0.5, 0.4, -0.6],
        ])
        .unwrap();
        let reference = enc.encode_batch(&batch).unwrap();
        let mut encoded = reference.clone();
        // Scribble over a few columns, then ask for them back.
        let dims = [0usize, 9, 150, 199];
        for r in 0..encoded.rows() {
            for &d in &dims {
                encoded.set(r, d, f32::NAN);
            }
        }
        enc.reencode_dims(&batch, &mut encoded, &dims).unwrap();
        assert_eq!(encoded.as_slice(), reference.as_slice());
    }

    #[test]
    fn encode_batch_is_bit_identical_across_thread_counts() {
        let mut enc = StructuredRbfEncoder::new(6, 1030, RngSeed(21));
        let mut rng = SeededRng::new(RngSeed(22));
        enc.regenerate(&[1, 40, 700], &mut rng);
        let batch = Matrix::from_fn(19, 6, |r, c| ((r + 2 * c) as f32).sin() * 0.4 + 0.5);
        let serial =
            disthd_linalg::parallel::with_thread_count(1, || enc.encode_batch(&batch).unwrap());
        for threads in [2usize, 8] {
            let parallel = disthd_linalg::parallel::with_thread_count(threads, || {
                enc.encode_batch(&batch).unwrap()
            });
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{threads} threads");
        }
    }

    #[test]
    fn non_power_of_two_inputs_are_padded() {
        // 6 features pad to an 8-point transform; 200 dims need 25 blocks.
        let enc = encoder();
        assert_eq!(enc.block_dim(), 8);
        assert_eq!(enc.blocks, 25);
        // Power-of-two inputs pad to themselves.
        let pow2 = StructuredRbfEncoder::new(16, 64, RngSeed(2));
        assert_eq!(pow2.block_dim(), 16);
        assert_eq!(pow2.blocks, 4);
    }

    #[test]
    fn encode_rejects_wrong_arity() {
        assert!(encoder().encode(&[0.0; 5]).is_err());
        assert!(encoder().encode_batch(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn partial_reencode_validates_shapes() {
        let enc = encoder();
        let batch = Matrix::zeros(2, 6);
        let mut wrong = Matrix::zeros(2, 10);
        assert!(enc.reencode_dims(&batch, &mut wrong, &[0]).is_err());
        let bad_batch = Matrix::zeros(2, 3);
        let mut encoded = Matrix::zeros(2, 200);
        assert!(enc.reencode_dims(&bad_batch, &mut encoded, &[0]).is_err());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut enc = StructuredRbfEncoder::new(6, 100, RngSeed(17));
        let mut rng = SeededRng::new(RngSeed(18));
        enc.regenerate(&[4, 50], &mut rng);
        let rebuilt = StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            enc.block_dim(),
            &enc.packed_signs(),
            enc.phases().to_vec(),
            enc.overlay_dims().to_vec(),
            enc.overlay_rows().clone(),
        )
        .unwrap();
        let x = [0.3, 0.1, -0.2, 0.8, 0.5, -0.9];
        assert_eq!(enc.encode(&x).unwrap(), rebuilt.encode(&x).unwrap());
    }

    #[test]
    fn from_parts_validates_consistency() {
        let enc = StructuredRbfEncoder::new(6, 100, RngSeed(17));
        // Wrong block_dim.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            16,
            &enc.packed_signs(),
            enc.phases().to_vec(),
            vec![],
            Matrix::zeros(0, 6),
        )
        .is_err());
        // Short sign words.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            8,
            &enc.packed_signs()[..1],
            enc.phases().to_vec(),
            vec![],
            Matrix::zeros(0, 6),
        )
        .is_err());
        // Overlay dim out of range.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            8,
            &enc.packed_signs(),
            enc.phases().to_vec(),
            vec![500],
            Matrix::zeros(1, 6),
        )
        .is_err());
        // Duplicate overlay dim.
        assert!(StructuredRbfEncoder::from_parts(
            6,
            100,
            enc.base_std(),
            8,
            &enc.packed_signs(),
            enc.phases().to_vec(),
            vec![3, 3],
            Matrix::zeros(2, 6),
        )
        .is_err());
    }
}
