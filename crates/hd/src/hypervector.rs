use disthd_linalg::{cosine_similarity, dot, l2_norm, Gaussian, SeededRng, Uniform};

/// A dense real-valued hypervector.
///
/// Real hypervectors are what the RBF encoder produces and what DistHD's
/// class model accumulates.  The type is a thin newtype over `Vec<f32>` that
/// carries the HDC vocabulary (bundle, bind, similarity) — batch-level work
/// stays in [`disthd_linalg::Matrix`] for speed.
///
/// # Example
///
/// ```
/// use disthd_hd::Hypervector;
///
/// let a = Hypervector::from_vec(vec![1.0, 0.0, -1.0]);
/// let b = Hypervector::from_vec(vec![1.0, 1.0, 0.0]);
/// let bundled = a.bundled(&b);
/// assert_eq!(bundled.as_slice(), &[2.0, 1.0, -1.0]);
/// assert!(bundled.cosine(&a) > bundled.cosine(&Hypervector::zeros(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hypervector(Vec<f32>);

impl Hypervector {
    /// All-zero hypervector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self(vec![0.0; dim])
    }

    /// Wraps an existing buffer.
    pub fn from_vec(values: Vec<f32>) -> Self {
        Self(values)
    }

    /// Random hypervector with i.i.d. `N(0, 1)` components.
    ///
    /// In high dimension, two such draws are nearly orthogonal — the property
    /// HDC relies on for pattern separation (§III-A).
    pub fn random_gaussian(dim: usize, rng: &mut SeededRng) -> Self {
        Self(Gaussian::standard().sample_vec(rng, dim))
    }

    /// Random hypervector with i.i.d. components uniform in `[-1, 1]`.
    pub fn random_uniform(dim: usize, rng: &mut SeededRng) -> Self {
        Self(Uniform::new(-1.0, 1.0).sample_vec(rng, dim))
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Borrow the components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutably borrow the components.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Consumes the hypervector and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.0
    }

    /// Dot product with another hypervector.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &Hypervector) -> f32 {
        dot(&self.0, &other.0)
    }

    /// Cosine similarity `δ(self, other)` (eq. 1 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn cosine(&self, other: &Hypervector) -> f32 {
        cosine_similarity(&self.0, &other.0)
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        l2_norm(&self.0)
    }

    /// Element-wise sum (bundling, the HDC memory operation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn bundled(&self, other: &Hypervector) -> Hypervector {
        assert_eq!(self.dim(), other.dim(), "bundle: dimension mismatch");
        Self(self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect())
    }

    /// Element-wise product (binding, creates a near-orthogonal associate).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn bound(&self, other: &Hypervector) -> Hypervector {
        assert_eq!(self.dim(), other.dim(), "bind: dimension mismatch");
        Self(self.0.iter().zip(&other.0).map(|(a, b)| a * b).collect())
    }

    /// Cyclic rotation by `shift` positions (the HDC permutation op, used to
    /// encode sequence/position information).
    pub fn permuted(&self, shift: usize) -> Hypervector {
        if self.0.is_empty() {
            return self.clone();
        }
        let d = self.0.len();
        let s = shift % d;
        let mut out = Vec::with_capacity(d);
        out.extend_from_slice(&self.0[d - s..]);
        out.extend_from_slice(&self.0[..d - s]);
        Self(out)
    }

    /// Accumulates `alpha * other` into `self` (the adaptive-learning model
    /// update of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn accumulate(&mut self, alpha: f32, other: &Hypervector) {
        disthd_linalg::axpy(alpha, &other.0, &mut self.0);
    }
}

impl From<Vec<f32>> for Hypervector {
    fn from(v: Vec<f32>) -> Self {
        Self(v)
    }
}

impl AsRef<[f32]> for Hypervector {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

impl FromIterator<f32> for Hypervector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disthd_linalg::RngSeed;

    #[test]
    fn zeros_has_zero_norm() {
        assert_eq!(Hypervector::zeros(16).norm(), 0.0);
    }

    #[test]
    fn random_gaussian_vectors_are_nearly_orthogonal_in_high_dim() {
        let mut rng = SeededRng::new(RngSeed(1));
        let a = Hypervector::random_gaussian(4096, &mut rng);
        let b = Hypervector::random_gaussian(4096, &mut rng);
        assert!(a.cosine(&b).abs() < 0.08, "cosine was {}", a.cosine(&b));
    }

    #[test]
    fn bundle_preserves_membership_signal() {
        // δ(H1 + H2, H1) >> δ(H1 + H2, H3) — the memory property from §III-A.
        let mut rng = SeededRng::new(RngSeed(2));
        let h1 = Hypervector::random_gaussian(2048, &mut rng);
        let h2 = Hypervector::random_gaussian(2048, &mut rng);
        let h3 = Hypervector::random_gaussian(2048, &mut rng);
        let bundle = h1.bundled(&h2);
        assert!(bundle.cosine(&h1) > 0.5);
        assert!(bundle.cosine(&h3).abs() < 0.1);
    }

    #[test]
    fn binding_creates_near_orthogonal_vector() {
        let mut rng = SeededRng::new(RngSeed(3));
        let h1 = Hypervector::random_gaussian(4096, &mut rng);
        let h2 = Hypervector::random_gaussian(4096, &mut rng);
        let bound = h1.bound(&h2);
        assert!(bound.cosine(&h1).abs() < 0.1);
        assert!(bound.cosine(&h2).abs() < 0.1);
    }

    #[test]
    fn permutation_is_cyclic_and_invertible() {
        let h = Hypervector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let p = h.permuted(1);
        assert_eq!(p.as_slice(), &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(p.permuted(3).as_slice(), h.as_slice());
        assert_eq!(h.permuted(4).as_slice(), h.as_slice());
    }

    #[test]
    fn permutation_of_empty_is_noop() {
        let h = Hypervector::zeros(0);
        assert_eq!(h.permuted(5).dim(), 0);
    }

    #[test]
    fn accumulate_applies_scaled_update() {
        let mut h = Hypervector::from_vec(vec![1.0, 1.0]);
        let u = Hypervector::from_vec(vec![2.0, -2.0]);
        h.accumulate(0.5, &u);
        assert_eq!(h.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn from_iterator_collects() {
        let h: Hypervector = (0..3).map(|i| i as f32).collect();
        assert_eq!(h.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
