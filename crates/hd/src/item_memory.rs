//! Associative item memory — the classic HDC lookup structure \[20\].
//!
//! An item memory stores named hypervectors and answers nearest-neighbour
//! queries by similarity.  HDC systems use it for symbol tables (level/ID
//! stores), cleanup after noisy binding arithmetic, and few-shot "one
//! prototype per item" recognition.  It is the associative-memory substrate
//! the paper's related work accelerates in hardware.

use crate::similarity;
use disthd_linalg::{Matrix, ShapeError};

/// A lookup result: which item matched and how strongly.
#[derive(Debug, Clone, PartialEq)]
pub struct Recall {
    /// Index of the stored item (insertion order).
    pub index: usize,
    /// Name of the stored item.
    pub name: String,
    /// Cosine similarity of the query to the item.
    pub similarity: f32,
}

/// An associative memory of named hypervectors with cosine recall.
///
/// # Example
///
/// ```
/// use disthd_hd::ItemMemory;
/// use disthd_hd::Hypervector;
/// use disthd_linalg::{RngSeed, SeededRng};
///
/// let mut rng = SeededRng::new(RngSeed(1));
/// let mut memory = ItemMemory::new(512);
/// let apple = Hypervector::random_gaussian(512, &mut rng);
/// let pear = Hypervector::random_gaussian(512, &mut rng);
/// memory.store("apple", apple.as_slice())?;
/// memory.store("pear", pear.as_slice())?;
///
/// // A noisy version of `apple` still recalls "apple".
/// let mut noisy = apple.clone();
/// noisy.as_mut_slice()[0] += 5.0;
/// let recall = memory.recall(noisy.as_slice())?.expect("non-empty memory");
/// assert_eq!(recall.name, "apple");
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ItemMemory {
    items: Matrix,
    normalized: Matrix,
    names: Vec<String>,
    dim: usize,
}

impl ItemMemory {
    /// Creates an empty memory for `dim`-dimensional hypervectors.
    pub fn new(dim: usize) -> Self {
        Self {
            items: Matrix::zeros(0, dim),
            normalized: Matrix::zeros(0, dim),
            names: Vec::new(),
            dim,
        }
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Stores a named hypervector; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `hv.len() != dim()`.
    pub fn store(&mut self, name: &str, hv: &[f32]) -> Result<usize, ShapeError> {
        if hv.len() != self.dim {
            return Err(ShapeError::new("item_store", (1, hv.len()), (1, self.dim)));
        }
        self.items.push_row(hv)?;
        self.normalized.push_row(&disthd_linalg::normalize_l2(hv))?;
        self.names.push(name.to_string());
        Ok(self.names.len() - 1)
    }

    /// Name of item `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Stored hypervector of item `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn item(&self, index: usize) -> &[f32] {
        self.items.row(index)
    }

    /// Most similar stored item, or `None` if the memory is empty.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    pub fn recall(&self, query: &[f32]) -> Result<Option<Recall>, ShapeError> {
        Ok(self.recall_top(query, 1)?.into_iter().next())
    }

    /// The `k` most similar stored items, best first.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    pub fn recall_top(&self, query: &[f32], k: usize) -> Result<Vec<Recall>, ShapeError> {
        if self.is_empty() {
            if query.len() != self.dim {
                return Err(ShapeError::new(
                    "item_recall",
                    (1, query.len()),
                    (1, self.dim),
                ));
            }
            return Ok(Vec::new());
        }
        let sims =
            similarity::similarity_to_all(&disthd_linalg::normalize_l2(query), &self.normalized)?;
        let top = disthd_linalg::top_k_largest(&sims, k);
        Ok(top
            .into_iter()
            .map(|index| Recall {
                index,
                name: self.names[index].clone(),
                similarity: sims[index],
            })
            .collect())
    }

    /// Recall only if the best similarity reaches `threshold` — the HDC
    /// "cleanup" operation (returns `None` for unrecognized noise).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    pub fn cleanup(&self, query: &[f32], threshold: f32) -> Result<Option<Recall>, ShapeError> {
        Ok(self
            .recall(query)?
            .filter(|recall| recall.similarity >= threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hypervector;
    use disthd_linalg::{RngSeed, SeededRng};

    fn filled_memory() -> (ItemMemory, Vec<Hypervector>) {
        let mut rng = SeededRng::new(RngSeed(2));
        let mut memory = ItemMemory::new(1024);
        let items: Vec<Hypervector> = (0..5)
            .map(|_| Hypervector::random_gaussian(1024, &mut rng))
            .collect();
        for (i, hv) in items.iter().enumerate() {
            memory.store(&format!("item{i}"), hv.as_slice()).unwrap();
        }
        (memory, items)
    }

    #[test]
    fn exact_recall_returns_self() {
        let (memory, items) = filled_memory();
        for (i, hv) in items.iter().enumerate() {
            let recall = memory.recall(hv.as_slice()).unwrap().unwrap();
            assert_eq!(recall.index, i);
            assert!(recall.similarity > 0.99);
        }
    }

    #[test]
    fn noisy_recall_finds_the_right_item() {
        let (memory, items) = filled_memory();
        let mut rng = SeededRng::new(RngSeed(3));
        let noise = Hypervector::random_gaussian(1024, &mut rng);
        let noisy = items[2].bundled(&noise); // item + full-strength noise
        let recall = memory.recall(noisy.as_slice()).unwrap().unwrap();
        assert_eq!(recall.name, "item2");
    }

    #[test]
    fn recall_top_orders_by_similarity() {
        let (memory, items) = filled_memory();
        let top = memory.recall_top(items[0].as_slice(), 3).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].index, 0);
        assert!(top[0].similarity >= top[1].similarity);
        assert!(top[1].similarity >= top[2].similarity);
    }

    #[test]
    fn cleanup_rejects_pure_noise() {
        let (memory, _) = filled_memory();
        let mut rng = SeededRng::new(RngSeed(4));
        let noise = Hypervector::random_gaussian(1024, &mut rng);
        assert!(memory.cleanup(noise.as_slice(), 0.5).unwrap().is_none());
    }

    #[test]
    fn cleanup_accepts_real_items() {
        let (memory, items) = filled_memory();
        let recall = memory.cleanup(items[1].as_slice(), 0.5).unwrap();
        assert_eq!(recall.unwrap().name, "item1");
    }

    #[test]
    fn empty_memory_recalls_nothing() {
        let memory = ItemMemory::new(8);
        assert!(memory.recall(&[0.0; 8]).unwrap().is_none());
        assert!(memory.is_empty());
    }

    #[test]
    fn store_and_recall_check_dimensions() {
        let mut memory = ItemMemory::new(8);
        assert!(memory.store("bad", &[0.0; 4]).is_err());
        memory.store("ok", &[1.0; 8]).unwrap();
        assert!(memory.recall(&[0.0; 4]).is_err());
        assert_eq!(memory.name(0), "ok");
        assert_eq!(memory.item(0), &[1.0; 8]);
    }
}
