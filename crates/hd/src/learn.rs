//! Adaptive HDC learning (Algorithm 1 of the paper).
//!
//! This similarity-weighted perceptron update predates DistHD (it is the
//! training rule of OnlineHD-style learners and of the NeuralHD baseline),
//! so it lives in the substrate: every HDC model in the workspace shares it.
//!
//! For each encoded sample `H` with true label `l`: find the most similar
//! class `p`; if `p != l`, update
//!
//! ```text
//! C_p ← C_p − η · (1 − δ(H, C_p)) · H      (push away from the wrong class)
//! C_l ← C_l + η · (1 − δ(H, C_l)) · H      (pull toward the true class)
//! ```
//!
//! The `1 − δ` factor fights model saturation: samples the model already
//! represents well contribute almost nothing; genuinely new patterns
//! contribute with weight ≈ 1.
//!
//! Training starts from a [`bundle_init`] pass (every sample added to its
//! class with unit weight) before adaptive epochs.  Starting the perceptron
//! loop from an all-zero model can oscillate on strongly correlated data —
//! the first mispredictions inject anti-class components that the
//! scale-invariant cosine ranking never recovers from — whereas the bundled
//! prototypes give every class a stable positive similarity footing.

use crate::model::ClassModel;
use disthd_linalg::{Matrix, ShapeError};

/// Outcome of one adaptive-learning pass over a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// Samples seen.
    pub samples: usize,
    /// Samples that were mispredicted (and therefore caused an update).
    pub mistakes: usize,
}

impl EpochStats {
    /// Training accuracy of the pass.
    pub fn accuracy(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        1.0 - self.mistakes as f64 / self.samples as f64
    }
}

/// Runs one adaptive-learning epoch (Algorithm 1) over pre-encoded data.
///
/// `encoded` holds one hypervector per row; `labels[i]` is the true class of
/// row `i`; `learning_rate` is `η`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != model.dim()`.
///
/// # Panics
///
/// Panics if `labels.len() != encoded.rows()` or any label is out of range.
pub fn adaptive_epoch(
    model: &mut ClassModel,
    encoded: &Matrix,
    labels: &[usize],
    learning_rate: f32,
) -> Result<EpochStats, ShapeError> {
    assert_eq!(labels.len(), encoded.rows(), "labels/sample count mismatch");
    let mut mistakes = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let hv = encoded.row(i);
        assert!(label < model.class_count(), "label out of range");
        let sims = model.similarities(hv)?;
        let predicted = argmax(&sims);
        if predicted != label {
            mistakes += 1;
            let delta_wrong = sims[predicted];
            let delta_true = sims[label];
            model.accumulate(predicted, -(learning_rate * (1.0 - delta_wrong)), hv);
            model.accumulate(label, learning_rate * (1.0 - delta_true), hv);
        }
    }
    Ok(EpochStats {
        samples: encoded.rows(),
        mistakes,
    })
}

/// Single-pass bundling initialization: adds every sample into its class
/// with unit weight.  A common warm start before adaptive iterations.
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != model.dim()`.
///
/// # Panics
///
/// Panics if `labels.len() != encoded.rows()` or any label is out of range.
pub fn bundle_init(
    model: &mut ClassModel,
    encoded: &Matrix,
    labels: &[usize],
) -> Result<(), ShapeError> {
    assert_eq!(labels.len(), encoded.rows(), "labels/sample count mismatch");
    if encoded.cols() != model.dim() {
        return Err(ShapeError::new(
            "bundle_init",
            (encoded.rows(), encoded.cols()),
            (model.class_count(), model.dim()),
        ));
    }
    for (i, &label) in labels.iter().enumerate() {
        model.bundle_into(label, encoded.row(i));
    }
    Ok(())
}

fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    for i in 1..values.len() {
        if values[i] > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, RbfEncoder};
    use disthd_linalg::{RngSeed, SeededRng};

    /// Two well-separated 2-feature classes, encoded with an RBF encoder.
    fn toy_problem(dim: usize) -> (Matrix, Vec<usize>, RbfEncoder) {
        let encoder = RbfEncoder::new(2, dim, RngSeed(1));
        let mut rng = SeededRng::new(RngSeed(2));
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            let jitter = (rng.next_unit() - 0.5) * 0.1;
            if rng.next_bool(0.5) {
                rows.push(vec![0.2 + jitter, 0.8 - jitter]);
                labels.push(0);
            } else {
                rows.push(vec![0.8 + jitter, 0.2 - jitter]);
                labels.push(1);
            }
        }
        let batch = Matrix::from_rows(&rows).unwrap();
        let encoded = encoder.encode_batch(&batch).unwrap();
        (encoded, labels, encoder)
    }

    #[test]
    fn adaptive_learning_converges_on_separable_data() {
        let (encoded, labels, _) = toy_problem(512);
        let mut model = ClassModel::new(2, 512);
        bundle_init(&mut model, &encoded, &labels).unwrap();
        let mut last = EpochStats {
            samples: 0,
            mistakes: usize::MAX,
        };
        for _ in 0..10 {
            last = adaptive_epoch(&mut model, &encoded, &labels, 0.1).unwrap();
        }
        assert!(
            last.accuracy() > 0.95,
            "train accuracy {} too low",
            last.accuracy()
        );
    }

    #[test]
    fn adaptive_epochs_do_not_regress_from_bundled_start() {
        let (encoded, labels, _) = toy_problem(512);
        let mut model = ClassModel::new(2, 512);
        bundle_init(&mut model, &encoded, &labels).unwrap();
        let first = adaptive_epoch(&mut model, &encoded, &labels, 0.1).unwrap();
        let mut later = first;
        for _ in 0..5 {
            later = adaptive_epoch(&mut model, &encoded, &labels, 0.1).unwrap();
        }
        assert!(later.mistakes <= first.mistakes);
    }

    #[test]
    fn bundle_init_learns_separable_data_in_one_pass() {
        let (encoded, labels, _) = toy_problem(1024);
        let mut model = ClassModel::new(2, 1024);
        bundle_init(&mut model, &encoded, &labels).unwrap();
        let mut correct = 0;
        for (i, &label) in labels.iter().enumerate() {
            if model.predict(encoded.row(i)) == label {
                correct += 1;
            }
        }
        assert!(correct as f64 / labels.len() as f64 > 0.9);
    }

    #[test]
    fn epoch_stats_accuracy() {
        let s = EpochStats {
            samples: 10,
            mistakes: 2,
        };
        assert!((s.accuracy() - 0.8).abs() < 1e-9);
        let empty = EpochStats {
            samples: 0,
            mistakes: 0,
        };
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut model = ClassModel::new(2, 8);
        let encoded = Matrix::zeros(1, 4);
        assert!(adaptive_epoch(&mut model, &encoded, &[0], 0.1).is_err());
        assert!(bundle_init(&mut model, &encoded, &[0]).is_err());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let mut model = ClassModel::new(2, 4);
        let encoded = Matrix::zeros(1, 4);
        adaptive_epoch(&mut model, &encoded, &[7], 0.1).unwrap();
    }
}
