//! # disthd-hd
//!
//! Hyperdimensional-computing substrate for the DistHD reproduction.
//!
//! This crate provides everything §III-A of the paper assumes as background:
//!
//! * [`Hypervector`] — dense real hypervectors with bundling/binding/permutation,
//!   plus [`BipolarHypervector`] and bit-packed [`BinaryHypervector`] variants;
//! * [`encoder`] — the RBF nonlinear encoder `h_i = cos(B_i·F + c_i)·sin(B_i·F)`
//!   used by DistHD (§III-C), a plain linear projection, and a level–ID encoder,
//!   all behind the [`encoder::Encoder`] trait, with per-dimension
//!   **regeneration** support;
//! * [`ClassModel`] — the trained set of class hypervectors with normalized
//!   cosine-similarity search (eq. 1) and top-k queries;
//! * [`quantize`] — 1/2/4/8-bit model quantization for the Fig. 8 robustness
//!   study;
//! * [`noise`] — random bit-flip fault injection on stored model memory.
//!
//! ## Example
//!
//! ```
//! use disthd_hd::encoder::{Encoder, RbfEncoder};
//! use disthd_hd::ClassModel;
//! use disthd_linalg::{Matrix, RngSeed};
//!
//! // Encode two 4-feature samples into a 64-dimensional space.
//! let encoder = RbfEncoder::new(4, 64, RngSeed(1));
//! let batch = Matrix::from_rows(&[vec![0.1, 0.4, 0.2, 0.9], vec![0.8, 0.1, 0.3, 0.2]])?;
//! let encoded = encoder.encode_batch(&batch)?;
//!
//! // Bundle each into its own class and query.
//! let mut model = disthd_hd::ClassModel::new(2, 64);
//! model.bundle_into(0, encoded.row(0));
//! model.bundle_into(1, encoded.row(1));
//! assert_eq!(model.predict(encoded.row(0)), 0);
//! # Ok::<(), disthd_linalg::ShapeError>(())
//! ```

#![deny(missing_docs)]

mod bipolar;
mod bitpacked;
pub mod center;
pub mod encoder;
mod hypervector;
mod item_memory;
pub mod learn;
mod model;
pub mod noise;
mod ops;
pub mod quantize;
mod similarity;

pub use bipolar::BipolarHypervector;
pub use bitpacked::BinaryHypervector;
pub use hypervector::Hypervector;
pub use item_memory::{ItemMemory, Recall};
pub use model::{ClassModel, Prediction, TopK};
pub use ops::{bind, bundle, permute, weighted_bundle};
pub use similarity::{
    cosine_similarity_matrix, exact_cosine_to_all, hamming_distance, hamming_distance_batch,
    normalized_hamming_similarity, normalized_hamming_similarity_batch, packed_cosine_matrix,
    packed_predict_batch, packed_similarity_to_all, quantized_similarity_matrix,
    quantized_similarity_prepacked, quantized_similarity_to_all, similarity_to_all,
};

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared deterministic inputs for kernel-equivalence tests.
    use disthd_linalg::Matrix;

    /// Deterministic continuous values in `[-0.5, 0.5)` from a 64-bit LCG;
    /// pick a `cols` that is not a multiple of `64 / bits` so quantized
    /// rows start mid-word.
    pub(crate) fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }
}
