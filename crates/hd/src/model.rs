use crate::similarity;
use disthd_linalg::{Matrix, ShapeError};

/// The top-1 result of a similarity query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Index of the most similar class.
    pub class: usize,
    /// Similarity score of that class.
    pub score: f32,
}

/// The top-2 result of a similarity query — the unit of information DistHD's
/// dynamic encoder feeds on (§III-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Most similar class and its score.
    pub first: Prediction,
    /// Second most similar class and its score.
    pub second: Prediction,
}

impl TopK {
    /// Top-2 scan over a per-class score slice (one row of a batched
    /// similarity matrix).  Ties resolve to the lower class index, matching
    /// [`ClassModel::top2`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() < 2`.
    pub fn from_scores(scores: &[f32]) -> Self {
        assert!(scores.len() >= 2, "top2 requires at least two classes");
        let (first, second) = top2_of(scores);
        TopK { first, second }
    }
}

/// A set of class hypervectors — the trained HDC model ( C in Fig. 3).
///
/// Stores the raw accumulated class hypervectors plus a lazily refreshed
/// row-normalized copy so that cosine similarity (eq. 1) is a single dot
/// product per class at query time.
///
/// # Example
///
/// ```
/// use disthd_hd::ClassModel;
///
/// let mut model = ClassModel::new(2, 4);
/// model.bundle_into(0, &[1.0, 0.0, 0.0, 0.0]);
/// model.bundle_into(1, &[0.0, 1.0, 0.0, 0.0]);
/// assert_eq!(model.predict(&[0.9, 0.1, 0.0, 0.0]), 0);
/// let top2 = model.top2(&[0.9, 0.1, 0.0, 0.0])?;
/// assert_eq!((top2.first.class, top2.second.class), (0, 1));
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassModel {
    classes: Matrix,
    normalized: Matrix,
    /// `normalized` transposed (`D × k`), cached under the same dirty flag
    /// so the batched similarity GEMM never re-transposes a clean model.
    normalized_t: Matrix,
    normalized_dirty: bool,
}

impl ClassModel {
    /// Creates a model with `class_count` all-zero class hypervectors of
    /// dimension `dim`.
    pub fn new(class_count: usize, dim: usize) -> Self {
        Self {
            classes: Matrix::zeros(class_count, dim),
            normalized: Matrix::zeros(class_count, dim),
            normalized_t: Matrix::zeros(dim, class_count),
            normalized_dirty: false,
        }
    }

    /// Builds a model from an existing class matrix (one row per class).
    pub fn from_matrix(classes: Matrix) -> Self {
        let normalized = similarity::cosine_similarity_matrix(&classes);
        let normalized_t = normalized.transpose();
        Self {
            classes,
            normalized,
            normalized_t,
            normalized_dirty: false,
        }
    }

    /// Replaces the class matrix in place — the hot-swap entry point.
    ///
    /// A live server periodically receives a freshly retrained (or freshly
    /// dequantized) class memory; this swaps it in without rebuilding the
    /// model value, and the normalized caches refresh lazily on the next
    /// query, so readers never observe a half-normalized state.
    ///
    /// # Example
    ///
    /// ```
    /// use disthd_hd::ClassModel;
    /// use disthd_linalg::Matrix;
    ///
    /// let mut model = ClassModel::new(2, 2);
    /// model.bundle_into(0, &[1.0, 0.0]);
    /// model.bundle_into(1, &[0.0, 1.0]);
    /// // Retraining swapped the winning directions.
    /// let retrained = Matrix::from_rows(&[vec![0.0, 2.0], vec![2.0, 0.0]])?;
    /// model.set_classes(retrained);
    /// assert_eq!(model.predict(&[1.0, 0.0]), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `classes` does not match the model's `(class_count, dim)`
    /// shape — a swap may change weights, never topology.
    pub fn set_classes(&mut self, classes: Matrix) {
        assert_eq!(
            classes.shape(),
            self.classes.shape(),
            "hot-swap must preserve the (classes, dim) shape"
        );
        self.classes = classes;
        self.normalized_dirty = true;
    }

    /// Number of classes `k`.
    pub fn class_count(&self) -> usize {
        self.classes.rows()
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.classes.cols()
    }

    /// Borrows the raw (unnormalized) class matrix.
    pub fn classes(&self) -> &Matrix {
        &self.classes
    }

    /// Borrows class `c` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `c >= class_count()`.
    pub fn class(&self, c: usize) -> &[f32] {
        self.classes.row(c)
    }

    /// Adds `alpha * hv` into class `c` (Algorithm 1's adaptive update).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or `hv.len() != dim()`.
    pub fn accumulate(&mut self, c: usize, alpha: f32, hv: &[f32]) {
        disthd_linalg::axpy(alpha, hv, self.classes.row_mut(c));
        self.normalized_dirty = true;
    }

    /// Bundles `hv` into class `c` with unit weight (single-pass training).
    pub fn bundle_into(&mut self, c: usize, hv: &[f32]) {
        self.accumulate(c, 1.0, hv);
    }

    /// Zeroes dimension `d` in every class (performed when a dimension is
    /// dropped for regeneration: the model must relearn it from scratch).
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim()`.
    pub fn reset_dimension(&mut self, d: usize) {
        for c in 0..self.classes.rows() {
            self.classes.set(c, d, 0.0);
        }
        self.normalized_dirty = true;
    }

    /// Zeroes several dimensions at once.
    pub fn reset_dimensions(&mut self, dims: &[usize]) {
        for &d in dims {
            self.reset_dimension(d);
        }
    }

    /// Bundle-initializes *only* the selected dimensions from an encoded
    /// batch: `C[label_i][d] += encoded[i][d]` for every sample `i` and
    /// every `d` in `dims`.
    ///
    /// After dimension regeneration the fresh dimensions hold zeros and the
    /// mistake-driven adaptive updates would train them only glacially;
    /// this one-pass partial bundling gives them the same warm start the
    /// full model got from `bundle_init`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != encoded.rows()`, any label is out of
    /// range, `encoded.cols() != dim()`, or any dim index is out of range.
    pub fn bundle_dimensions(&mut self, encoded: &Matrix, labels: &[usize], dims: &[usize]) {
        assert_eq!(labels.len(), encoded.rows(), "labels/sample count mismatch");
        assert_eq!(encoded.cols(), self.dim(), "encoded width mismatch");
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < self.class_count(), "label out of range");
            let row = encoded.row(i);
            for &d in dims {
                let current = self.classes.get(label, d);
                self.classes.set(label, d, current + row[d]);
            }
        }
        self.normalized_dirty = true;
    }

    /// Refreshes the normalized row cache (and its transpose) if stale.
    fn refresh(&mut self) {
        if self.normalized_dirty {
            self.normalized = similarity::cosine_similarity_matrix(&self.classes);
            self.normalized_t = self.normalized.transpose();
            self.normalized_dirty = false;
        }
    }

    /// Similarity of `query` to every class (eq. 1, using normalized rows).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    pub fn similarities(&mut self, query: &[f32]) -> Result<Vec<f32>, ShapeError> {
        self.refresh();
        similarity::similarity_to_all(query, &self.normalized)
    }

    /// Similarity without mutable access; the caller must have called a
    /// query method since the last update (debug-asserted).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    pub fn similarities_cached(&self, query: &[f32]) -> Result<Vec<f32>, ShapeError> {
        debug_assert!(!self.normalized_dirty, "normalized cache is stale");
        similarity::similarity_to_all(query, &self.normalized)
    }

    /// Ensures the normalized cache is fresh (call once before a read-only
    /// batch of [`Self::similarities_cached`] queries, e.g. parallel
    /// inference).
    pub fn prepare_inference(&mut self) {
        self.refresh();
    }

    /// Borrows the row-normalized class matrix (`N` of eq. 1), refreshing
    /// it if stale.
    pub fn normalized_classes(&mut self) -> &Matrix {
        self.refresh();
        &self.normalized
    }

    /// Similarities of every encoded sample to every class in one batched
    /// GEMM: returns the `samples × classes` score matrix
    /// `encoded · Nᵀ`.
    ///
    /// This replaces per-sample [`Self::similarities`] matvecs on the hot
    /// paths (top-2 categorization, batch prediction): one cache-blocked,
    /// parallel product over the whole batch instead of `n` strided passes
    /// over the class matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `encoded.cols() != dim()`.
    pub fn similarity_matrix(&mut self, encoded: &Matrix) -> Result<Matrix, ShapeError> {
        self.refresh();
        if encoded.cols() != self.dim() {
            return Err(ShapeError::new(
                "similarity_matrix",
                encoded.shape(),
                self.normalized.shape(),
            ));
        }
        encoded.matmul(&self.normalized_t)
    }

    /// Predicted class for every row of `encoded`, via one batched GEMM and
    /// a row-wise argmax.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `encoded.cols() != dim()`.
    ///
    /// # Panics
    ///
    /// Panics if the model has no classes.
    pub fn predict_batch(&mut self, encoded: &Matrix) -> Result<Vec<usize>, ShapeError> {
        let sims = self.similarity_matrix(encoded)?;
        Ok(sims.iter_rows().map(|row| argmax(row).0).collect())
    }

    /// Index of the most similar class.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim()` or the model has no classes.
    pub fn predict(&mut self, query: &[f32]) -> usize {
        self.top1(query)
            .expect("query length matches model dim")
            .class
    }

    /// Most similar class with its score.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    ///
    /// # Panics
    ///
    /// Panics if the model has zero classes.
    pub fn top1(&mut self, query: &[f32]) -> Result<Prediction, ShapeError> {
        let sims = self.similarities(query)?;
        let (class, score) = argmax(&sims);
        Ok(Prediction { class, score })
    }

    /// Two most similar classes with scores (§III-B "Top-2 Labels").
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer than two classes.
    pub fn top2(&mut self, query: &[f32]) -> Result<TopK, ShapeError> {
        let sims = self.similarities(query)?;
        Ok(TopK::from_scores(&sims))
    }

    /// The `k` most similar classes, best first.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `query.len() != dim()`.
    pub fn top_k(&mut self, query: &[f32], k: usize) -> Result<Vec<Prediction>, ShapeError> {
        let sims = self.similarities(query)?;
        let idx = disthd_linalg::top_k_largest(&sims, k);
        Ok(idx
            .into_iter()
            .map(|class| Prediction {
                class,
                score: sims[class],
            })
            .collect())
    }
}

/// `(argmax, max)` of a non-empty slice.
fn argmax(values: &[f32]) -> (usize, f32) {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for i in 1..values.len() {
        if values[i] > values[best] {
            best = i;
        }
    }
    (best, values[best])
}

/// Top-2 entries of a slice with at least two elements, one pass.
fn top2_of(values: &[f32]) -> (Prediction, Prediction) {
    let (mut i1, mut i2) = if values[0] >= values[1] {
        (0, 1)
    } else {
        (1, 0)
    };
    for i in 2..values.len() {
        if values[i] > values[i1] {
            i2 = i1;
            i1 = i;
        } else if values[i] > values[i2] {
            i2 = i;
        }
    }
    (
        Prediction {
            class: i1,
            score: values[i1],
        },
        Prediction {
            class: i2,
            score: values[i2],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_model() -> ClassModel {
        let mut m = ClassModel::new(2, 4);
        m.bundle_into(0, &[1.0, 0.0, 0.0, 0.0]);
        m.bundle_into(1, &[0.0, 1.0, 0.0, 0.0]);
        m
    }

    #[test]
    fn predict_picks_most_similar() {
        let mut m = two_class_model();
        assert_eq!(m.predict(&[0.8, 0.2, 0.0, 0.0]), 0);
        assert_eq!(m.predict(&[0.2, 0.8, 0.0, 0.0]), 1);
    }

    #[test]
    fn top2_orders_by_score() {
        let mut m = ClassModel::new(3, 3);
        m.bundle_into(0, &[1.0, 0.0, 0.0]);
        m.bundle_into(1, &[0.7, 0.7, 0.0]);
        m.bundle_into(2, &[0.0, 0.0, 1.0]);
        let t = m.top2(&[1.0, 0.1, 0.0]).unwrap();
        assert_eq!(t.first.class, 0);
        assert_eq!(t.second.class, 1);
        assert!(t.first.score >= t.second.score);
    }

    #[test]
    fn top_k_returns_sorted_prefix() {
        let mut m = ClassModel::new(4, 2);
        m.bundle_into(0, &[1.0, 0.0]);
        m.bundle_into(1, &[0.9, 0.1]);
        m.bundle_into(2, &[0.0, 1.0]);
        m.bundle_into(3, &[-1.0, 0.0]);
        let top = m.top_k(&[1.0, 0.0], 3).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].class, 0);
        assert!(top[0].score >= top[1].score && top[1].score >= top[2].score);
    }

    #[test]
    fn set_classes_swaps_weights_and_invalidates_caches() {
        let mut m = two_class_model();
        m.prepare_inference();
        assert_eq!(m.predict(&[1.0, 0.0, 0.0, 0.0]), 0);
        let swapped =
            Matrix::from_rows(&[vec![0.0, 1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0]]).unwrap();
        m.set_classes(swapped);
        assert_eq!(m.predict(&[1.0, 0.0, 0.0, 0.0]), 1);
    }

    #[test]
    #[should_panic(expected = "hot-swap must preserve")]
    fn set_classes_rejects_shape_change() {
        let mut m = two_class_model();
        m.set_classes(Matrix::zeros(3, 4));
    }

    #[test]
    fn accumulate_moves_decision_boundary() {
        let mut m = two_class_model();
        // Strongly reinforce class 1 along the first axis: class 1 becomes
        // [5, 1, 0, 0], so a query pointing in exactly that direction must
        // now prefer class 1 over the pure-axis class 0.
        m.accumulate(1, 5.0, &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.predict(&[5.0, 1.0, 0.0, 0.0]), 1);
    }

    #[test]
    fn reset_dimension_erases_information() {
        let mut m = two_class_model();
        m.reset_dimension(0);
        assert_eq!(m.class(0), &[0.0, 0.0, 0.0, 0.0]);
        // Class 1 only used dim 1, unaffected.
        assert_eq!(m.class(1), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn reset_dimensions_resets_many() {
        let mut m = two_class_model();
        m.reset_dimensions(&[0, 1]);
        assert!(m.class(0).iter().all(|&v| v == 0.0));
        assert!(m.class(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn similarities_have_one_entry_per_class() {
        let mut m = two_class_model();
        let sims = m.similarities(&[0.5, 0.5, 0.0, 0.0]).unwrap();
        assert_eq!(sims.len(), 2);
    }

    #[test]
    fn similarity_rejects_bad_query_shape() {
        let mut m = two_class_model();
        assert!(m.similarities(&[1.0]).is_err());
    }

    #[test]
    fn from_matrix_round_trips() {
        let mat = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let mut m = ClassModel::from_matrix(mat);
        assert_eq!(m.class_count(), 2);
        assert_eq!(m.predict(&[1.0, 0.0]), 0);
    }

    #[test]
    fn cached_similarities_after_prepare() {
        let mut m = two_class_model();
        m.prepare_inference();
        let sims = m.similarities_cached(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(sims[0] > sims[1]);
    }

    #[test]
    fn similarity_matrix_matches_per_sample_queries() {
        let mut m = two_class_model();
        let encoded = Matrix::from_rows(&[
            vec![0.8, 0.2, 0.0, 0.0],
            vec![0.1, 0.9, 0.0, 0.0],
            vec![0.5, 0.5, 0.5, 0.5],
        ])
        .unwrap();
        let batched = m.similarity_matrix(&encoded).unwrap();
        assert_eq!(batched.shape(), (3, 2));
        for r in 0..3 {
            let single = m.similarities(encoded.row(r)).unwrap();
            for (c, &s) in single.iter().enumerate() {
                assert!(
                    (batched.get(r, c) - s).abs() < 1e-6,
                    "({r},{c}): {} vs {}",
                    batched.get(r, c),
                    s
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut m = two_class_model();
        let encoded = Matrix::from_rows(&[
            vec![0.8, 0.2, 0.0, 0.0],
            vec![0.1, 0.9, 0.0, 0.0],
            vec![-0.3, 0.1, 0.2, 0.2],
        ])
        .unwrap();
        let batch = m.predict_batch(&encoded).unwrap();
        for (r, &predicted) in batch.iter().enumerate() {
            assert_eq!(predicted, m.predict(encoded.row(r)), "row {r}");
        }
    }

    #[test]
    fn batched_shapes_are_checked() {
        let mut m = two_class_model();
        assert!(m.similarity_matrix(&Matrix::zeros(2, 3)).is_err());
        assert!(m.predict_batch(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn from_scores_ties_resolve_to_lower_index() {
        let t = TopK::from_scores(&[0.5, 0.5, 0.1]);
        assert_eq!((t.first.class, t.second.class), (0, 1));
    }

    #[test]
    fn top2_of_handles_descending_and_ascending() {
        let (a, b) = top2_of(&[3.0, 1.0, 2.0]);
        assert_eq!((a.class, b.class), (0, 2));
        let (a, b) = top2_of(&[1.0, 2.0, 3.0]);
        assert_eq!((a.class, b.class), (2, 1));
    }
}
