//! Random bit-flip fault injection (the Fig. 8 hardware-error model).
//!
//! The paper's robustness study flips a percentage of random bits in the
//! memory storing the model.  [`flip_random_bits`] applies exactly
//! `round(rate * payload_bits)` distinct flips to a [`QuantizedMatrix`];
//! [`flip_random_bits_f32`] does the same to raw `f32` buffers (used for the
//! unquantized-DNN ablation).

use crate::quantize::QuantizedMatrix;
use disthd_linalg::SeededRng;

/// Flips `round(rate * payload_bits)` distinct random bits of `model`.
///
/// Returns the number of bits flipped.  `rate` is clamped to `[0, 1]`.
///
/// # Example
///
/// ```
/// use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
/// use disthd_hd::noise::flip_random_bits;
/// use disthd_linalg::{Matrix, RngSeed, SeededRng};
///
/// let m = Matrix::from_fn(4, 32, |r, c| (r as f32) - (c as f32) / 16.0);
/// let mut q = QuantizedMatrix::quantize(&m, BitWidth::B8);
/// let mut rng = SeededRng::new(RngSeed(1));
/// let flipped = flip_random_bits(&mut q, 0.05, &mut rng);
/// assert_eq!(flipped, (0.05f64 * q.payload_bits() as f64).round() as usize);
/// ```
pub fn flip_random_bits(model: &mut QuantizedMatrix, rate: f64, rng: &mut SeededRng) -> usize {
    let total = model.payload_bits();
    let count = target_flip_count(total, rate);
    for idx in sample_distinct(total, count, rng) {
        model.flip_bit(idx);
    }
    count
}

/// Flips `round(rate * 32 * values.len())` distinct random bits across the
/// IEEE-754 representations of `values`.
///
/// Returns the number of bits flipped.  NaN/Inf produced by a fault are kept
/// as-is: that is what the hardware would feed the classifier.
pub fn flip_random_bits_f32(values: &mut [f32], rate: f64, rng: &mut SeededRng) -> usize {
    let total = values.len() * 32;
    let count = target_flip_count(total, rate);
    for idx in sample_distinct(total, count, rng) {
        let word = idx / 32;
        let bit = idx % 32;
        values[word] = f32::from_bits(values[word].to_bits() ^ (1 << bit));
    }
    count
}

/// Number of flips for a given payload size and rate.
fn target_flip_count(total_bits: usize, rate: f64) -> usize {
    ((total_bits as f64) * rate.clamp(0.0, 1.0)).round() as usize
}

/// Samples `count` distinct indices from `0..total` (Floyd's algorithm).
fn sample_distinct(total: usize, count: usize, rng: &mut SeededRng) -> Vec<usize> {
    use std::collections::HashSet;
    let count = count.min(total);
    if count == 0 {
        return Vec::new();
    }
    // Floyd's sampling: O(count) expected draws, no O(total) shuffle.
    let mut chosen: HashSet<usize> = HashSet::with_capacity(count);
    for j in total - count..total {
        let t = rng.next_index(j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::BitWidth;
    use disthd_linalg::{Matrix, RngSeed};

    #[test]
    fn flip_count_matches_rate() {
        let m = Matrix::from_fn(8, 100, |r, c| (r + c) as f32);
        let mut q = QuantizedMatrix::quantize(&m, BitWidth::B8);
        let mut rng = SeededRng::new(RngSeed(3));
        let flipped = flip_random_bits(&mut q, 0.10, &mut rng);
        assert_eq!(flipped, (0.10_f64 * (8.0 * 100.0 * 8.0)).round() as usize);
    }

    #[test]
    fn zero_rate_is_identity() {
        let m = Matrix::from_fn(4, 16, |r, c| (r * c) as f32);
        let q0 = QuantizedMatrix::quantize(&m, BitWidth::B4);
        let mut q1 = q0.clone();
        let mut rng = SeededRng::new(RngSeed(4));
        assert_eq!(flip_random_bits(&mut q1, 0.0, &mut rng), 0);
        assert_eq!(q0.dequantize().as_slice(), q1.dequantize().as_slice());
    }

    #[test]
    fn full_rate_flips_every_bit() {
        let m = Matrix::from_fn(2, 8, |_, _| 1.0);
        let mut q = QuantizedMatrix::quantize(&m, BitWidth::B1);
        let mut rng = SeededRng::new(RngSeed(5));
        let flipped = flip_random_bits(&mut q, 1.0, &mut rng);
        assert_eq!(flipped, 16);
        // 1-bit code 1 (positive) flipped everywhere -> all negative.
        assert!(q.dequantize().as_slice().iter().all(|&v| v < 0.0));
    }

    #[test]
    fn rate_above_one_is_clamped() {
        let m = Matrix::from_fn(1, 8, |_, _| 1.0);
        let mut q = QuantizedMatrix::quantize(&m, BitWidth::B1);
        let mut rng = SeededRng::new(RngSeed(6));
        assert_eq!(flip_random_bits(&mut q, 5.0, &mut rng), 8);
    }

    #[test]
    fn flips_are_distinct() {
        // Flipping the same bit twice would cancel; at rate 1.0 every value
        // must change, which can only happen if all flips are distinct.
        let m = Matrix::from_fn(4, 64, |_, _| 1.0);
        let q0 = QuantizedMatrix::quantize(&m, BitWidth::B1);
        let mut q1 = q0.clone();
        let mut rng = SeededRng::new(RngSeed(7));
        flip_random_bits(&mut q1, 1.0, &mut rng);
        let a = q0.dequantize();
        let b = q1.dequantize();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_ne!(x, y);
        }
    }

    #[test]
    fn f32_flips_touch_expected_count() {
        let mut values = vec![1.0f32; 100];
        let mut rng = SeededRng::new(RngSeed(8));
        let flipped = flip_random_bits_f32(&mut values, 0.01, &mut rng);
        assert_eq!(flipped, 32);
        assert!(values.iter().any(|&v| v != 1.0));
    }

    #[test]
    fn sample_distinct_covers_range_without_duplicates() {
        let mut rng = SeededRng::new(RngSeed(9));
        let mut s = sample_distinct(50, 50, &mut rng);
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
