//! Free-function HDC operations over real hypervectors.
//!
//! Method forms live on [`crate::Hypervector`]; these free functions are the
//! batch-friendly equivalents used by encoders and trainers, operating on
//! plain slices so callers can stay inside [`disthd_linalg::Matrix`] rows.

/// Element-wise sum of many hypervectors (bundling, the memory operation).
///
/// # Panics
///
/// Panics if `inputs` is empty or the dimensions differ.
pub fn bundle(inputs: &[&[f32]]) -> Vec<f32> {
    assert!(!inputs.is_empty(), "bundle of zero hypervectors");
    let dim = inputs[0].len();
    let mut out = vec![0.0; dim];
    for hv in inputs {
        assert_eq!(hv.len(), dim, "bundle: dimension mismatch");
        disthd_linalg::add_assign(&mut out, hv);
    }
    out
}

/// Weighted bundling `Σ w_i · H_i` — the saturation-aware accumulation of
/// Algorithm 1, where each sample is scaled by `1 - δ` before joining the
/// class hypervector.
///
/// # Panics
///
/// Panics if `inputs.len() != weights.len()`, if `inputs` is empty, or if
/// dimensions differ.
pub fn weighted_bundle(inputs: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "weighted_bundle: arity mismatch"
    );
    assert!(!inputs.is_empty(), "weighted_bundle of zero hypervectors");
    let dim = inputs[0].len();
    let mut out = vec![0.0; dim];
    for (hv, &w) in inputs.iter().zip(weights) {
        assert_eq!(hv.len(), dim, "weighted_bundle: dimension mismatch");
        disthd_linalg::axpy(w, hv, &mut out);
    }
    out
}

/// Element-wise product of two hypervectors (binding).
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn bind(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "bind: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Cyclic rotation by `shift` positions (permutation).
pub fn permute(v: &[f32], shift: usize) -> Vec<f32> {
    if v.is_empty() {
        return Vec::new();
    }
    let d = v.len();
    let s = shift % d;
    let mut out = Vec::with_capacity(d);
    out.extend_from_slice(&v[d - s..]);
    out.extend_from_slice(&v[..d - s]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_sums_elementwise() {
        let a = [1.0, 2.0];
        let b = [3.0, -1.0];
        assert_eq!(bundle(&[&a, &b]), vec![4.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "zero hypervectors")]
    fn bundle_of_nothing_panics() {
        bundle(&[]);
    }

    #[test]
    fn weighted_bundle_scales_each_input() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let out = weighted_bundle(&[&a, &b], &[0.25, 4.0]);
        assert_eq!(out, vec![0.25, 4.0]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn weighted_bundle_checks_arity() {
        weighted_bundle(&[&[1.0]], &[1.0, 2.0]);
    }

    #[test]
    fn bind_multiplies_elementwise() {
        assert_eq!(bind(&[2.0, 3.0], &[4.0, -1.0]), vec![8.0, -3.0]);
    }

    #[test]
    fn permute_rotates_right() {
        assert_eq!(permute(&[1.0, 2.0, 3.0], 1), vec![3.0, 1.0, 2.0]);
        assert_eq!(permute(&[1.0, 2.0, 3.0], 3), vec![1.0, 2.0, 3.0]);
        assert!(permute(&[], 2).is_empty());
    }
}
