//! Low-precision model quantization for the Fig. 8 robustness study.
//!
//! The paper stores DistHD models at 1, 2, 4 or 8 bits per dimension and
//! flips random bits in that memory.  [`QuantizedMatrix`] packs a row-major
//! `f32` matrix into a dense bitstream at a chosen [`BitWidth`] with one
//! symmetric scale per row, supports in-place bit faults (see
//! [`crate::noise`]), and dequantizes back for inference.

use disthd_linalg::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`QuantizedMatrix::dequantize`] calls.
///
/// The serving layer's zero-dequantize contract (no `f32` reconstruction on
/// deployment construct, hot-swap or predict) is enforced by a regression
/// test that snapshots this counter around the serving path; it has no
/// other purpose.  Monotonic, never reset.
static DEQUANTIZE_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of [`QuantizedMatrix::dequantize`] calls this process has made so
/// far — the observability hook behind the zero-dequantize serving tests.
pub fn dequantize_calls() -> u64 {
    DEQUANTIZE_CALLS.load(Ordering::Relaxed)
}

/// Supported quantization precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BitWidth {
    /// 1-bit sign quantization (bipolar deployment).
    B1,
    /// 2-bit symmetric signed.
    B2,
    /// 4-bit symmetric signed.
    B4,
    /// 8-bit symmetric signed (the DNN comparison precision).
    B8,
}

impl BitWidth {
    /// Number of bits per stored element.
    pub fn bits(self) -> usize {
        match self {
            BitWidth::B1 => 1,
            BitWidth::B2 => 2,
            BitWidth::B4 => 4,
            BitWidth::B8 => 8,
        }
    }

    /// Largest positive quantized magnitude (`2^(b-1) - 1`, or 1 for 1-bit).
    pub fn qmax(self) -> i32 {
        match self {
            BitWidth::B1 => 1,
            BitWidth::B2 => 1,
            BitWidth::B4 => 7,
            BitWidth::B8 => 127,
        }
    }

    /// All supported widths, smallest first (the Fig. 8 sweep order).
    pub fn all() -> [BitWidth; 4] {
        [BitWidth::B1, BitWidth::B2, BitWidth::B4, BitWidth::B8]
    }

    /// Parses a persisted bit count back to a width.
    pub fn from_bits(bits: usize) -> Option<BitWidth> {
        match bits {
            1 => Some(BitWidth::B1),
            2 => Some(BitWidth::B2),
            4 => Some(BitWidth::B4),
            8 => Some(BitWidth::B8),
            _ => None,
        }
    }
}

impl std::fmt::Display for BitWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} bit{}",
            self.bits(),
            if self.bits() == 1 { "" } else { "s" }
        )
    }
}

/// A matrix stored as a packed low-precision bitstream.
///
/// Quantization is symmetric per row: `scale_r = max|row_r| / qmax`, each
/// element stores `round(v / scale_r)` offset into an unsigned code of
/// [`BitWidth::bits`] bits.  1-bit is sign quantization with the row's mean
/// magnitude as the reconstruction level.
///
/// # Example
///
/// ```
/// use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
/// use disthd_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![0.5, -1.0, 0.25]])?;
/// let q = QuantizedMatrix::quantize(&m, BitWidth::B8);
/// let back = q.dequantize();
/// assert!((back.get(0, 1) - -1.0).abs() < 0.02);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    words: Vec<u64>,
    scales: Vec<f32>,
    width: BitWidth,
    rows: usize,
    cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes `m` at the given precision.
    pub fn quantize(m: &Matrix, width: BitWidth) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let bits = width.bits();
        let total_bits = rows * cols * bits;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        let mut scales = Vec::with_capacity(rows);
        let mut codes = vec![0u8; cols];

        for r in 0..rows {
            let row = m.row(r);
            let scale = row_scale(row, width);
            scales.push(scale);
            row_codes(row, scale, width, &mut codes);
            pack_codes_at(&mut words, r * cols * bits, bits, &codes);
        }

        Self {
            words,
            scales,
            width,
            rows,
            cols,
        }
    }

    /// Builds a quantized matrix **directly from produced rows** — the
    /// bit-sliced encode constructor: no full-precision matrix is ever
    /// materialized.
    ///
    /// `fill(first_row, values)` must overwrite every element of `values`
    /// with rows `first_row ..` of the logical matrix (`values.len()` is a
    /// multiple of `cols`); it runs once per chunk, possibly concurrently
    /// from pool workers on thread-private scratch.  Each chunk's values
    /// are scaled, converted to codes through the shared
    /// [`disthd_linalg::sign_codes`] / [`disthd_linalg::symmetric_codes`]
    /// kernels and bit-packed in place, so the result is **bit-identical
    /// to [`QuantizedMatrix::quantize`] of the same rows** provided `fill`
    /// computes each row independently of the chunk partition (true of
    /// every encoder: per-element GEMM chains and per-row FHTs do not
    /// cross rows).
    ///
    /// Chunks are sized so every chunk starts on a packed-word boundary
    /// (rows per chunk is a multiple of `64 / gcd(cols·bits, 64)`), fixed
    /// by the shape alone — never the worker count — so output is
    /// bit-identical at any thread count; small products skip the pool.
    pub fn from_row_producer<F>(rows: usize, cols: usize, width: BitWidth, fill: F) -> Self
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let bits = width.bits();
        let row_bits = cols * bits;
        let mut words = vec![0u64; (rows * row_bits).div_ceil(64)];
        // Empty rows scale to 1.0 in `row_scale`, matching `quantize`.
        let mut scales = vec![if cols == 0 { 1.0f32 } else { 0.0 }; rows];
        if rows > 0 && cols > 0 {
            let chunk_rows = aligned_chunk_rows(row_bits);
            // chunk_rows · row_bits ≡ 0 (mod 64): exact words per chunk.
            let chunk_words = chunk_rows * row_bits / 64;
            let produce = |index: usize, chunk_words: &mut [u64], chunk_scales: &mut [f32]| {
                let first_row = index * chunk_rows;
                let n = chunk_scales.len();
                with_encode_scratch(n * cols, cols, |values, codes| {
                    fill(first_row, values);
                    for (i, (row, scale)) in values
                        .chunks_exact_mut(cols)
                        .zip(chunk_scales.iter_mut())
                        .enumerate()
                    {
                        *scale = row_scale(row, width);
                        row_codes(row, *scale, width, codes);
                        pack_codes_at(chunk_words, i * row_bits, bits, codes);
                    }
                });
            };
            // Below ~32k elements the fork/join cost dwarfs the per-chunk
            // arithmetic; the serial loop walks the identical partition.
            if rows * cols < 1 << 15 {
                for index in 0..rows.div_ceil(chunk_rows) {
                    let r1 = ((index + 1) * chunk_rows).min(rows);
                    let w1 = ((index + 1) * chunk_words).min(words.len());
                    produce(
                        index,
                        &mut words[index * chunk_words..w1],
                        &mut scales[index * chunk_rows..r1],
                    );
                }
            } else {
                disthd_linalg::parallel::par_chunks_pair_mut(
                    &mut words,
                    chunk_words,
                    &mut scales,
                    chunk_rows,
                    produce,
                );
            }
        }
        Self {
            words,
            scales,
            width,
            rows,
            cols,
        }
    }

    /// Reconstructs the full-precision matrix.
    ///
    /// The serving hot path never calls this (see [`dequantize_calls`]);
    /// it remains the entry point for offline analysis, tests and the
    /// robustness studies that inspect reconstructed weights.
    pub fn dequantize(&self) -> Matrix {
        DEQUANTIZE_CALLS.fetch_add(1, Ordering::Relaxed);
        let bits = self.width.bits();
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let code = read_code(&self.words, (r * self.cols + c) * bits, bits);
            decode_value(code, self.scales[r], self.width)
        })
    }

    /// Total number of stored payload bits (`rows * cols * bits`) — the
    /// memory the fault model acts on.
    pub fn payload_bits(&self) -> usize {
        self.rows * self.cols * self.width.bits()
    }

    /// Flips the payload bit at `bit_index`.
    ///
    /// # Panics
    ///
    /// Panics if `bit_index >= payload_bits()`.
    pub fn flip_bit(&mut self, bit_index: usize) {
        assert!(bit_index < self.payload_bits(), "bit index out of bounds");
        self.words[bit_index / 64] ^= 1 << (bit_index % 64);
    }

    /// Storage precision.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Borrows the packed payload words (for persistence).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Borrows the per-row scales (for persistence).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reassembles a quantized matrix from its persisted parts.
    ///
    /// # Errors
    ///
    /// Returns [`disthd_linalg::ShapeError`] if the word count or scale
    /// count disagrees with `rows x cols` at the given width.
    pub fn from_parts(
        words: Vec<u64>,
        scales: Vec<f32>,
        width: BitWidth,
        rows: usize,
        cols: usize,
    ) -> Result<Self, disthd_linalg::ShapeError> {
        let expected_words = (rows * cols * width.bits()).div_ceil(64);
        if words.len() != expected_words || scales.len() != rows {
            return Err(disthd_linalg::ShapeError::new(
                "quantized_from_parts",
                (rows, cols),
                (words.len(), scales.len()),
            ));
        }
        Ok(Self {
            words,
            scales,
            width,
            rows,
            cols,
        })
    }

    /// `(rows, cols)` of the logical matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Calls `f(col, value)` for `len` elements of row `r` starting at
    /// column `col0`, with each element's *scale-free* signed integer
    /// value (`clamp(code − qmax)`, or `±1` for 1-bit), streamed straight
    /// off the packed words.
    ///
    /// This is the zero-dequantize read primitive: one word load yields up
    /// to 64 values, no `f32` matrix is materialized, and faulted
    /// out-of-range codes saturate exactly like [`QuantizedMatrix::dequantize`].
    #[inline]
    fn for_each_row_value_range<F: FnMut(usize, i32)>(
        &self,
        r: usize,
        col0: usize,
        len: usize,
        mut f: F,
    ) {
        assert!(r < self.rows, "row index out of bounds");
        assert!(col0 + len <= self.cols, "column range out of bounds");
        let bits = self.width.bits();
        let mask: u64 = (1u64 << bits) - 1;
        let qmax = self.width.qmax() as i64;
        let one_bit = self.width == BitWidth::B1;
        let mut bit = (r * self.cols + col0) * bits;
        let mut c = col0;
        let end = col0 + len;
        while c < end {
            let offset = bit % 64;
            let mut w = self.words[bit / 64] >> offset;
            // Codes are `bits`-aligned and 64 % bits == 0, so no code ever
            // spans two words: drain whole lanes from this word.
            let lanes = ((64 - offset) / bits).min(end - c);
            for _ in 0..lanes {
                let code = w & mask;
                let value = if one_bit {
                    if code == 1 {
                        1
                    } else {
                        -1
                    }
                } else {
                    ((code as i64) - qmax).clamp(-qmax, qmax) as i32
                };
                f(c, value);
                w >>= bits;
                c += 1;
            }
            bit += lanes * bits;
        }
    }

    /// Calls `f(col, value)` for every element of row `r` (see
    /// [`QuantizedMatrix::for_each_row_value_range`]).
    #[inline]
    fn for_each_row_value<F: FnMut(usize, i32)>(&self, r: usize, f: F) {
        self.for_each_row_value_range(r, 0, self.cols, f);
    }

    /// Unpacks `out.len()` scale-free integer values of row `r` starting
    /// at column `col0` into an `f32` scratch segment.
    ///
    /// This is how the batched similarity kernel amortizes bit-unpacking:
    /// one cache-resident segment is decoded once and then dotted against
    /// a whole chunk of queries with vectorizable fused multiply-adds,
    /// while the class memory itself still streams at its packed width.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the row or `r` is out of bounds.
    pub fn unpack_row_segment(&self, r: usize, col0: usize, out: &mut [f32]) {
        let base = col0;
        self.for_each_row_value_range(r, col0, out.len(), |c, v| out[c - base] = v as f32);
    }

    /// Dot product of an `f32` query against the integer codes of row `r`
    /// (scale **not** applied), accumulated in one ascending chain in the
    /// GEMM micro-kernel's per-element order
    /// ([`disthd_linalg::dot_gemm_order_from`]) — so a single query scores
    /// **bit-identically** to the same query inside any batched
    /// [`crate::quantized_similarity_matrix`] call, at any thread count.
    ///
    /// This is the single-query serving path: together with
    /// [`QuantizedMatrix::code_inv_norms_into`] it ranks classes exactly
    /// like dequantize-then-cosine — the per-row scale cancels between the
    /// numerator and the norm — while the class memory stays at its packed
    /// width (codes decode through a 1 KiB cache-resident segment).
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != cols` or `r` is out of bounds.
    pub fn row_dot_f32(&self, r: usize, query: &[f32]) -> f32 {
        assert_eq!(
            query.len(),
            self.cols,
            "row_dot_f32: query length must equal the column count"
        );
        let mut buf = [0.0f32; UNPACK_SEGMENT];
        let mut acc = 0.0f32;
        let mut col0 = 0;
        while col0 < self.cols {
            let len = (self.cols - col0).min(UNPACK_SEGMENT);
            self.unpack_row_segment(r, col0, &mut buf[..len]);
            acc = disthd_linalg::dot_gemm_order_from(acc, &buf[..len], &query[col0..col0 + len]);
            col0 += len;
        }
        acc
    }

    /// Unpacks every code into `panel` as the right-hand GEMM operand
    /// `codesᵀ` (logical column `l` of the panel = integer codes of row
    /// `l`, saturated exactly like [`QuantizedMatrix::dequantize`] but
    /// scale-free).
    ///
    /// This is how the batched similarity path gets GEMM-grade throughput
    /// without an f32 class *snapshot*: the packed words remain the single
    /// source of truth (faults and hot-swaps mutate them, and this repack
    /// rereads them), while the panel is a derived, in-place-refreshed
    /// operand that lets the scoring GEMM run the full 4×16 register-tiled
    /// micro-kernel.  Refreshing overwrites every logical slot, so a panel
    /// can be reused across swaps without reallocation; padded lanes stay
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `panel` was not created as `PackedRhs::new(cols, rows)`.
    pub fn pack_codes_into(&self, panel: &mut disthd_linalg::PackedRhs) {
        assert_eq!(
            (panel.inner(), panel.cols()),
            (self.cols, self.rows),
            "pack_codes_into: panel shape must be (cols, rows)"
        );
        for l in 0..self.rows {
            let mut slots = panel.column_slots(l);
            self.for_each_row_value(l, |_, v| {
                *slots.next().expect("panel inner equals column count") = v as f32;
            });
        }
    }

    /// Fills `out` with one reciprocal L2 norm of the integer codes per
    /// row (`1 / √Σ value²`, or `0.0` for an all-zero row, which ranks
    /// untrained classes below any class with signal — matching
    /// `cosine_similarity_matrix`'s zero-row convention).
    ///
    /// The sum of squares is computed exactly in integer arithmetic.
    /// Reuses `out`'s allocation; after the first call on a model of `k`
    /// classes, refreshing norms (hot-swap, fault injection) allocates
    /// nothing.
    pub fn code_inv_norms_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.rows);
        for r in 0..self.rows {
            let mut sum_squares: u64 = 0;
            self.for_each_row_value(r, |_, v| sum_squares += (v as i64 * v as i64) as u64);
            out.push(if sum_squares == 0 {
                0.0
            } else {
                1.0 / (sum_squares as f32).sqrt()
            });
        }
    }

    /// Widening integer dot product of row `ra` against row `rb` of
    /// `other`: every code pair is decoded to its signed value (i8-range
    /// for 8-bit, i4-range for 4-bit, …), multiplied in `i32` and
    /// accumulated in `i64` — exact for any supported width and dimension.
    ///
    /// 1-bit rows dispatch to the popcount kernel
    /// ([`QuantizedMatrix::row_hamming`]): `dot = D − 2·hamming`.
    ///
    /// # Panics
    ///
    /// Panics if the widths or column counts differ, or an index is out of
    /// bounds.
    pub fn row_dot_widening(&self, ra: usize, other: &QuantizedMatrix, rb: usize) -> i64 {
        assert_eq!(self.width, other.width, "row_dot_widening: width mismatch");
        assert_eq!(
            self.cols, other.cols,
            "row_dot_widening: column count mismatch"
        );
        assert!(ra < self.rows && rb < other.rows, "row index out of bounds");
        if self.width == BitWidth::B1 {
            return self.cols as i64 - 2 * self.row_hamming(ra, other, rb) as i64;
        }
        let bits = self.width.bits();
        let mask: u64 = (1u64 << bits) - 1;
        let qmax = self.width.qmax() as i64;
        let decode = |code: u64| ((code as i64) - qmax).clamp(-qmax, qmax) as i32;
        let mut bit_a = ra * self.cols * bits;
        let mut bit_b = rb * other.cols * bits;
        let mut acc = 0i64;
        for _ in 0..self.cols {
            let code_a = (self.words[bit_a / 64] >> (bit_a % 64)) & mask;
            let code_b = (other.words[bit_b / 64] >> (bit_b % 64)) & mask;
            acc += (decode(code_a) * decode(code_b)) as i64;
            bit_a += bits;
            bit_b += bits;
        }
        acc
    }

    /// Popcount Hamming distance between two 1-bit rows, 64 sign bits per
    /// XOR+`count_ones` step, directly over the packed words (rows that
    /// start mid-word are realigned with a shift, never unpacked).
    ///
    /// # Panics
    ///
    /// Panics if either matrix is not 1-bit, the column counts differ, or
    /// an index is out of bounds.
    pub fn row_hamming(&self, ra: usize, other: &QuantizedMatrix, rb: usize) -> u64 {
        assert_eq!(self.width, BitWidth::B1, "row_hamming: self is not 1-bit");
        assert_eq!(other.width, BitWidth::B1, "row_hamming: other is not 1-bit");
        assert_eq!(self.cols, other.cols, "row_hamming: column count mismatch");
        assert!(ra < self.rows && rb < other.rows, "row index out of bounds");
        let mut distance = 0u64;
        let mut i = 0;
        while i < self.cols {
            let take = (self.cols - i).min(64);
            let wa = bit_window(&self.words, ra * self.cols + i, take);
            let wb = bit_window(&other.words, rb * other.cols + i, take);
            distance += (wa ^ wb).count_ones() as u64;
            i += take;
        }
        distance
    }
}

/// Columns per unpacked segment of the single-query integer similarity
/// kernel: a 1 KiB f32 scratch block — resident in L1 alongside the query
/// slices it is dotted against.
pub const UNPACK_SEGMENT: usize = 256;

/// Extracts `len ≤ 64` bits starting at absolute bit offset `start`,
/// low-aligned and zero-padded above `len`.
#[inline]
fn bit_window(words: &[u64], start: usize, len: usize) -> u64 {
    let offset = start % 64;
    let mut w = words[start / 64] >> offset;
    let available = 64 - offset;
    if available < len {
        w |= words[start / 64 + 1] << available;
    }
    if len < 64 {
        w &= (1u64 << len) - 1;
    }
    w
}

/// Per-row scale factor for symmetric quantization.
fn row_scale(row: &[f32], width: BitWidth) -> f32 {
    match width {
        BitWidth::B1 => {
            // Reconstruction level = mean magnitude (sign quantization).
            let mean_abs = row.iter().map(|v| v.abs()).sum::<f32>() / row.len().max(1) as f32;
            if mean_abs > 0.0 {
                mean_abs
            } else {
                1.0
            }
        }
        BitWidth::B2 => {
            // Ternary {-1, 0, +1}: a mean-magnitude level (like 1-bit)
            // keeps per-flip damage bounded; a max-abs level would make
            // every flip a full-range swing and invert the paper's
            // precision-vs-robustness ordering.
            let mean_abs = row.iter().map(|v| v.abs()).sum::<f32>() / row.len().max(1) as f32;
            if mean_abs > 0.0 {
                1.5 * mean_abs
            } else {
                1.0
            }
        }
        _ => {
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            if max_abs > 0.0 {
                max_abs / width.qmax() as f32
            } else {
                1.0
            }
        }
    }
}

/// Encodes one value to an unsigned code of `width.bits()` bits — the
/// scalar reference the tier-dispatched [`row_codes`] kernels are held to.
#[cfg(test)]
fn encode_value(v: f32, scale: f32, width: BitWidth) -> u64 {
    match width {
        BitWidth::B1 => u64::from(v >= 0.0),
        _ => {
            let qmax = width.qmax();
            let q = (v / scale).round().clamp(-(qmax as f32), qmax as f32) as i32;
            (q + qmax) as u64
        }
    }
}

/// Converts one row of values to unsigned codes through the shared
/// tier-dispatched kernels (bit-identical to [`encode_value`] per
/// element).
fn row_codes(row: &[f32], scale: f32, width: BitWidth, codes: &mut [u8]) {
    match width {
        BitWidth::B1 => disthd_linalg::sign_codes(row, codes),
        _ => disthd_linalg::symmetric_codes(row, scale, width.qmax(), codes),
    }
}

/// Bit-packs a run of codes into **pre-zeroed** words starting at
/// `start_bit`.  `start_bit` stays a multiple of `bits` and
/// `64 % bits == 0`, so no code ever spans two words.
fn pack_codes_at(words: &mut [u64], start_bit: usize, bits: usize, codes: &[u8]) {
    let mut bit = start_bit;
    for &code in codes {
        words[bit / 64] |= u64::from(code) << (bit % 64);
        bit += bits;
    }
}

/// Rows per fused-encode chunk: the base granularity rounded up so every
/// chunk's first row starts on a 64-bit word boundary
/// (`group = 64 / gcd(row_bits, 64)` rows always span whole words).
fn aligned_chunk_rows(row_bits: usize) -> usize {
    // Tall chunks let the GEMM's column-group blocking re-read each packed
    // panel once per 64 rows rather than once per 8; the per-worker values
    // scratch stays modest (64 rows × dim f32) and the partition is still
    // shape-derived, so output is identical at any thread count.
    const BASE_ROWS: usize = 64;
    let mut a = row_bits as u64;
    let mut b = 64u64;
    while b != 0 {
        (a, b) = (b, a % b);
    }
    let group = (64 / a) as usize;
    group * BASE_ROWS.div_ceil(group)
}

/// Thread-private scratch for the fused encode: one values buffer and one
/// codes buffer per worker, reused across chunks and calls (pool workers
/// are persistent, so steady-state encode allocates nothing).
fn with_encode_scratch<R>(
    values_len: usize,
    codes_len: usize,
    f: impl FnOnce(&mut [f32], &mut [u8]) -> R,
) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<(Vec<f32>, Vec<u8>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let (values, codes) = &mut *scratch;
        if values.len() < values_len {
            values.resize(values_len, 0.0);
        }
        if codes.len() < codes_len {
            codes.resize(codes_len, 0);
        }
        f(&mut values[..values_len], &mut codes[..codes_len])
    })
}

/// Decodes an unsigned code back to a value.
fn decode_value(code: u64, scale: f32, width: BitWidth) -> f32 {
    match width {
        BitWidth::B1 => {
            if code & 1 == 1 {
                scale
            } else {
                -scale
            }
        }
        _ => {
            let qmax = width.qmax();
            // A bit fault can push the code beyond the encoding range
            // (e.g. 2-bit code 3 when qmax = 1): clamp like saturating
            // hardware would.
            let q = (code as i64 - qmax as i64).clamp(-(qmax as i64), qmax as i64);
            q as f32 * scale
        }
    }
}

/// Reads `bits` bits at bit offset `offset`.
fn read_code(words: &[u64], offset: usize, bits: usize) -> u64 {
    let mut code = 0u64;
    for b in 0..bits {
        let idx = offset + b;
        if (words[idx / 64] >> (idx % 64)) & 1 == 1 {
            code |= 1 << b;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, -0.5, 0.25, 0.0], vec![-2.0, 2.0, 0.1, -0.1]]).unwrap()
    }

    #[test]
    fn eight_bit_round_trip_is_tight() {
        let m = sample();
        let q = QuantizedMatrix::quantize(&m, BitWidth::B8);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert!(
                    (m.get(r, c) - back.get(r, c)).abs() < 0.02,
                    "({r},{c}): {} vs {}",
                    m.get(r, c),
                    back.get(r, c)
                );
            }
        }
    }

    #[test]
    fn one_bit_preserves_signs() {
        let m = sample();
        let q = QuantizedMatrix::quantize(&m, BitWidth::B1);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let original = m.get(r, c);
                let restored = back.get(r, c);
                if original != 0.0 {
                    assert_eq!(original >= 0.0, restored >= 0.0, "sign at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn coarser_widths_have_larger_error() {
        let m = Matrix::from_fn(4, 64, |r, c| ((r * 31 + c * 7) as f32).sin());
        let err = |w: BitWidth| {
            let q = QuantizedMatrix::quantize(&m, w);
            let back = q.dequantize();
            m.as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
        };
        assert!(err(BitWidth::B8) < err(BitWidth::B4));
        assert!(err(BitWidth::B4) < err(BitWidth::B2));
    }

    #[test]
    fn payload_bits_counts_logical_storage() {
        let q = QuantizedMatrix::quantize(&sample(), BitWidth::B4);
        assert_eq!(q.payload_bits(), 2 * 4 * 4);
    }

    #[test]
    fn flip_bit_changes_dequantized_value() {
        let m = sample();
        let q0 = QuantizedMatrix::quantize(&m, BitWidth::B8);
        let mut q1 = q0.clone();
        q1.flip_bit(7); // MSB of element (0, 0)
        let a = q0.dequantize();
        let b = q1.dequantize();
        assert_ne!(a.get(0, 0), b.get(0, 0));
        assert_eq!(a.get(1, 0), b.get(1, 0));
    }

    #[test]
    fn zero_row_quantizes_to_zero() {
        let m = Matrix::zeros(1, 8);
        for w in BitWidth::all() {
            let back = QuantizedMatrix::quantize(&m, w).dequantize();
            if w == BitWidth::B1 {
                // Sign quantization cannot represent exact zero; the scale
                // fallback keeps values at ±1.
                assert!(back.as_slice().iter().all(|v| v.abs() == 1.0));
            } else {
                assert!(back.as_slice().iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn faulted_code_is_clamped_not_wrapped() {
        // 2-bit: qmax = 1, valid codes 0..=2; flipping both bits of code 2
        // can yield 3, which must clamp to qmax rather than wrap negative.
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let mut q = QuantizedMatrix::quantize(&m, BitWidth::B2);
        q.flip_bit(0); // code 2 -> 3
        let v = q.dequantize().get(0, 0);
        assert!(v.is_finite());
        // Bounded by qmax * scale (scale = 1.5 * mean|row| for 2-bit).
        assert!(v.abs() <= 1.5 + 1e-6);
    }

    #[test]
    fn display_formats_widths() {
        assert_eq!(BitWidth::B1.to_string(), "1 bit");
        assert_eq!(BitWidth::B8.to_string(), "8 bits");
    }

    use crate::test_util::lcg_matrix as odd_matrix;

    #[test]
    fn row_dot_f32_matches_dequantized_dot_over_scale() {
        // dot(query, codes_r) must equal dot(query, dequantize(r)) / scale_r
        // up to f32 rounding, at every width and at misaligned row starts.
        let m = odd_matrix(3, 37, 0x11);
        let query: Vec<f32> = odd_matrix(1, 37, 0x22).into_vec();
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&m, w);
            let back = q.dequantize();
            for r in 0..m.rows() {
                let got = q.row_dot_f32(r, &query);
                let expected: f32 = back
                    .row(r)
                    .iter()
                    .zip(query.iter())
                    .map(|(&v, &x)| v * x)
                    .sum::<f32>()
                    / q.scales()[r];
                assert!(
                    (got - expected).abs() < 1e-3 * expected.abs().max(1.0),
                    "{w}, row {r}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn code_inv_norms_match_dequantized_norms() {
        let m = odd_matrix(4, 37, 0x33);
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&m, w);
            let back = q.dequantize();
            let mut inv = Vec::new();
            q.code_inv_norms_into(&mut inv);
            assert_eq!(inv.len(), 4);
            for (r, &got) in inv.iter().enumerate() {
                let norm: f32 = back.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                let expected = q.scales()[r] / norm;
                assert!(
                    (got - expected).abs() < 1e-4 * expected.abs().max(1.0),
                    "{w}, row {r}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn inv_norms_are_zero_for_zero_rows() {
        let mut m = Matrix::zeros(2, 16);
        for c in 0..16 {
            m.set(1, c, 0.5);
        }
        for w in [BitWidth::B2, BitWidth::B4, BitWidth::B8] {
            let q = QuantizedMatrix::quantize(&m, w);
            let mut inv = Vec::new();
            q.code_inv_norms_into(&mut inv);
            assert_eq!(inv[0], 0.0, "{w}");
            assert!(inv[1] > 0.0, "{w}");
        }
    }

    #[test]
    fn widening_dot_matches_exact_integer_products() {
        let a = odd_matrix(3, 37, 0x44);
        let b = odd_matrix(2, 37, 0x55);
        for w in BitWidth::all() {
            let qa = QuantizedMatrix::quantize(&a, w);
            let qb = QuantizedMatrix::quantize(&b, w);
            for ra in 0..3 {
                for rb in 0..2 {
                    let got = qa.row_dot_widening(ra, &qb, rb);
                    // Ground truth: decode both rows through dequantize and
                    // divide the scales back out (values are exact small
                    // integers, so the f64 arithmetic is exact).
                    let da = qa.dequantize();
                    let db = qb.dequantize();
                    let expected: f64 = da
                        .row(ra)
                        .iter()
                        .zip(db.row(rb).iter())
                        .map(|(&x, &y)| {
                            f64::from((x / qa.scales()[ra]).round())
                                * f64::from((y / qb.scales()[rb]).round())
                        })
                        .sum();
                    assert_eq!(got, expected as i64, "{w}, rows ({ra},{rb})");
                }
            }
        }
    }

    #[test]
    fn row_hamming_counts_sign_disagreements_on_misaligned_rows() {
        // 37 columns: row 1 starts at bit 37, well inside a word.
        let m = odd_matrix(3, 37, 0x66);
        let q = QuantizedMatrix::quantize(&m, BitWidth::B1);
        for ra in 0..3 {
            for rb in 0..3 {
                let expected = (0..37)
                    .filter(|&c| (m.get(ra, c) >= 0.0) != (m.get(rb, c) >= 0.0))
                    .count() as u64;
                assert_eq!(q.row_hamming(ra, &q, rb), expected, "rows ({ra},{rb})");
            }
        }
    }

    #[test]
    fn one_bit_widening_dot_is_cols_minus_twice_hamming() {
        let m = odd_matrix(2, 130, 0x77);
        let q = QuantizedMatrix::quantize(&m, BitWidth::B1);
        let hamming = q.row_hamming(0, &q, 1);
        assert_eq!(q.row_dot_widening(0, &q, 1), 130 - 2 * hamming as i64);
        // Self-dot of a sign row is exactly the dimension.
        assert_eq!(q.row_dot_widening(1, &q, 1), 130);
    }

    #[test]
    fn faulted_codes_saturate_in_integer_reads_like_dequantize() {
        // 2-bit code 3 (a faulted pattern) must clamp to qmax in the
        // integer read exactly as dequantize clamps it.
        let m = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let mut q = QuantizedMatrix::quantize(&m, BitWidth::B2);
        q.flip_bit(0); // element (0,0): code 2 -> 3
        let deq = q.dequantize();
        let got = q.row_dot_f32(0, &[1.0, 0.0]);
        assert_eq!(got * q.scales()[0], deq.get(0, 0));
    }

    #[test]
    fn packed_codes_panel_matches_unpacked_rows() {
        // The GEMM panel must hold exactly the saturated scale-free codes,
        // column l = row l, at every width and at an odd (padded-tile)
        // class count.
        let m = odd_matrix(5, 37, 0xAB);
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&m, w);
            let mut panel = disthd_linalg::PackedRhs::new(37, 5);
            q.pack_codes_into(&mut panel);
            for l in 0..5 {
                let mut expected = vec![0.0f32; 37];
                q.unpack_row_segment(l, 0, &mut expected);
                let got: Vec<f32> = panel.column_slots(l).map(|v| *v).collect();
                assert_eq!(got, expected, "{w}, row {l}");
            }
        }
    }

    #[test]
    fn row_dot_f32_matches_gemm_order_on_the_unpacked_row() {
        // The segmented single-query chain must equal one continuous
        // dot_gemm_order over the fully unpacked row — the bridge to the
        // batched GEMM's per-element chain.
        let m = odd_matrix(2, 300, 0xCD);
        let query: Vec<f32> = odd_matrix(1, 300, 0xEF).into_vec();
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&m, w);
            for r in 0..2 {
                let mut unpacked = vec![0.0f32; 300];
                q.unpack_row_segment(r, 0, &mut unpacked);
                assert_eq!(
                    q.row_dot_f32(r, &query),
                    disthd_linalg::dot_gemm_order(&unpacked, &query),
                    "{w}, row {r}"
                );
            }
        }
    }

    #[test]
    fn dequantize_counter_is_monotonic() {
        let before = dequantize_calls();
        let _ = QuantizedMatrix::quantize(&sample(), BitWidth::B4).dequantize();
        assert!(dequantize_calls() > before);
    }

    #[test]
    fn row_codes_matches_encode_value_reference() {
        // The tier-dispatched code kernels against the scalar reference,
        // on a grid that includes ties, zeros, negative zero and
        // saturating magnitudes at every width.
        let mut values: Vec<f32> = crate::test_util::lcg_matrix(1, 200, 0x71).into_vec();
        values[0] = 0.0;
        values[1] = -0.0;
        values[2] = 10.0;
        values[3] = -10.0;
        for w in BitWidth::all() {
            for scale in [1.0f32, 0.125, 0.37] {
                values[4] = 0.5 * scale;
                values[5] = -2.5 * scale;
                let mut codes = vec![0u8; values.len()];
                row_codes(&values, scale, w, &mut codes);
                for (j, &v) in values.iter().enumerate() {
                    assert_eq!(
                        u64::from(codes[j]),
                        encode_value(v, scale, w),
                        "{w}, scale {scale}, value {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_producer_is_bit_identical_to_quantize() {
        // The fused constructor against quantize-after-materialize, at
        // every width, at shapes whose rows start mid-word, at sizes on
        // both sides of the serial threshold, and at several thread
        // counts (the chunk partition is fixed by shape alone).
        use disthd_linalg::parallel::with_thread_count;
        for (rows, cols) in [(1usize, 5usize), (7, 37), (40, 129), (9, 4096)] {
            let m = crate::test_util::lcg_matrix(rows, cols, 0xF00D ^ (rows * cols) as u64);
            for w in BitWidth::all() {
                let reference = QuantizedMatrix::quantize(&m, w);
                for threads in [1usize, 2, 8] {
                    let fused = with_thread_count(threads, || {
                        QuantizedMatrix::from_row_producer(rows, cols, w, |first_row, values| {
                            let n = values.len() / cols;
                            values.copy_from_slice(
                                &m.as_slice()[first_row * cols..(first_row + n) * cols],
                            );
                        })
                    });
                    assert_eq!(
                        fused.as_words(),
                        reference.as_words(),
                        "{w} {rows}x{cols} t{threads}"
                    );
                    assert_eq!(
                        fused.scales(),
                        reference.scales(),
                        "{w} {rows}x{cols} t{threads}"
                    );
                    assert_eq!(fused.shape(), reference.shape());
                }
            }
        }
    }

    #[test]
    fn row_producer_handles_degenerate_shapes() {
        for (rows, cols) in [(0usize, 4usize), (3, 0), (0, 0)] {
            let q = QuantizedMatrix::from_row_producer(rows, cols, BitWidth::B4, |_, _| {
                panic!("no chunk to fill")
            });
            assert_eq!(q.shape(), (rows, cols));
            assert!(q.as_words().is_empty());
            assert_eq!(q.scales().len(), rows);
            assert!(q.scales().iter().all(|&s| s == 1.0));
        }
    }
}
