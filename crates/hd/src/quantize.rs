//! Low-precision model quantization for the Fig. 8 robustness study.
//!
//! The paper stores DistHD models at 1, 2, 4 or 8 bits per dimension and
//! flips random bits in that memory.  [`QuantizedMatrix`] packs a row-major
//! `f32` matrix into a dense bitstream at a chosen [`BitWidth`] with one
//! symmetric scale per row, supports in-place bit faults (see
//! [`crate::noise`]), and dequantizes back for inference.

use disthd_linalg::Matrix;

/// Supported quantization precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BitWidth {
    /// 1-bit sign quantization (bipolar deployment).
    B1,
    /// 2-bit symmetric signed.
    B2,
    /// 4-bit symmetric signed.
    B4,
    /// 8-bit symmetric signed (the DNN comparison precision).
    B8,
}

impl BitWidth {
    /// Number of bits per stored element.
    pub fn bits(self) -> usize {
        match self {
            BitWidth::B1 => 1,
            BitWidth::B2 => 2,
            BitWidth::B4 => 4,
            BitWidth::B8 => 8,
        }
    }

    /// Largest positive quantized magnitude (`2^(b-1) - 1`, or 1 for 1-bit).
    pub fn qmax(self) -> i32 {
        match self {
            BitWidth::B1 => 1,
            BitWidth::B2 => 1,
            BitWidth::B4 => 7,
            BitWidth::B8 => 127,
        }
    }

    /// All supported widths, smallest first (the Fig. 8 sweep order).
    pub fn all() -> [BitWidth; 4] {
        [BitWidth::B1, BitWidth::B2, BitWidth::B4, BitWidth::B8]
    }

    /// Parses a persisted bit count back to a width.
    pub fn from_bits(bits: usize) -> Option<BitWidth> {
        match bits {
            1 => Some(BitWidth::B1),
            2 => Some(BitWidth::B2),
            4 => Some(BitWidth::B4),
            8 => Some(BitWidth::B8),
            _ => None,
        }
    }
}

impl std::fmt::Display for BitWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} bit{}",
            self.bits(),
            if self.bits() == 1 { "" } else { "s" }
        )
    }
}

/// A matrix stored as a packed low-precision bitstream.
///
/// Quantization is symmetric per row: `scale_r = max|row_r| / qmax`, each
/// element stores `round(v / scale_r)` offset into an unsigned code of
/// [`BitWidth::bits`] bits.  1-bit is sign quantization with the row's mean
/// magnitude as the reconstruction level.
///
/// # Example
///
/// ```
/// use disthd_hd::quantize::{BitWidth, QuantizedMatrix};
/// use disthd_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![0.5, -1.0, 0.25]])?;
/// let q = QuantizedMatrix::quantize(&m, BitWidth::B8);
/// let back = q.dequantize();
/// assert!((back.get(0, 1) - -1.0).abs() < 0.02);
/// # Ok::<(), disthd_linalg::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    words: Vec<u64>,
    scales: Vec<f32>,
    width: BitWidth,
    rows: usize,
    cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes `m` at the given precision.
    pub fn quantize(m: &Matrix, width: BitWidth) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let bits = width.bits();
        let total_bits = rows * cols * bits;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        let mut scales = Vec::with_capacity(rows);

        for r in 0..rows {
            let row = m.row(r);
            let scale = row_scale(row, width);
            scales.push(scale);
            for (c, &v) in row.iter().enumerate() {
                let code = encode_value(v, scale, width);
                write_code(&mut words, (r * cols + c) * bits, bits, code);
            }
        }

        Self {
            words,
            scales,
            width,
            rows,
            cols,
        }
    }

    /// Reconstructs the full-precision matrix.
    pub fn dequantize(&self) -> Matrix {
        let bits = self.width.bits();
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let code = read_code(&self.words, (r * self.cols + c) * bits, bits);
            decode_value(code, self.scales[r], self.width)
        })
    }

    /// Total number of stored payload bits (`rows * cols * bits`) — the
    /// memory the fault model acts on.
    pub fn payload_bits(&self) -> usize {
        self.rows * self.cols * self.width.bits()
    }

    /// Flips the payload bit at `bit_index`.
    ///
    /// # Panics
    ///
    /// Panics if `bit_index >= payload_bits()`.
    pub fn flip_bit(&mut self, bit_index: usize) {
        assert!(bit_index < self.payload_bits(), "bit index out of bounds");
        self.words[bit_index / 64] ^= 1 << (bit_index % 64);
    }

    /// Storage precision.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Borrows the packed payload words (for persistence).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Borrows the per-row scales (for persistence).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reassembles a quantized matrix from its persisted parts.
    ///
    /// # Errors
    ///
    /// Returns [`disthd_linalg::ShapeError`] if the word count or scale
    /// count disagrees with `rows x cols` at the given width.
    pub fn from_parts(
        words: Vec<u64>,
        scales: Vec<f32>,
        width: BitWidth,
        rows: usize,
        cols: usize,
    ) -> Result<Self, disthd_linalg::ShapeError> {
        let expected_words = (rows * cols * width.bits()).div_ceil(64);
        if words.len() != expected_words || scales.len() != rows {
            return Err(disthd_linalg::ShapeError::new(
                "quantized_from_parts",
                (rows, cols),
                (words.len(), scales.len()),
            ));
        }
        Ok(Self {
            words,
            scales,
            width,
            rows,
            cols,
        })
    }

    /// `(rows, cols)` of the logical matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Per-row scale factor for symmetric quantization.
fn row_scale(row: &[f32], width: BitWidth) -> f32 {
    match width {
        BitWidth::B1 => {
            // Reconstruction level = mean magnitude (sign quantization).
            let mean_abs = row.iter().map(|v| v.abs()).sum::<f32>() / row.len().max(1) as f32;
            if mean_abs > 0.0 {
                mean_abs
            } else {
                1.0
            }
        }
        BitWidth::B2 => {
            // Ternary {-1, 0, +1}: a mean-magnitude level (like 1-bit)
            // keeps per-flip damage bounded; a max-abs level would make
            // every flip a full-range swing and invert the paper's
            // precision-vs-robustness ordering.
            let mean_abs = row.iter().map(|v| v.abs()).sum::<f32>() / row.len().max(1) as f32;
            if mean_abs > 0.0 {
                1.5 * mean_abs
            } else {
                1.0
            }
        }
        _ => {
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            if max_abs > 0.0 {
                max_abs / width.qmax() as f32
            } else {
                1.0
            }
        }
    }
}

/// Encodes one value to an unsigned code of `width.bits()` bits.
fn encode_value(v: f32, scale: f32, width: BitWidth) -> u64 {
    match width {
        BitWidth::B1 => u64::from(v >= 0.0),
        _ => {
            let qmax = width.qmax();
            let q = (v / scale).round().clamp(-(qmax as f32), qmax as f32) as i32;
            (q + qmax) as u64
        }
    }
}

/// Decodes an unsigned code back to a value.
fn decode_value(code: u64, scale: f32, width: BitWidth) -> f32 {
    match width {
        BitWidth::B1 => {
            if code & 1 == 1 {
                scale
            } else {
                -scale
            }
        }
        _ => {
            let qmax = width.qmax();
            // A bit fault can push the code beyond the encoding range
            // (e.g. 2-bit code 3 when qmax = 1): clamp like saturating
            // hardware would.
            let q = (code as i64 - qmax as i64).clamp(-(qmax as i64), qmax as i64);
            q as f32 * scale
        }
    }
}

/// Writes `bits` low bits of `code` at bit offset `offset`.
fn write_code(words: &mut [u64], offset: usize, bits: usize, code: u64) {
    for b in 0..bits {
        let idx = offset + b;
        let mask = 1u64 << (idx % 64);
        if (code >> b) & 1 == 1 {
            words[idx / 64] |= mask;
        } else {
            words[idx / 64] &= !mask;
        }
    }
}

/// Reads `bits` bits at bit offset `offset`.
fn read_code(words: &[u64], offset: usize, bits: usize) -> u64 {
    let mut code = 0u64;
    for b in 0..bits {
        let idx = offset + b;
        if (words[idx / 64] >> (idx % 64)) & 1 == 1 {
            code |= 1 << b;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, -0.5, 0.25, 0.0], vec![-2.0, 2.0, 0.1, -0.1]]).unwrap()
    }

    #[test]
    fn eight_bit_round_trip_is_tight() {
        let m = sample();
        let q = QuantizedMatrix::quantize(&m, BitWidth::B8);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert!(
                    (m.get(r, c) - back.get(r, c)).abs() < 0.02,
                    "({r},{c}): {} vs {}",
                    m.get(r, c),
                    back.get(r, c)
                );
            }
        }
    }

    #[test]
    fn one_bit_preserves_signs() {
        let m = sample();
        let q = QuantizedMatrix::quantize(&m, BitWidth::B1);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let original = m.get(r, c);
                let restored = back.get(r, c);
                if original != 0.0 {
                    assert_eq!(original >= 0.0, restored >= 0.0, "sign at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn coarser_widths_have_larger_error() {
        let m = Matrix::from_fn(4, 64, |r, c| ((r * 31 + c * 7) as f32).sin());
        let err = |w: BitWidth| {
            let q = QuantizedMatrix::quantize(&m, w);
            let back = q.dequantize();
            m.as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
        };
        assert!(err(BitWidth::B8) < err(BitWidth::B4));
        assert!(err(BitWidth::B4) < err(BitWidth::B2));
    }

    #[test]
    fn payload_bits_counts_logical_storage() {
        let q = QuantizedMatrix::quantize(&sample(), BitWidth::B4);
        assert_eq!(q.payload_bits(), 2 * 4 * 4);
    }

    #[test]
    fn flip_bit_changes_dequantized_value() {
        let m = sample();
        let q0 = QuantizedMatrix::quantize(&m, BitWidth::B8);
        let mut q1 = q0.clone();
        q1.flip_bit(7); // MSB of element (0, 0)
        let a = q0.dequantize();
        let b = q1.dequantize();
        assert_ne!(a.get(0, 0), b.get(0, 0));
        assert_eq!(a.get(1, 0), b.get(1, 0));
    }

    #[test]
    fn zero_row_quantizes_to_zero() {
        let m = Matrix::zeros(1, 8);
        for w in BitWidth::all() {
            let back = QuantizedMatrix::quantize(&m, w).dequantize();
            if w == BitWidth::B1 {
                // Sign quantization cannot represent exact zero; the scale
                // fallback keeps values at ±1.
                assert!(back.as_slice().iter().all(|v| v.abs() == 1.0));
            } else {
                assert!(back.as_slice().iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn faulted_code_is_clamped_not_wrapped() {
        // 2-bit: qmax = 1, valid codes 0..=2; flipping both bits of code 2
        // can yield 3, which must clamp to qmax rather than wrap negative.
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let mut q = QuantizedMatrix::quantize(&m, BitWidth::B2);
        q.flip_bit(0); // code 2 -> 3
        let v = q.dequantize().get(0, 0);
        assert!(v.is_finite());
        // Bounded by qmax * scale (scale = 1.5 * mean|row| for 2-bit).
        assert!(v.abs() <= 1.5 + 1e-6);
    }

    #[test]
    fn display_formats_widths() {
        assert_eq!(BitWidth::B1.to_string(), "1 bit");
        assert_eq!(BitWidth::B8.to_string(), "8 bits");
    }
}
