//! Similarity kernels (eq. 1 of the paper).
//!
//! For real hypervectors the paper's cosine similarity against every class is
//! computed as one matrix–vector product with *pre-normalized* class rows:
//! `δ(H, C_l) ∝ H · N_l` where `N_l = C_l / ‖C_l‖` — the `‖H‖` factor is
//! common to all classes and dropped.  For binary hypervectors similarity is
//! Hamming distance over packed words.

use crate::bitpacked::BinaryHypervector;
use disthd_linalg::{dot, normalize_l2, Matrix, ShapeError};

/// Dot-product similarity of a query against every row of `normalized_rows`.
///
/// The rows are expected to be pre-normalized (see
/// [`cosine_similarity_matrix`]); the result then ranks classes identically
/// to full cosine similarity.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != normalized_rows.cols()`.
pub fn similarity_to_all(query: &[f32], normalized_rows: &Matrix) -> Result<Vec<f32>, ShapeError> {
    normalized_rows.matvec(query)
}

/// L2-normalizes every row of `rows`, producing the `N_l` matrix of eq. 1.
///
/// Zero rows (untrained classes) stay zero, which ranks them below any class
/// with signal.
pub fn cosine_similarity_matrix(rows: &Matrix) -> Matrix {
    let mut out = rows.clone();
    for r in 0..out.rows() {
        let normalized = normalize_l2(out.row(r));
        out.row_mut(r).copy_from_slice(&normalized);
    }
    out
}

/// Hamming distance between two packed binary hypervectors.
///
/// The popcount loop is unrolled four words at a time (256 bits per
/// iteration) into independent accumulators, which breaks the add
/// dependency chain and keeps the `popcnt` units saturated on long
/// hypervectors.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn hamming_distance(a: &BinaryHypervector, b: &BinaryHypervector) -> u64 {
    assert_eq!(a.dim(), b.dim(), "hamming: dimension mismatch");
    let wa = a.as_words();
    let wb = b.as_words();
    let mut acc = [0u64; 4];
    let chunks = wa.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += (wa[j] ^ wb[j]).count_ones() as u64;
        acc[1] += (wa[j + 1] ^ wb[j + 1]).count_ones() as u64;
        acc[2] += (wa[j + 2] ^ wb[j + 2]).count_ones() as u64;
        acc[3] += (wa[j + 3] ^ wb[j + 3]).count_ones() as u64;
    }
    let mut tail = 0u64;
    for j in chunks * 4..wa.len() {
        tail += (wa[j] ^ wb[j]).count_ones() as u64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Hamming distance of one packed query against a batch of references —
/// the packed-binary analogue of [`similarity_to_all`] for model-wide
/// queries.  Each pair goes through the 4-word-unrolled
/// [`hamming_distance`] kernel.
///
/// # Panics
///
/// Panics if any reference's dimension differs from the query's.
pub fn hamming_distance_batch(query: &BinaryHypervector, refs: &[BinaryHypervector]) -> Vec<u64> {
    refs.iter().map(|r| hamming_distance(query, r)).collect()
}

/// Normalized Hamming similarities (`1 − 2·hamming/D`) of one query against
/// a batch of references, in `[-1, 1]`.
///
/// # Panics
///
/// Panics if any reference's dimension differs from the query's.
pub fn normalized_hamming_similarity_batch(
    query: &BinaryHypervector,
    refs: &[BinaryHypervector],
) -> Vec<f32> {
    let dim = query.dim();
    hamming_distance_batch(query, refs)
        .into_iter()
        .map(|h| {
            if dim == 0 {
                0.0
            } else {
                1.0 - 2.0 * h as f32 / dim as f32
            }
        })
        .collect()
}

/// Similarity in `[-1, 1]` derived from Hamming distance:
/// `1 - 2·hamming/D`, which equals the bipolar cosine.
pub fn normalized_hamming_similarity(a: &BinaryHypervector, b: &BinaryHypervector) -> f32 {
    if a.dim() == 0 {
        return 0.0;
    }
    1.0 - 2.0 * hamming_distance(a, b) as f32 / a.dim() as f32
}

/// Full cosine similarity of `query` against each (unnormalized) row.
///
/// Slower than [`similarity_to_all`]; used by tests and diagnostics where the
/// true cosine value (not just the ranking) matters.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != rows.cols()`.
pub fn exact_cosine_to_all(query: &[f32], rows: &Matrix) -> Result<Vec<f32>, ShapeError> {
    if query.len() != rows.cols() {
        return Err(ShapeError::new(
            "exact_cosine",
            (1, query.len()),
            rows.shape(),
        ));
    }
    let qn = disthd_linalg::l2_norm(query);
    Ok(rows
        .iter_rows()
        .map(|row| {
            let rn = disthd_linalg::l2_norm(row);
            if qn == 0.0 || rn == 0.0 {
                0.0
            } else {
                dot(query, row) / (qn * rn)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_rows_rank_like_cosine() {
        let rows = Matrix::from_rows(&[vec![10.0, 0.0], vec![0.0, 0.5], vec![3.0, 3.0]]).unwrap();
        let normalized = cosine_similarity_matrix(&rows);
        let query = [1.0, 0.2];
        let fast = similarity_to_all(&query, &normalized).unwrap();
        let exact = exact_cosine_to_all(&query, &rows).unwrap();
        // Same argmax and same ordering.
        let rank = |v: &[f32]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        assert_eq!(rank(&fast), rank(&exact));
    }

    #[test]
    fn zero_rows_stay_zero_after_normalization() {
        let rows = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let normalized = cosine_similarity_matrix(&rows);
        assert_eq!(normalized.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = BinaryHypervector::from_bits([true, true, false, false]);
        let b = BinaryHypervector::from_bits([true, false, true, false]);
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn hamming_similarity_bounds() {
        let a = BinaryHypervector::from_bits((0..64).map(|_| true));
        let b = BinaryHypervector::from_bits((0..64).map(|_| false));
        assert!((normalized_hamming_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!((normalized_hamming_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn unrolled_hamming_matches_bitwise_count() {
        // 300 bits -> 5 words: exercises both the 4-word unrolled body and
        // the 1-word tail.
        let a = BinaryHypervector::from_bits((0..300).map(|i| i % 3 == 0));
        let b = BinaryHypervector::from_bits((0..300).map(|i| i % 5 == 0));
        let expected = (0..300u32).filter(|i| (i % 3 == 0) != (i % 5 == 0)).count() as u64;
        assert_eq!(hamming_distance(&a, &b), expected);
    }

    #[test]
    fn batched_hamming_matches_pairwise() {
        let query = BinaryHypervector::from_bits((0..200).map(|i| i % 2 == 0));
        let refs: Vec<BinaryHypervector> = (0..5)
            .map(|k| BinaryHypervector::from_bits((0..200).map(move |i| (i + k) % 7 == 0)))
            .collect();
        let batch = hamming_distance_batch(&query, &refs);
        let sims = normalized_hamming_similarity_batch(&query, &refs);
        for (k, r) in refs.iter().enumerate() {
            assert_eq!(batch[k], hamming_distance(&query, r));
            assert!((sims[k] - normalized_hamming_similarity(&query, r)).abs() < 1e-6);
        }
    }

    #[test]
    fn similarity_shape_checked() {
        let rows = Matrix::zeros(2, 4);
        assert!(similarity_to_all(&[1.0, 2.0], &rows).is_err());
        assert!(exact_cosine_to_all(&[1.0, 2.0], &rows).is_err());
    }
}
