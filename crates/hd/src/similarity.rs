//! Similarity kernels (eq. 1 of the paper).
//!
//! For real hypervectors the paper's cosine similarity against every class is
//! computed as one matrix–vector product with *pre-normalized* class rows:
//! `δ(H, C_l) ∝ H · N_l` where `N_l = C_l / ‖C_l‖` — the `‖H‖` factor is
//! common to all classes and dropped.  For binary hypervectors similarity is
//! Hamming distance over packed words.

use crate::bitpacked::BinaryHypervector;
use disthd_linalg::{dot, normalize_l2, Matrix, ShapeError};

/// Dot-product similarity of a query against every row of `normalized_rows`.
///
/// The rows are expected to be pre-normalized (see
/// [`cosine_similarity_matrix`]); the result then ranks classes identically
/// to full cosine similarity.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != normalized_rows.cols()`.
pub fn similarity_to_all(query: &[f32], normalized_rows: &Matrix) -> Result<Vec<f32>, ShapeError> {
    normalized_rows.matvec(query)
}

/// L2-normalizes every row of `rows`, producing the `N_l` matrix of eq. 1.
///
/// Zero rows (untrained classes) stay zero, which ranks them below any class
/// with signal.
pub fn cosine_similarity_matrix(rows: &Matrix) -> Matrix {
    let mut out = rows.clone();
    for r in 0..out.rows() {
        let normalized = normalize_l2(out.row(r));
        out.row_mut(r).copy_from_slice(&normalized);
    }
    out
}

/// Hamming distance between two packed binary hypervectors.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn hamming_distance(a: &BinaryHypervector, b: &BinaryHypervector) -> u64 {
    assert_eq!(a.dim(), b.dim(), "hamming: dimension mismatch");
    a.as_words()
        .iter()
        .zip(b.as_words())
        .map(|(x, y)| (x ^ y).count_ones() as u64)
        .sum()
}

/// Similarity in `[-1, 1]` derived from Hamming distance:
/// `1 - 2·hamming/D`, which equals the bipolar cosine.
pub fn normalized_hamming_similarity(a: &BinaryHypervector, b: &BinaryHypervector) -> f32 {
    if a.dim() == 0 {
        return 0.0;
    }
    1.0 - 2.0 * hamming_distance(a, b) as f32 / a.dim() as f32
}

/// Full cosine similarity of `query` against each (unnormalized) row.
///
/// Slower than [`similarity_to_all`]; used by tests and diagnostics where the
/// true cosine value (not just the ranking) matters.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != rows.cols()`.
pub fn exact_cosine_to_all(query: &[f32], rows: &Matrix) -> Result<Vec<f32>, ShapeError> {
    if query.len() != rows.cols() {
        return Err(ShapeError::new(
            "exact_cosine",
            (1, query.len()),
            rows.shape(),
        ));
    }
    let qn = disthd_linalg::l2_norm(query);
    Ok(rows
        .iter_rows()
        .map(|row| {
            let rn = disthd_linalg::l2_norm(row);
            if qn == 0.0 || rn == 0.0 {
                0.0
            } else {
                dot(query, row) / (qn * rn)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_rows_rank_like_cosine() {
        let rows = Matrix::from_rows(&[vec![10.0, 0.0], vec![0.0, 0.5], vec![3.0, 3.0]]).unwrap();
        let normalized = cosine_similarity_matrix(&rows);
        let query = [1.0, 0.2];
        let fast = similarity_to_all(&query, &normalized).unwrap();
        let exact = exact_cosine_to_all(&query, &rows).unwrap();
        // Same argmax and same ordering.
        let rank = |v: &[f32]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        assert_eq!(rank(&fast), rank(&exact));
    }

    #[test]
    fn zero_rows_stay_zero_after_normalization() {
        let rows = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let normalized = cosine_similarity_matrix(&rows);
        assert_eq!(normalized.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = BinaryHypervector::from_bits([true, true, false, false]);
        let b = BinaryHypervector::from_bits([true, false, true, false]);
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn hamming_similarity_bounds() {
        let a = BinaryHypervector::from_bits((0..64).map(|_| true));
        let b = BinaryHypervector::from_bits((0..64).map(|_| false));
        assert!((normalized_hamming_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!((normalized_hamming_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn similarity_shape_checked() {
        let rows = Matrix::zeros(2, 4);
        assert!(similarity_to_all(&[1.0, 2.0], &rows).is_err());
        assert!(exact_cosine_to_all(&[1.0, 2.0], &rows).is_err());
    }
}
