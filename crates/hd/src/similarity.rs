//! Similarity kernels (eq. 1 of the paper).
//!
//! For real hypervectors the paper's cosine similarity against every class is
//! computed as one matrix–vector product with *pre-normalized* class rows:
//! `δ(H, C_l) ∝ H · N_l` where `N_l = C_l / ‖C_l‖` — the `‖H‖` factor is
//! common to all classes and dropped.  For binary hypervectors similarity is
//! Hamming distance over packed words.

use crate::bitpacked::BinaryHypervector;
use crate::quantize::QuantizedMatrix;
use disthd_linalg::{dot, normalize_l2, Matrix, PackedRhs, ShapeError};

/// Dot-product similarity of a query against every row of `normalized_rows`.
///
/// The rows are expected to be pre-normalized (see
/// [`cosine_similarity_matrix`]); the result then ranks classes identically
/// to full cosine similarity.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != normalized_rows.cols()`.
pub fn similarity_to_all(query: &[f32], normalized_rows: &Matrix) -> Result<Vec<f32>, ShapeError> {
    normalized_rows.matvec(query)
}

/// L2-normalizes every row of `rows`, producing the `N_l` matrix of eq. 1.
///
/// Zero rows (untrained classes) stay zero, which ranks them below any class
/// with signal.
pub fn cosine_similarity_matrix(rows: &Matrix) -> Matrix {
    let mut out = rows.clone();
    for r in 0..out.rows() {
        let normalized = normalize_l2(out.row(r));
        out.row_mut(r).copy_from_slice(&normalized);
    }
    out
}

/// Hamming distance between two packed binary hypervectors.
///
/// The popcount loop is unrolled four words at a time (256 bits per
/// iteration) into independent accumulators, which breaks the add
/// dependency chain and keeps the `popcnt` units saturated on long
/// hypervectors.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn hamming_distance(a: &BinaryHypervector, b: &BinaryHypervector) -> u64 {
    assert_eq!(a.dim(), b.dim(), "hamming: dimension mismatch");
    let wa = a.as_words();
    let wb = b.as_words();
    let mut acc = [0u64; 4];
    let chunks = wa.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += (wa[j] ^ wb[j]).count_ones() as u64;
        acc[1] += (wa[j + 1] ^ wb[j + 1]).count_ones() as u64;
        acc[2] += (wa[j + 2] ^ wb[j + 2]).count_ones() as u64;
        acc[3] += (wa[j + 3] ^ wb[j + 3]).count_ones() as u64;
    }
    let mut tail = 0u64;
    for j in chunks * 4..wa.len() {
        tail += (wa[j] ^ wb[j]).count_ones() as u64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Hamming distance of one packed query against a batch of references —
/// the packed-binary analogue of [`similarity_to_all`] for model-wide
/// queries.  Each pair goes through the 4-word-unrolled
/// [`hamming_distance`] kernel.
///
/// # Panics
///
/// Panics if any reference's dimension differs from the query's.
pub fn hamming_distance_batch(query: &BinaryHypervector, refs: &[BinaryHypervector]) -> Vec<u64> {
    refs.iter().map(|r| hamming_distance(query, r)).collect()
}

/// Normalized Hamming similarities (`1 − 2·hamming/D`) of one query against
/// a batch of references, in `[-1, 1]`.
///
/// # Panics
///
/// Panics if any reference's dimension differs from the query's.
pub fn normalized_hamming_similarity_batch(
    query: &BinaryHypervector,
    refs: &[BinaryHypervector],
) -> Vec<f32> {
    let dim = query.dim();
    hamming_distance_batch(query, refs)
        .into_iter()
        .map(|h| {
            if dim == 0 {
                0.0
            } else {
                1.0 - 2.0 * h as f32 / dim as f32
            }
        })
        .collect()
}

/// Similarity in `[-1, 1]` derived from Hamming distance:
/// `1 - 2·hamming/D`, which equals the bipolar cosine.
pub fn normalized_hamming_similarity(a: &BinaryHypervector, b: &BinaryHypervector) -> f32 {
    if a.dim() == 0 {
        return 0.0;
    }
    1.0 - 2.0 * hamming_distance(a, b) as f32 / a.dim() as f32
}

/// Similarity of an `f32` query against every row of a quantized class
/// memory, read **directly off the packed words** — the zero-dequantize
/// serving kernel.
///
/// `inv_norms` must hold one reciprocal code norm per row (from
/// [`QuantizedMatrix::code_inv_norms_into`]).  The score for row `l` is
/// `dot(query, codes_l) · inv_norms[l]`, which ranks classes identically to
/// dequantize-then-[`similarity_to_all`]: the per-row quantization scale
/// cancels between the dequantized dot and the dequantized norm, so only
/// f32 rounding (≈ 1 ulp per accumulation) separates the two paths.
/// All-zero rows score exactly `0.0`, matching
/// [`cosine_similarity_matrix`]'s zero-row convention.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != classes.shape().1` or
/// `inv_norms.len() != classes.shape().0`.
pub fn quantized_similarity_to_all(
    query: &[f32],
    classes: &QuantizedMatrix,
    inv_norms: &[f32],
) -> Result<Vec<f32>, ShapeError> {
    let (rows, cols) = classes.shape();
    if query.len() != cols || inv_norms.len() != rows {
        return Err(ShapeError::new(
            "quantized_similarity",
            (1, query.len()),
            (rows, cols),
        ));
    }
    Ok((0..rows)
        .map(|l| classes.row_dot_f32(l, query) * inv_norms[l])
        .collect())
}

/// Batched [`quantized_similarity_to_all`]: the `samples × classes` score
/// matrix of every encoded row against a quantized class memory.
///
/// The class codes run through the full 4×16 register-tiled GEMM
/// micro-kernel ([`Matrix::matmul_prepacked_map`]): the packed words are
/// decoded **once** into a tile-major [`PackedRhs`] panel of scale-free
/// integer codes (saturating faulted codes exactly like `dequantize`), and
/// the whole batch multiplies against that panel with the per-class
/// `inv_norms` scaling fused into the store epilogue.  Per `(sample,
/// class)` the accumulation is the GEMM's single ascending chain — exactly
/// what [`quantized_similarity_to_all`] computes via
/// [`disthd_linalg::dot_gemm_order_from`] — so batch composition and
/// thread count never change a bit of the result.
///
/// The panel is decoded per call — written immediately before the GEMM
/// reads it back out of cache, which measures *faster* than keeping a
/// long-lived panel that starts every call cold (and it keeps the packed
/// words the only state).  Batches too small to amortize the decode
/// (fewer than `QSIM_GEMM_MIN_ROWS` rows — e.g. one-at-a-time serving)
/// skip the panel entirely and score row by row through the single-query
/// kernel, which is bit-identical by the shared accumulation chain.  A
/// caller that genuinely reuses one panel across many products can decode
/// it once ([`QuantizedMatrix::pack_codes_into`]) and call
/// [`quantized_similarity_prepacked`] per batch.
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != classes.shape().1` or
/// `inv_norms.len() != classes.shape().0`.
pub fn quantized_similarity_matrix(
    encoded: &Matrix,
    classes: &QuantizedMatrix,
    inv_norms: &[f32],
) -> Result<Matrix, ShapeError> {
    let (class_count, dim) = classes.shape();
    if encoded.cols() != dim || inv_norms.len() != class_count {
        return Err(ShapeError::new(
            "quantized_similarity",
            encoded.shape(),
            (class_count, dim),
        ));
    }
    if encoded.rows() < QSIM_GEMM_MIN_ROWS {
        let mut scores = Matrix::zeros(encoded.rows(), class_count);
        for r in 0..encoded.rows() {
            let row = quantized_similarity_to_all(encoded.row(r), classes, inv_norms)?;
            scores.row_mut(r).copy_from_slice(&row);
        }
        return Ok(scores);
    }
    let mut panel = PackedRhs::new(dim, class_count);
    classes.pack_codes_into(&mut panel);
    quantized_similarity_prepacked(encoded, &panel, inv_norms)
}

/// Below this many query rows the batched kernel scores row by row instead
/// of decoding the full GEMM panel: decoding all `k·D` codes (plus the
/// panel allocation) costs more than a couple of latency-bound single-query
/// passes.  Both paths accumulate in the identical per-element chain, so
/// the crossover affects speed only — never a result bit.
const QSIM_GEMM_MIN_ROWS: usize = 4;

/// [`quantized_similarity_matrix`] against an already-decoded code panel,
/// for callers that score many batches against one class memory and keep
/// the panel hot themselves (the bundled deployment deliberately does
/// *not* — see [`quantized_similarity_matrix`]).
///
/// # Errors
///
/// Returns [`ShapeError`] if `encoded.cols() != codes_panel.inner()` or
/// `inv_norms.len() != codes_panel.cols()`.
pub fn quantized_similarity_prepacked(
    encoded: &Matrix,
    codes_panel: &PackedRhs,
    inv_norms: &[f32],
) -> Result<Matrix, ShapeError> {
    if encoded.cols() != codes_panel.inner() || inv_norms.len() != codes_panel.cols() {
        return Err(ShapeError::new(
            "quantized_similarity",
            encoded.shape(),
            (codes_panel.cols(), codes_panel.inner()),
        ));
    }
    encoded.matmul_prepacked_map(codes_panel, |l, v| v * inv_norms[l])
}

/// Fully-integer similarity of a quantized query (a `1 × D`
/// [`QuantizedMatrix`]) against every row of a quantized class memory:
/// widening i8/i4/i2 dot products — or XOR+popcount for 1-bit — over the
/// packed words, normalized by the exact integer code norms on both sides.
///
/// `class_inv_norms` must hold one reciprocal code norm per class row
/// (from [`QuantizedMatrix::code_inv_norms_into`]) — the norms are
/// query-independent, so a serving loop computes them once per class
/// memory instead of re-decoding every class row per request.  Only the
/// query's own norm is computed here (one `O(D)` pass over the query it
/// already dots).
///
/// The returned scores are cosine similarities of the *dequantized* values
/// (the scales cancel), so argmax and top-2 agree with
/// dequantize-then-[`exact_cosine_to_all`] — the equivalence the
/// exhaustive kernel tests pin at every width.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query` is not a single row, the widths or
/// column counts differ, or `class_inv_norms` has the wrong length.
pub fn packed_similarity_to_all(
    query: &QuantizedMatrix,
    classes: &QuantizedMatrix,
    class_inv_norms: &[f32],
) -> Result<Vec<f32>, ShapeError> {
    let (query_rows, query_cols) = query.shape();
    let (class_rows, class_cols) = classes.shape();
    if query_rows != 1
        || query_cols != class_cols
        || query.width() != classes.width()
        || class_inv_norms.len() != class_rows
    {
        return Err(ShapeError::new(
            "packed_similarity",
            query.shape(),
            classes.shape(),
        ));
    }
    let mut query_inv = Vec::with_capacity(1);
    query.code_inv_norms_into(&mut query_inv);
    Ok((0..class_rows)
        .map(|l| query.row_dot_widening(0, classes, l) as f32 * query_inv[0] * class_inv_norms[l])
        .collect())
}

/// Fully-integer batch prediction: the argmax class of every row of a
/// quantized query batch against a quantized class memory, straight off the
/// packed words — XOR+popcount at 1 bit, widening i2/i4/i8 dot products
/// otherwise.  **No f32 similarity work**: the only float arithmetic is the
/// final per-class `dot × inv_norm` scaling of an integer dot.
///
/// The per-query reciprocal code norm of [`packed_similarity_to_all`] is
/// skipped: it is one positive constant per query, so it scales every
/// class score identically and cannot move the argmax.  Ties (equal scaled
/// scores) resolve to the lower class index, matching the f32 pipeline's
/// argmax convention.
///
/// # Errors
///
/// Returns [`ShapeError`] if the widths or column counts differ, or
/// `class_inv_norms` is not one entry per class row.
pub fn packed_predict_batch(
    queries: &QuantizedMatrix,
    classes: &QuantizedMatrix,
    class_inv_norms: &[f32],
) -> Result<Vec<usize>, ShapeError> {
    let (query_rows, query_cols) = queries.shape();
    let (class_rows, class_cols) = classes.shape();
    if query_cols != class_cols
        || queries.width() != classes.width()
        || class_inv_norms.len() != class_rows
    {
        return Err(ShapeError::new(
            "packed_predict",
            queries.shape(),
            classes.shape(),
        ));
    }
    let mut out = Vec::with_capacity(query_rows);
    for r in 0..query_rows {
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (l, &inv_norm) in class_inv_norms.iter().enumerate() {
            let score = queries.row_dot_widening(r, classes, l) as f32 * inv_norm;
            if score > best_score {
                best = l;
                best_score = score;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Batched fully-integer **true-cosine** scores: the `samples × classes`
/// matrix of every row of a quantized query batch against a quantized
/// class memory, with the per-query reciprocal code norm applied.
///
/// [`packed_predict_batch`] deliberately skips the per-query norm — it is
/// a positive constant per query, so it cannot move an argmax — but a
/// serving task that **compares scores across queries** (one-class anomaly
/// detection thresholds a query's best similarity) needs the real cosine:
/// without the query norm, a long query outscores a short one at the same
/// angle and the threshold stops meaning anything.  Row `s` here is
/// bit-identical to [`packed_similarity_to_all`] on query `s` alone (same
/// integer dots, same two scalar multiplies in the same order), so a
/// batched anomaly/top-k pass scores exactly like one-at-a-time serving.
///
/// All query inverse norms are computed in one integer pass up front
/// ([`QuantizedMatrix::code_inv_norms_into`]); an all-zero query row
/// scores `0.0` against every class, matching the zero-row convention.
///
/// # Errors
///
/// Returns [`ShapeError`] if the widths or column counts differ, or
/// `class_inv_norms` is not one entry per class row.
pub fn packed_cosine_matrix(
    queries: &QuantizedMatrix,
    classes: &QuantizedMatrix,
    class_inv_norms: &[f32],
) -> Result<Matrix, ShapeError> {
    let (query_rows, query_cols) = queries.shape();
    let (class_rows, class_cols) = classes.shape();
    if query_cols != class_cols
        || queries.width() != classes.width()
        || class_inv_norms.len() != class_rows
    {
        return Err(ShapeError::new(
            "packed_cosine",
            queries.shape(),
            classes.shape(),
        ));
    }
    let mut query_inv = Vec::new();
    queries.code_inv_norms_into(&mut query_inv);
    let mut scores = Matrix::zeros(query_rows, class_rows);
    for (r, &q_inv) in query_inv.iter().enumerate() {
        let row = scores.row_mut(r);
        for (l, &inv_norm) in class_inv_norms.iter().enumerate() {
            row[l] = queries.row_dot_widening(r, classes, l) as f32 * q_inv * inv_norm;
        }
    }
    Ok(scores)
}

/// Full cosine similarity of `query` against each (unnormalized) row.
///
/// Slower than [`similarity_to_all`]; used by tests and diagnostics where the
/// true cosine value (not just the ranking) matters.
///
/// # Errors
///
/// Returns [`ShapeError`] if `query.len() != rows.cols()`.
pub fn exact_cosine_to_all(query: &[f32], rows: &Matrix) -> Result<Vec<f32>, ShapeError> {
    if query.len() != rows.cols() {
        return Err(ShapeError::new(
            "exact_cosine",
            (1, query.len()),
            rows.shape(),
        ));
    }
    let qn = disthd_linalg::l2_norm(query);
    Ok(rows
        .iter_rows()
        .map(|row| {
            let rn = disthd_linalg::l2_norm(row);
            if qn == 0.0 || rn == 0.0 {
                0.0
            } else {
                dot(query, row) / (qn * rn)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_rows_rank_like_cosine() {
        let rows = Matrix::from_rows(&[vec![10.0, 0.0], vec![0.0, 0.5], vec![3.0, 3.0]]).unwrap();
        let normalized = cosine_similarity_matrix(&rows);
        let query = [1.0, 0.2];
        let fast = similarity_to_all(&query, &normalized).unwrap();
        let exact = exact_cosine_to_all(&query, &rows).unwrap();
        // Same argmax and same ordering.
        let rank = |v: &[f32]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        assert_eq!(rank(&fast), rank(&exact));
    }

    #[test]
    fn zero_rows_stay_zero_after_normalization() {
        let rows = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let normalized = cosine_similarity_matrix(&rows);
        assert_eq!(normalized.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = BinaryHypervector::from_bits([true, true, false, false]);
        let b = BinaryHypervector::from_bits([true, false, true, false]);
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn hamming_similarity_bounds() {
        let a = BinaryHypervector::from_bits((0..64).map(|_| true));
        let b = BinaryHypervector::from_bits((0..64).map(|_| false));
        assert!((normalized_hamming_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!((normalized_hamming_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn unrolled_hamming_matches_bitwise_count() {
        // 300 bits -> 5 words: exercises both the 4-word unrolled body and
        // the 1-word tail.
        let a = BinaryHypervector::from_bits((0..300).map(|i| i % 3 == 0));
        let b = BinaryHypervector::from_bits((0..300).map(|i| i % 5 == 0));
        let expected = (0..300u32).filter(|i| (i % 3 == 0) != (i % 5 == 0)).count() as u64;
        assert_eq!(hamming_distance(&a, &b), expected);
    }

    #[test]
    fn batched_hamming_matches_pairwise() {
        let query = BinaryHypervector::from_bits((0..200).map(|i| i % 2 == 0));
        let refs: Vec<BinaryHypervector> = (0..5)
            .map(|k| BinaryHypervector::from_bits((0..200).map(move |i| (i + k) % 7 == 0)))
            .collect();
        let batch = hamming_distance_batch(&query, &refs);
        let sims = normalized_hamming_similarity_batch(&query, &refs);
        for (k, r) in refs.iter().enumerate() {
            assert_eq!(batch[k], hamming_distance(&query, r));
            assert!((sims[k] - normalized_hamming_similarity(&query, r)).abs() < 1e-6);
        }
    }

    #[test]
    fn similarity_shape_checked() {
        let rows = Matrix::zeros(2, 4);
        assert!(similarity_to_all(&[1.0, 2.0], &rows).is_err());
        assert!(exact_cosine_to_all(&[1.0, 2.0], &rows).is_err());
    }

    use crate::quantize::BitWidth;
    use crate::test_util::lcg_matrix;
    use crate::TopK;

    #[test]
    fn quantized_similarity_ranks_like_dequantized_snapshot() {
        // The serving contract: reading the packed words must produce the
        // same argmax and top-2 classes as the dequantize-then-f32 snapshot
        // path, at every width.
        let classes = lcg_matrix(5, 37, 0x91);
        let queries = lcg_matrix(7, 37, 0x92);
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&classes, w);
            let snapshot = cosine_similarity_matrix(&q.dequantize());
            let mut inv_norms = Vec::new();
            q.code_inv_norms_into(&mut inv_norms);
            for s in 0..queries.rows() {
                let query = queries.row(s);
                let fast = quantized_similarity_to_all(query, &q, &inv_norms).unwrap();
                let reference = similarity_to_all(query, &snapshot).unwrap();
                let fast_top = TopK::from_scores(&fast);
                let reference_top = TopK::from_scores(&reference);
                assert_eq!(
                    fast_top.first.class, reference_top.first.class,
                    "{w}, query {s}: argmax"
                );
                assert_eq!(
                    fast_top.second.class, reference_top.second.class,
                    "{w}, query {s}: runner-up"
                );
                for (l, (&a, &b)) in fast.iter().zip(reference.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-4 * b.abs().max(1.0),
                        "{w}, query {s}, class {l}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_similarity_matrix_matches_per_query_and_threads() {
        let classes = lcg_matrix(4, 50, 0xA1);
        let queries = lcg_matrix(19, 50, 0xA2);
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&classes, w);
            let mut inv_norms = Vec::new();
            q.code_inv_norms_into(&mut inv_norms);
            let serial = disthd_linalg::parallel::with_thread_count(1, || {
                quantized_similarity_matrix(&queries, &q, &inv_norms).unwrap()
            });
            for s in 0..queries.rows() {
                let single = quantized_similarity_to_all(queries.row(s), &q, &inv_norms).unwrap();
                assert_eq!(serial.row(s), single.as_slice(), "{w}, row {s}");
            }
            for threads in [2usize, 8] {
                let parallel = disthd_linalg::parallel::with_thread_count(threads, || {
                    quantized_similarity_matrix(&queries, &q, &inv_norms).unwrap()
                });
                assert_eq!(
                    serial.as_slice(),
                    parallel.as_slice(),
                    "{w}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn small_batches_row_path_matches_the_gemm_path_bitwise() {
        // Batches under QSIM_GEMM_MIN_ROWS rows skip the panel and score
        // through the single-query kernel; the shared accumulation chain
        // makes that a pure speed decision — every score must equal the
        // GEMM path's bit for bit.
        let classes = lcg_matrix(4, 50, 0xC1);
        let queries = lcg_matrix(9, 50, 0xC2);
        for w in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&classes, w);
            let mut inv_norms = Vec::new();
            q.code_inv_norms_into(&mut inv_norms);
            let full = quantized_similarity_matrix(&queries, &q, &inv_norms).unwrap();
            for rows in [1usize, 2, 3] {
                let subset: Vec<usize> = (0..rows).collect();
                let small =
                    quantized_similarity_matrix(&queries.select_rows(&subset), &q, &inv_norms)
                        .unwrap();
                for r in 0..rows {
                    assert_eq!(small.row(r), full.row(r), "{w}, {rows} rows, row {r}");
                }
            }
        }
    }

    #[test]
    fn quantized_similarity_shapes_are_checked() {
        let q = QuantizedMatrix::quantize(&lcg_matrix(2, 8, 1), BitWidth::B4);
        let inv = vec![1.0; 2];
        assert!(quantized_similarity_to_all(&[0.0; 7], &q, &inv).is_err());
        assert!(quantized_similarity_to_all(&[0.0; 8], &q, &[1.0]).is_err());
        assert!(quantized_similarity_matrix(&Matrix::zeros(3, 7), &q, &inv).is_err());
        let other = QuantizedMatrix::quantize(&lcg_matrix(1, 8, 2), BitWidth::B8);
        assert!(packed_similarity_to_all(&other, &q, &inv).is_err());
        let two_rows = QuantizedMatrix::quantize(&lcg_matrix(2, 8, 3), BitWidth::B4);
        assert!(packed_similarity_to_all(&two_rows, &q, &inv).is_err());
        let one_row = QuantizedMatrix::quantize(&lcg_matrix(1, 8, 4), BitWidth::B4);
        assert!(packed_similarity_to_all(&one_row, &q, &[1.0]).is_err());
    }

    /// f64 ground-truth cosine of two quantized rows, from exact integer
    /// dots and norms — the adjudicator for mathematical ties in the
    /// exhaustive sweeps below.
    fn exact_cosine64(query: &QuantizedMatrix, classes: &QuantizedMatrix, l: usize) -> f64 {
        let dot = query.row_dot_widening(0, classes, l) as f64;
        let norm = |m: &QuantizedMatrix, r: usize| {
            let mut inv = Vec::new();
            m.code_inv_norms_into(&mut inv);
            if inv[r] == 0.0 {
                0.0
            } else {
                1.0 / f64::from(inv[r])
            }
        };
        let nq = norm(query, 0);
        let nl = norm(classes, l);
        if nq == 0.0 || nl == 0.0 {
            0.0
        } else {
            dot / (nq * nl)
        }
    }

    /// Asserts that the packed integer kernels and the dequantize-then-f32
    /// path agree on argmax and the top-2 classes for one query, allowing a
    /// divergence only where the mathematical scores actually tie.
    fn assert_packed_matches_f32(query: &QuantizedMatrix, classes: &QuantizedMatrix) {
        let mut class_inv_norms = Vec::new();
        classes.code_inv_norms_into(&mut class_inv_norms);
        let packed = packed_similarity_to_all(query, classes, &class_inv_norms).unwrap();
        let deq_query = query.dequantize();
        let f32_path = exact_cosine_to_all(deq_query.row(0), &classes.dequantize()).unwrap();
        let packed_top = TopK::from_scores(&packed);
        let f32_top = TopK::from_scores(&f32_path);
        for (which, a, b) in [
            ("argmax", packed_top.first.class, f32_top.first.class),
            ("runner-up", packed_top.second.class, f32_top.second.class),
        ] {
            if a != b {
                // Divergence is only legal on an exact mathematical tie
                // (e.g. two class rows that are scalar multiples), where
                // f32 rounding may order the equal scores either way.
                let sa = exact_cosine64(query, classes, a);
                let sb = exact_cosine64(query, classes, b);
                assert!(
                    (sa - sb).abs() <= 1e-9 * sa.abs().max(1.0),
                    "{}: packed chose {a} ({sa}), f32 chose {b} ({sb})",
                    which
                );
            }
        }
    }

    #[test]
    fn packed_one_bit_similarity_exhaustive() {
        // Every 6-bit sign pattern as a class row, queried by every 6-bit
        // sign pattern: 64 × 64 popcount-kernel rankings checked against
        // the dequantize-then-f32 path.
        let rows: Vec<Vec<f32>> = (0u32..64)
            .map(|p| {
                (0..6)
                    .map(|b| if (p >> b) & 1 == 1 { 0.5 } else { -0.5 })
                    .collect()
            })
            .collect();
        let classes = QuantizedMatrix::quantize(&Matrix::from_rows(&rows).unwrap(), BitWidth::B1);
        for pattern in &rows {
            let query = QuantizedMatrix::quantize(
                &Matrix::from_rows(std::slice::from_ref(pattern)).unwrap(),
                BitWidth::B1,
            );
            assert_packed_matches_f32(&query, &classes);
        }
    }

    #[test]
    fn packed_integer_similarity_exhaustive_grid() {
        // Exhaustive 2-D value grid per width (every pair of grid levels is
        // a class row, every pair is also a query): the widening i8/i4/i2
        // dots must rank exactly like dequantize-then-f32 wherever the
        // mathematical ordering is determined.
        for (width, levels) in [
            (BitWidth::B2, vec![-1.0f32, 0.0, 1.0]),
            (BitWidth::B4, vec![-7.0, -4.0, -1.0, 0.0, 2.0, 5.0, 7.0]),
            (
                BitWidth::B8,
                vec![-127.0, -80.0, -33.0, 0.0, 15.0, 64.0, 127.0],
            ),
        ] {
            let mut rows = Vec::new();
            for &a in &levels {
                for &b in &levels {
                    if a != 0.0 || b != 0.0 {
                        rows.push(vec![a, b]);
                    }
                }
            }
            let classes = QuantizedMatrix::quantize(&Matrix::from_rows(&rows).unwrap(), width);
            for row in &rows {
                let query = QuantizedMatrix::quantize(
                    &Matrix::from_rows(std::slice::from_ref(row)).unwrap(),
                    width,
                );
                assert_packed_matches_f32(&query, &classes);
            }
            let _ = width; // silence per-iteration shadowing lints
        }
    }

    #[test]
    fn packed_predict_batch_matches_single_query_argmax() {
        // The batch predictor must pick the same class as the single-query
        // packed scorer's argmax; its skipped per-query norm is a positive
        // constant, so any divergence is only legal on an exact
        // mathematical tie.
        let classes_f32 = lcg_matrix(5, 37, 0xD1);
        let queries_f32 = lcg_matrix(11, 37, 0xD2);
        for w in BitWidth::all() {
            let classes = QuantizedMatrix::quantize(&classes_f32, w);
            let queries = QuantizedMatrix::quantize(&queries_f32, w);
            let mut inv_norms = Vec::new();
            classes.code_inv_norms_into(&mut inv_norms);
            let preds = packed_predict_batch(&queries, &classes, &inv_norms).unwrap();
            assert_eq!(preds.len(), queries_f32.rows());
            for (s, &pred) in preds.iter().enumerate() {
                let single = QuantizedMatrix::quantize(
                    &Matrix::from_rows(std::slice::from_ref(&queries_f32.row(s).to_vec())).unwrap(),
                    w,
                );
                let scores = packed_similarity_to_all(&single, &classes, &inv_norms).unwrap();
                let want = TopK::from_scores(&scores).first.class;
                if pred != want {
                    let sa = exact_cosine64(&single, &classes, pred);
                    let sb = exact_cosine64(&single, &classes, want);
                    assert!(
                        (sa - sb).abs() <= 1e-9 * sa.abs().max(1.0),
                        "{w}, query {s}: batch chose {pred} ({sa}), single chose {want} ({sb})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_predict_batch_checks_shapes_and_breaks_ties_low() {
        let classes = QuantizedMatrix::quantize(&lcg_matrix(3, 16, 0xE1), BitWidth::B4);
        let mut inv_norms = Vec::new();
        classes.code_inv_norms_into(&mut inv_norms);
        let narrow = QuantizedMatrix::quantize(&lcg_matrix(2, 8, 0xE2), BitWidth::B4);
        assert!(packed_predict_batch(&narrow, &classes, &inv_norms).is_err());
        let wrong_width = QuantizedMatrix::quantize(&lcg_matrix(2, 16, 0xE3), BitWidth::B8);
        assert!(packed_predict_batch(&wrong_width, &classes, &inv_norms).is_err());
        let queries = QuantizedMatrix::quantize(&lcg_matrix(2, 16, 0xE4), BitWidth::B4);
        assert!(packed_predict_batch(&queries, &classes, &inv_norms[..2]).is_err());
        // Identical class rows score identically — the lower index wins.
        let same = Matrix::from_rows(&[vec![1.0f32; 16], vec![1.0; 16]]).unwrap();
        let dup = QuantizedMatrix::quantize(&same, BitWidth::B4);
        let mut dup_inv = Vec::new();
        dup.code_inv_norms_into(&mut dup_inv);
        let preds = packed_predict_batch(&queries, &dup, &dup_inv).unwrap();
        assert!(preds.iter().all(|&p| p == 0));
    }

    #[test]
    fn packed_cosine_matrix_rows_match_the_single_query_kernel_bitwise() {
        // The anomaly/top-k serving contract: batching must not change a
        // score bit, so every row of the batched cosine matrix equals the
        // single-query packed scorer's output exactly — at every width.
        let classes_f32 = lcg_matrix(5, 37, 0xF1);
        let queries_f32 = lcg_matrix(9, 37, 0xF2);
        for w in BitWidth::all() {
            let classes = QuantizedMatrix::quantize(&classes_f32, w);
            let queries = QuantizedMatrix::quantize(&queries_f32, w);
            let mut inv_norms = Vec::new();
            classes.code_inv_norms_into(&mut inv_norms);
            let scores = packed_cosine_matrix(&queries, &classes, &inv_norms).unwrap();
            assert_eq!(scores.shape(), (9, 5));
            for s in 0..queries_f32.rows() {
                let single = QuantizedMatrix::quantize(
                    &Matrix::from_rows(std::slice::from_ref(&queries_f32.row(s).to_vec())).unwrap(),
                    w,
                );
                let expected = packed_similarity_to_all(&single, &classes, &inv_norms).unwrap();
                assert_eq!(scores.row(s), expected.as_slice(), "{w}, query {s}");
            }
        }
    }

    #[test]
    fn packed_cosine_matrix_scores_are_true_cosines() {
        // Unlike the argmax-only batch predictor, the cosine matrix must be
        // comparable ACROSS queries: every value agrees with the f64
        // integer ground truth and lives in [-1, 1].
        let classes_f32 = lcg_matrix(4, 20, 0xF3);
        let queries_f32 = lcg_matrix(6, 20, 0xF4);
        for w in BitWidth::all() {
            let classes = QuantizedMatrix::quantize(&classes_f32, w);
            let queries = QuantizedMatrix::quantize(&queries_f32, w);
            let mut inv_norms = Vec::new();
            classes.code_inv_norms_into(&mut inv_norms);
            let scores = packed_cosine_matrix(&queries, &classes, &inv_norms).unwrap();
            for s in 0..queries_f32.rows() {
                let single = QuantizedMatrix::quantize(
                    &Matrix::from_rows(std::slice::from_ref(&queries_f32.row(s).to_vec())).unwrap(),
                    w,
                );
                for l in 0..classes_f32.rows() {
                    let truth = exact_cosine64(&single, &classes, l) as f32;
                    let got = scores.row(s)[l];
                    assert!(
                        (got - truth).abs() < 1e-4,
                        "{w}, query {s}, class {l}: {got} vs {truth}"
                    );
                    assert!((-1.0001..=1.0001).contains(&got), "{w}: cosine {got}");
                }
            }
        }
    }

    #[test]
    fn packed_cosine_matrix_checks_shapes_and_zero_rows() {
        let classes = QuantizedMatrix::quantize(&lcg_matrix(3, 16, 0xF5), BitWidth::B4);
        let mut inv_norms = Vec::new();
        classes.code_inv_norms_into(&mut inv_norms);
        let narrow = QuantizedMatrix::quantize(&lcg_matrix(2, 8, 0xF6), BitWidth::B4);
        assert!(packed_cosine_matrix(&narrow, &classes, &inv_norms).is_err());
        let wrong_width = QuantizedMatrix::quantize(&lcg_matrix(2, 16, 0xF7), BitWidth::B8);
        assert!(packed_cosine_matrix(&wrong_width, &classes, &inv_norms).is_err());
        let queries = QuantizedMatrix::quantize(&lcg_matrix(2, 16, 0xF8), BitWidth::B4);
        assert!(packed_cosine_matrix(&queries, &classes, &inv_norms[..2]).is_err());
        // An all-zero query row has no direction: it scores 0 everywhere.
        let zero = QuantizedMatrix::quantize(&Matrix::zeros(1, 16), BitWidth::B4);
        let scores = packed_cosine_matrix(&zero, &classes, &inv_norms).unwrap();
        assert!(scores.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn packed_similarity_matches_f32_on_dense_random_rows() {
        // Dense random rows at every width and a misaligned column count.
        // Quantization collapses continuous values onto few levels (1-bit
        // keeps only signs), so genuine score ties still occur — the
        // adjudicator demands exact agreement except on such mathematical
        // ties.
        let classes_f32 = lcg_matrix(6, 37, 0xB1);
        let queries_f32 = lcg_matrix(10, 37, 0xB2);
        for w in BitWidth::all() {
            let classes = QuantizedMatrix::quantize(&classes_f32, w);
            for s in 0..queries_f32.rows() {
                let query = QuantizedMatrix::quantize(
                    &Matrix::from_rows(std::slice::from_ref(&queries_f32.row(s).to_vec())).unwrap(),
                    w,
                );
                assert_packed_matches_f32(&query, &classes);
            }
        }
    }
}
