//! Quantize-epilogue code conversion: f32 values → small unsigned codes.
//!
//! The bit-sliced encode path quantizes encoder output *as it is stored*
//! instead of round-tripping a full f32 matrix.  The per-element math is
//! owned here so the scalar quantizer and the fused encode epilogue share
//! one definition:
//!
//! * [`sign_codes`] — the 1-bit rule, `code = (v ≥ 0)` (`−0.0` counts as
//!   non-negative, like the f32 comparison it mirrors; `NaN` does not).
//! * [`symmetric_codes`] — the 2/4/8-bit rule,
//!   `code = round(v / scale).clamp(±qmax) + qmax`, with `round` the
//!   f32 half-away-from-zero rounding of `f32::round`.
//!
//! Both dispatch to AVX2 kernels that are bit-identical to the portable
//! loops.  The vector rounding widens the f32 quotient to f64, where
//! `⌊|q| + ½⌋` is exact (the sum cannot round for any f32 `q`), then
//! restores the sign — precisely `f32::round`'s result for every finite
//! input, with ±∞ saturating to ±qmax.  Values must not be `NaN` (the
//! encode pipeline never produces one; the scalar and vector kernels are
//! only guaranteed to agree on non-NaN input).

// SIMD intrinsics are inherently `unsafe`; call sites are guarded by the
// runtime AVX2 check and the kernels mirror the portable op sequence.
#![allow(unsafe_code)]

/// Writes the 1-bit sign code of every value: `codes[j] = (values[j] ≥ 0)`.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use disthd_linalg::sign_codes;
///
/// let mut codes = [0u8; 4];
/// sign_codes(&[1.5, -0.25, 0.0, -0.0], &mut codes);
/// assert_eq!(codes, [1, 0, 1, 1]);
/// ```
pub fn sign_codes(values: &[f32], codes: &mut [u8]) {
    assert_eq!(values.len(), codes.len(), "code buffer length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::epilogue::avx2_available() {
        // SAFETY: the host supports AVX2 (runtime-checked above).
        unsafe { sign_codes_avx2(values, codes) };
        return;
    }
    sign_codes_portable(values, codes);
}

fn sign_codes_portable(values: &[f32], codes: &mut [u8]) {
    for (code, &v) in codes.iter_mut().zip(values) {
        *code = u8::from(v >= 0.0);
    }
}

/// Writes the symmetric mid-tread code of every value:
/// `codes[j] = (values[j] / scale).round().clamp(−qmax, qmax) + qmax`.
///
/// `scale` must be nonzero and `qmax` in `1..=127` (the biased code must
/// fit a byte).
///
/// # Panics
///
/// Panics if the slices differ in length or `qmax` is out of range.
///
/// # Example
///
/// ```
/// use disthd_linalg::symmetric_codes;
///
/// let mut codes = [0u8; 3];
/// symmetric_codes(&[-2.0, 0.4, 9.0], 1.0, 7, &mut codes);
/// assert_eq!(codes, [5, 7, 14]); // −2, 0, +7 biased by qmax = 7
/// ```
pub fn symmetric_codes(values: &[f32], scale: f32, qmax: i32, codes: &mut [u8]) {
    assert_eq!(values.len(), codes.len(), "code buffer length mismatch");
    assert!((1..=127).contains(&qmax), "qmax out of byte range");
    #[cfg(target_arch = "x86_64")]
    if crate::epilogue::avx2_available() {
        // SAFETY: the host supports AVX2 (runtime-checked above).
        unsafe { symmetric_codes_avx2(values, scale, qmax, codes) };
        return;
    }
    symmetric_codes_portable(values, scale, qmax, codes);
}

fn symmetric_codes_portable(values: &[f32], scale: f32, qmax: i32, codes: &mut [u8]) {
    let limit = qmax as f32;
    for (code, &v) in codes.iter_mut().zip(values) {
        let q = (v / scale).round().clamp(-limit, limit) as i32;
        *code = (q + qmax) as u8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sign_codes_avx2(values: &[f32], codes: &mut [u8]) {
    use core::arch::x86_64::*;
    let len = values.len();
    let main = len - len % 8;
    let zero = _mm256_setzero_ps();
    let mut j = 0;
    while j < main {
        let v = _mm256_loadu_ps(values.as_ptr().add(j));
        // GE_OQ: true for −0.0 ≥ 0.0, false for NaN — the scalar rule.
        let mask = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(v, zero)) as u32;
        for lane in 0..8 {
            codes[j + lane] = ((mask >> lane) & 1) as u8;
        }
        j += 8;
    }
    sign_codes_portable(&values[main..], &mut codes[main..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn symmetric_codes_avx2(values: &[f32], scale: f32, qmax: i32, codes: &mut [u8]) {
    use core::arch::x86_64::*;
    let len = values.len();
    let main = len - len % 8;
    let scale8 = _mm256_set1_ps(scale);
    let sign_mask = _mm256_set1_pd(-0.0);
    let half = _mm256_set1_pd(0.5);
    let lo = _mm256_set1_pd(-qmax as f64);
    let hi = _mm256_set1_pd(qmax as f64);
    let bias = _mm256_set1_pd(qmax as f64);
    // Rounds four f64 lanes half-away-from-zero, clamps to ±qmax (±∞
    // saturates through the max/min pair), biases, and converts to i32 —
    // the lanes are exact small integers, so the conversion cannot round.
    let round4 = |q: __m256d| -> __m128i {
        let mag = _mm256_andnot_pd(sign_mask, q);
        let rounded = _mm256_floor_pd(_mm256_add_pd(mag, half));
        let signed = _mm256_or_pd(rounded, _mm256_and_pd(sign_mask, q));
        let clamped = _mm256_min_pd(_mm256_max_pd(signed, lo), hi);
        _mm256_cvtpd_epi32(_mm256_add_pd(clamped, bias))
    };
    let mut j = 0;
    while j < main {
        let v = _mm256_loadu_ps(values.as_ptr().add(j));
        let q = _mm256_div_ps(v, scale8);
        let lo4 = round4(_mm256_cvtps_pd(_mm256_castps256_ps128(q)));
        let hi4 = round4(_mm256_cvtps_pd(_mm256_extractf128_ps::<1>(q)));
        let mut lanes = [0i32; 8];
        _mm_storeu_si128(lanes.as_mut_ptr().cast(), lo4);
        _mm_storeu_si128(lanes.as_mut_ptr().add(4).cast(), hi4);
        for (lane, &code) in lanes.iter().enumerate() {
            codes[j + lane] = code as u8;
        }
        j += 8;
    }
    symmetric_codes_portable(&values[main..], scale, qmax, &mut codes[main..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_values(n: usize, seed: u64, span: f32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 33) as f32) / (1u64 << 31) as f32;
                (u - 0.5) * 2.0 * span
            })
            .collect()
    }

    #[test]
    fn sign_codes_matches_portable_and_handles_edges() {
        let mut values = lcg_values(83, 0xAB, 3.0);
        values[0] = 0.0;
        values[1] = -0.0;
        values[2] = f32::INFINITY;
        values[3] = f32::NEG_INFINITY;
        let mut dispatched = vec![9u8; values.len()];
        let mut portable = vec![9u8; values.len()];
        sign_codes(&values, &mut dispatched);
        sign_codes_portable(&values, &mut portable);
        assert_eq!(dispatched, portable);
        assert_eq!(&dispatched[..4], &[1, 1, 1, 0]);
    }

    #[test]
    fn symmetric_codes_matches_portable_on_ties_and_extremes() {
        // Exact .5 quotients (ties round away from zero), the classic
        // f32-vs-f64 rounding trap 0.49999997, and saturating extremes.
        for (qmax, scale) in [(1, 1.5), (7, 0.37), (127, 0.011)] {
            let mut values = lcg_values(200, qmax as u64 ^ 0x51, qmax as f32 * scale * 1.5);
            values[0] = 0.5 * scale;
            values[1] = -0.5 * scale;
            values[2] = 2.5 * scale;
            values[3] = -2.5 * scale;
            values[4] = 0.499_999_97 * scale;
            values[5] = 1.0e30;
            values[6] = -1.0e30;
            values[7] = 0.0;
            values[8] = -0.0;
            let mut dispatched = vec![0u8; values.len()];
            let mut portable = vec![0u8; values.len()];
            symmetric_codes(&values, scale, qmax, &mut dispatched);
            symmetric_codes_portable(&values, scale, qmax, &mut portable);
            assert_eq!(dispatched, portable, "qmax {qmax}");
            assert_eq!(dispatched[5], (2 * qmax) as u8, "positive saturation");
            assert_eq!(dispatched[6], 0, "negative saturation");
        }
    }

    #[test]
    fn symmetric_codes_covers_every_level_exactly() {
        let qmax = 7;
        let values: Vec<f32> = (-9..=9).map(|q| q as f32).collect();
        let mut codes = vec![0u8; values.len()];
        symmetric_codes(&values, 1.0, qmax, &mut codes);
        let want: Vec<u8> = (-9i32..=9)
            .map(|q| (q.clamp(-qmax, qmax) + qmax) as u8)
            .collect();
        assert_eq!(codes, want);
    }

    #[test]
    fn tail_lengths_agree_with_portable() {
        for len in [1usize, 5, 8, 13, 16, 27] {
            let values = lcg_values(len, len as u64, 4.0);
            let mut dispatched = vec![0u8; len];
            let mut portable = vec![0u8; len];
            symmetric_codes(&values, 0.25, 127, &mut dispatched);
            symmetric_codes_portable(&values, 0.25, 127, &mut portable);
            assert_eq!(dispatched, portable);
            sign_codes(&values, &mut dispatched);
            sign_codes_portable(&values, &mut portable);
            assert_eq!(dispatched, portable);
        }
    }
}
