//! Deterministic transcendental store-phase kernels.
//!
//! The RBF encoders evaluate `0.5 · (sin(2p + c) − sin c)` once per output
//! element — by far the most expensive arithmetic in the encode hot loop
//! once the projection itself is cache-blocked.  `libm`'s `sinf` is a
//! scalar call whose result can differ between libm builds, which would
//! make encode output machine-dependent and rules out a vectorized twin.
//! This module replaces it with [`sin_det`], an in-tree sine whose scalar
//! and AVX2 evaluations perform the *identical* sequence of IEEE-754
//! double-precision operations per element:
//!
//! 1. reduce `x = n·π + r`, `r ∈ [−π/2, π/2)`, with `n = ⌊x/π + ½⌋` and a
//!    two-term Cody–Waite subtraction (`PI_HI + PI_LO`),
//! 2. evaluate the odd Taylor polynomial of degree 15 in `r` by Horner's
//!    rule (truncation error ≈ 6e-12, far below the f32 target),
//! 3. restore the period sign `(−1)^n` branch-free via `n/2 − ⌊n/2⌋`,
//! 4. round once to `f32`.
//!
//! Every step is a plain multiply / add / subtract / floor / convert —
//! each correctly rounded and lane-wise identical in scalar and SIMD form
//! — so results are bit-identical across tiers, thread counts, *and*
//! machines (no FMA contraction anywhere).  Inputs beyond `|x| ≈ 1e6`
//! lose accuracy to the two-term reduction (encode arguments are small);
//! the result is still deterministic.
//!
//! [`half_angle_row`] applies the full fused-RBF store phase
//! (`scale → 2p + c → sin_det → ½(s − sin c)`) over a contiguous output
//! row, dispatching to an 8-lane AVX2 kernel when the host supports it.

// SIMD intrinsics are inherently `unsafe`; every call site is guarded by a
// runtime `avx2` feature check and the vector kernels perform exactly the
// scalar op sequence (see the module docs), so safety reduces to the
// feature gate.
#![allow(unsafe_code)]

/// `1/π`, rounded to f64.
const INV_PI: f64 = core::f64::consts::FRAC_1_PI;
/// High word of the two-term Cody–Waite π (the f64 nearest π).
const PI_HI: f64 = core::f64::consts::PI;
/// Low word: `π − PI_HI` to f64 precision.
const PI_LO: f64 = 1.224_646_799_147_353_2e-16;

// Odd Taylor coefficients of sin about 0; compile-time IEEE divisions.
const C3: f64 = -1.0 / 6.0;
const C5: f64 = 1.0 / 120.0;
const C7: f64 = -1.0 / 5040.0;
const C9: f64 = 1.0 / 362_880.0;
const C11: f64 = -1.0 / 39_916_800.0;
const C13: f64 = 1.0 / 6_227_020_800.0;
const C15: f64 = -1.0 / 1_307_674_368_000.0;

/// Deterministic sine: bit-identical on every tier, thread count and
/// machine (see the module docs for the op sequence and accuracy
/// domain).
///
/// # Example
///
/// ```
/// use disthd_linalg::sin_det;
///
/// let x = 1.25f32;
/// assert!((f64::from(sin_det(x)) - f64::from(x).sin()).abs() < 1e-6);
/// ```
#[inline]
pub fn sin_det(x: f32) -> f32 {
    let xd = f64::from(x);
    let n = (xd * INV_PI + 0.5).floor();
    let r = (xd - n * PI_HI) - n * PI_LO;
    let z = r * r;
    let mut p = C15;
    p = p * z + C13;
    p = p * z + C11;
    p = p * z + C9;
    p = p * z + C7;
    p = p * z + C5;
    p = p * z + C3;
    let s = r + (p * z) * r;
    let half = n * 0.5;
    let sign = 1.0 - 4.0 * (half - half.floor());
    (s * sign) as f32
}

/// The fused RBF store-phase nonlinearity for one element:
/// `0.5 · (sin_det(2·projection + phase) − phase_sin)`.
///
/// This is the scalar reference the vectorized [`half_angle_row`] is
/// bit-identical to.
#[inline]
pub fn half_angle(projection: f32, phase: f32, phase_sin: f32) -> f32 {
    0.5 * (sin_det(2.0 * projection + phase) - phase_sin)
}

/// Applies [`half_angle`] to every element of `row` in place, reading the
/// projection as `row[j] · scale` (pass `scale = 1.0` for pre-scaled
/// projections — multiplying by one is an exact no-op, so the result is
/// bit-identical to the unscaled form).
///
/// Dispatches to an AVX2 8-lane kernel when available; the vector kernel
/// performs the identical per-element op sequence, so output is
/// bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if `phases` or `phase_sins` differ in length from `row`.
pub fn half_angle_row(row: &mut [f32], scale: f32, phases: &[f32], phase_sins: &[f32]) {
    assert_eq!(row.len(), phases.len(), "phase length mismatch");
    assert_eq!(row.len(), phase_sins.len(), "phase_sin length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: the host supports AVX2 (runtime-checked above).
        unsafe { half_angle_row_avx2(row, scale, phases, phase_sins) };
        return;
    }
    half_angle_row_portable(row, scale, phases, phase_sins);
}

fn half_angle_row_portable(row: &mut [f32], scale: f32, phases: &[f32], phase_sins: &[f32]) {
    for j in 0..row.len() {
        row[j] = half_angle(row[j] * scale, phases[j], phase_sins[j]);
    }
}

/// Runtime AVX2 availability, memoized (same pattern as the GEMM tier).
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn half_angle_row_avx2(row: &mut [f32], scale: f32, phases: &[f32], phase_sins: &[f32]) {
    use core::arch::x86_64::*;
    let len = row.len();
    let main = len - len % 8;
    let scale8 = _mm256_set1_ps(scale);
    let two8 = _mm256_set1_ps(2.0);
    let half8 = _mm256_set1_ps(0.5);
    let mut j = 0;
    while j < main {
        let v = _mm256_loadu_ps(row.as_ptr().add(j));
        let c = _mm256_loadu_ps(phases.as_ptr().add(j));
        let cs = _mm256_loadu_ps(phase_sins.as_ptr().add(j));
        // t = 2·(v·scale) + phase, same two-rounding order as the scalar.
        let p = _mm256_mul_ps(v, scale8);
        let t = _mm256_add_ps(_mm256_mul_ps(two8, p), c);
        let lo = sin_det_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(t)));
        let hi = sin_det_pd(_mm256_cvtps_pd(_mm256_extractf128_ps::<1>(t)));
        let s = _mm256_set_m128(_mm256_cvtpd_ps(hi), _mm256_cvtpd_ps(lo));
        let out = _mm256_mul_ps(half8, _mm256_sub_ps(s, cs));
        _mm256_storeu_ps(row.as_mut_ptr().add(j), out);
        j += 8;
    }
    for j in main..len {
        row[j] = half_angle(row[j] * scale, phases[j], phase_sins[j]);
    }
}

/// Four-lane f64 twin of [`sin_det`]'s core: the identical op sequence on
/// a `__m256d`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sin_det_pd(x: core::arch::x86_64::__m256d) -> core::arch::x86_64::__m256d {
    use core::arch::x86_64::*;
    let half = _mm256_set1_pd(0.5);
    let n = _mm256_floor_pd(_mm256_add_pd(
        _mm256_mul_pd(x, _mm256_set1_pd(INV_PI)),
        half,
    ));
    let r = _mm256_sub_pd(
        _mm256_sub_pd(x, _mm256_mul_pd(n, _mm256_set1_pd(PI_HI))),
        _mm256_mul_pd(n, _mm256_set1_pd(PI_LO)),
    );
    let z = _mm256_mul_pd(r, r);
    let mut p = _mm256_set1_pd(C15);
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(C13));
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(C11));
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(C9));
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(C7));
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(C5));
    p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(C3));
    let s = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(p, z), r));
    let halfn = _mm256_mul_pd(n, half);
    let frac = _mm256_sub_pd(halfn, _mm256_floor_pd(halfn));
    let sign = _mm256_sub_pd(
        _mm256_set1_pd(1.0),
        _mm256_mul_pd(_mm256_set1_pd(4.0), frac),
    );
    _mm256_mul_pd(s, sign)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_values(n: usize, seed: u64, span: f32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 33) as f32) / (1u64 << 31) as f32; // [0, 1)
                (u - 0.5) * 2.0 * span
            })
            .collect()
    }

    #[test]
    fn sin_det_tracks_reference_sine() {
        // Sweep several periods plus a large-argument spot check; the
        // two-term reduction keeps f32-accuracy well past the encode range.
        let mut x = -40.0f32;
        while x < 40.0 {
            let got = f64::from(sin_det(x));
            let want = f64::from(x).sin();
            assert!(
                (got - want).abs() < 3e-7,
                "sin_det({x}) = {got}, reference {want}"
            );
            x += 0.003_7;
        }
        for x in [1.0e4f32, -2.5e4, 9.87e4] {
            let got = f64::from(sin_det(x));
            let want = f64::from(x).sin();
            assert!((got - want).abs() < 1e-5, "sin_det({x}) = {got} vs {want}");
        }
    }

    #[test]
    fn sin_det_handles_edge_inputs() {
        assert_eq!(sin_det(0.0).to_bits(), 0.0f32.to_bits());
        assert!(sin_det(f32::NAN).is_nan());
        // Exact multiples of π land inside the polynomial's tiny-r regime.
        assert!(sin_det(core::f32::consts::PI).abs() < 1e-6);
        assert!(sin_det(-core::f32::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn half_angle_row_is_bit_identical_to_scalar() {
        // Cover every tail length so the 8-lane kernel's remainder path
        // and the main loop both face the scalar reference.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 31, 67, 256] {
            let phases = lcg_values(len, 0xC0FFEE, core::f32::consts::PI);
            let phase_sins: Vec<f32> = phases.iter().map(|&c| sin_det(c)).collect();
            for scale in [1.0f32, 0.73, -0.004_2] {
                let values = lcg_values(len, 0xBEEF ^ len as u64, 6.0);
                let mut fused = values.clone();
                half_angle_row(&mut fused, scale, &phases, &phase_sins);
                for j in 0..len {
                    let want = half_angle(values[j] * scale, phases[j], phase_sins[j]);
                    assert_eq!(
                        fused[j].to_bits(),
                        want.to_bits(),
                        "len {len} scale {scale} element {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn unit_scale_is_an_exact_no_op() {
        // `p · 1.0` returns `p` bitwise for every f32, so a scale of one
        // must reproduce the unscaled scalar form exactly.
        let values = lcg_values(100, 0x5EED, 4.0);
        let phases = lcg_values(100, 0x9A9A, core::f32::consts::PI);
        let phase_sins: Vec<f32> = phases.iter().map(|&c| sin_det(c)).collect();
        let mut fused = values.clone();
        half_angle_row(&mut fused, 1.0, &phases, &phase_sins);
        for j in 0..100 {
            let want = half_angle(values[j], phases[j], phase_sins[j]);
            assert_eq!(fused[j].to_bits(), want.to_bits());
        }
    }
}
