use std::error::Error;
use std::fmt;

/// Error returned when matrix/vector operands have incompatible shapes.
///
/// # Example
///
/// ```
/// use disthd_linalg::Matrix;
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(2, 3); // inner dimensions do not line up
/// assert!(a.matmul(&b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the operation that failed.
    op: &'static str,
    /// Shape of the left operand, `(rows, cols)`.
    left: (usize, usize),
    /// Shape of the right operand, `(rows, cols)`.
    right: (usize, usize),
}

impl ShapeError {
    /// Creates a shape error for operation `op` with the two operand shapes.
    pub fn new(op: &'static str, left: (usize, usize), right: (usize, usize)) -> Self {
        Self { op, left, right }
    }

    /// The operation name that produced this error.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Shape of the left operand.
    pub fn left(&self) -> (usize, usize) {
        self.left
    }

    /// Shape of the right operand.
    pub fn right(&self) -> (usize, usize) {
        self.right
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: left is {}x{}, right is {}x{}",
            self.op, self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operation_and_shapes() {
        let err = ShapeError::new("matmul", (2, 3), (4, 5));
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn accessors_round_trip() {
        let err = ShapeError::new("dot", (1, 7), (1, 9));
        assert_eq!(err.op(), "dot");
        assert_eq!(err.left(), (1, 7));
        assert_eq!(err.right(), (1, 9));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
